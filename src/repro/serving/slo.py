"""SLO reporting over the serving tier's counters and histogram.

The report composes the quantities an on-call dashboard would gate on:

* **latency** — p50/p99/p999/max from the service's log₂-bucket
  :class:`~repro.obs.hist.LatencyHistogram` (percentiles are bucket
  upper bounds, so they quantize to powers-of-two microseconds);
* **availability** — fraction of submitted requests answered (fresh or
  degraded) within their deadline; late answers count as unavailable;
* **degraded fraction** — stale-cache answers among all answers;
* **error-budget burn** — ``(1 - availability) / (1 - target)``: burn
  1.0 means the window consumed exactly its budget, above 1.0 the
  target is violated;
* per-cause shed counts, breaker trips, and batch shape diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["SLOReport", "build_report"]


@dataclass
class SLOReport:
    """One scenario window's SLO numbers (JSON-ready)."""

    scenario: str
    target_availability: float
    simulated_seconds: float
    submitted: int
    answered_fresh: int
    answered_degraded: int
    failed: int
    deadline_missed: int
    shed: Dict[str, int] = field(default_factory=dict)
    availability: float = 1.0
    degraded_fraction: float = 0.0
    error_budget_burn: float = 0.0
    p50_seconds: float = 0.0
    p99_seconds: float = 0.0
    p999_seconds: float = 0.0
    max_seconds: float = 0.0
    mean_seconds: float = 0.0
    batches: int = 0
    mean_batch_size: float = 0.0
    sample_errors: int = 0
    breaker_trips: int = 0
    cache_fallbacks: int = 0

    @property
    def meets_target(self) -> bool:
        return self.availability >= self.target_availability

    def to_dict(self) -> Dict[str, object]:
        out = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
        }
        out["meets_target"] = self.meets_target
        return out

    def render(self) -> str:
        """Human-readable block (the ``repro serve-sim`` output)."""
        lines = [
            f"SLO report — scenario {self.scenario!r} "
            f"({self.simulated_seconds:.3f}s simulated)",
            f"  requests     {self.submitted} submitted | "
            f"{self.answered_fresh} fresh | "
            f"{self.answered_degraded} degraded | {self.failed} failed",
            f"  latency      p50 {self.p50_seconds * 1e3:.3f}ms | "
            f"p99 {self.p99_seconds * 1e3:.3f}ms | "
            f"p999 {self.p999_seconds * 1e3:.3f}ms | "
            f"max {self.max_seconds * 1e3:.3f}ms",
            f"  availability {self.availability * 100:.3f}% "
            f"(target {self.target_availability * 100:.2f}%, "
            f"budget burn {self.error_budget_burn:.2f}x) — "
            f"{'MEETS' if self.meets_target else 'VIOLATES'} target",
            f"  degraded     {self.degraded_fraction * 100:.2f}% of answers "
            f"({self.cache_fallbacks} stale-cache serves)",
        ]
        shed_parts = [
            f"{cause}={count}" for cause, count in sorted(self.shed.items())
        ]
        lines.append(
            f"  shedding     {' | '.join(shed_parts)} | "
            f"deadline_missed={self.deadline_missed}"
        )
        lines.append(
            f"  batching     {self.batches} batches, "
            f"mean size {self.mean_batch_size:.2f} | "
            f"breaker trips {self.breaker_trips} | "
            f"sample errors {self.sample_errors}"
        )
        return "\n".join(lines)


def build_report(
    service,
    scenario: str = "adhoc",
    target_availability: float = 0.99,
    simulated_seconds: Optional[float] = None,
) -> SLOReport:
    """Materialise an :class:`SLOReport` from a service's current state."""
    if not 0.0 < target_availability < 1.0:
        raise ConfigurationError(
            f"target_availability must be in (0, 1), got "
            f"{target_availability}"
        )
    stats = service.stats
    hist = service.latency_hist
    summary = hist.summary()
    availability = stats.availability
    burn = (1.0 - availability) / (1.0 - target_availability)
    return SLOReport(
        scenario=scenario,
        target_availability=target_availability,
        simulated_seconds=(
            simulated_seconds
            if simulated_seconds is not None
            else service.network.now()
        ),
        submitted=stats.submitted,
        answered_fresh=stats.answered_fresh,
        answered_degraded=stats.answered_degraded,
        failed=stats.failed,
        deadline_missed=stats.deadline_missed,
        shed={
            "queue_full": stats.shed_queue_full,
            "deadline_hopeless": stats.shed_deadline_hopeless,
            "breaker_open": stats.shed_breaker_open,
        },
        availability=availability,
        degraded_fraction=stats.degraded_fraction,
        error_budget_burn=burn,
        p50_seconds=hist.percentile(0.50),
        p99_seconds=hist.percentile(0.99),
        p999_seconds=hist.percentile(0.999),
        max_seconds=summary["max"],
        mean_seconds=summary["mean"],
        batches=stats.batches,
        mean_batch_size=(
            stats.batched_requests / stats.batches if stats.batches else 0.0
        ),
        sample_errors=stats.sample_errors,
        breaker_trips=sum(b.trips for b in service.breakers.values()),
        cache_fallbacks=stats.cache_fallbacks,
    )
