"""Shim for environments whose setuptools lacks PEP 660 editable wheels.

``pip install -e .`` on a modern toolchain reads ``pyproject.toml``
directly; offline boxes without the ``wheel`` package can fall back to
``python setup.py develop``.
"""

from setuptools import setup

setup()
