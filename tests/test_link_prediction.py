"""Tests for link prediction (negative sampling, BPR, trainer)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.link_prediction import (
    LinkPredictionTrainer,
    binary_cross_entropy_scores,
    bpr_loss,
    sample_negative_destinations,
    sample_positive_edges,
)
from repro.gnn.models import GraphSAGE
from repro.storage.attributes import AttributeStore


def bipartite_problem(num_users=60, num_items=30, dim=8, seed=0):
    """Users prefer items of their own latent group (2 groups)."""
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=16))
    feats = AttributeStore()
    feats.register("feat", dim)
    items = [10_000 + i for i in range(num_items)]
    for u in range(num_users):
        g = u % 2
        feats.put("feat", u, nprng.normal(2 * g - 1, 0.8, dim).astype(np.float32))
    for i, item in enumerate(items):
        g = i % 2
        feats.put("feat", item, nprng.normal(2 * g - 1, 0.8, dim).astype(np.float32))
    for u in range(num_users):
        liked = [it for j, it in enumerate(items) if j % 2 == u % 2]
        for item in rng.sample(liked, 6):
            store.add_edge(u, item, 1.0 + rng.random())
    return store, feats, items


class TestPairSampling:
    def test_positive_pairs_are_edges(self, rng):
        store, _, _ = bipartite_problem()
        srcs, dsts = sample_positive_edges(store, 64, rng)
        assert len(srcs) == len(dsts) == 64
        for s, d in zip(srcs, dsts):
            assert store.has_edge(s, d)

    def test_positive_pairs_weighted_by_degree(self, rng):
        store = DynamicGraphStore()
        for i in range(30):
            store.add_edge(1, 100 + i, 1.0)
        store.add_edge(2, 200, 1.0)
        srcs, _ = sample_positive_edges(store, 4000, rng)
        assert srcs.count(1) / len(srcs) == pytest.approx(30 / 31, abs=0.03)

    def test_empty_store(self, rng):
        srcs, dsts = sample_positive_edges(DynamicGraphStore(), 10, rng)
        assert srcs == [] and dsts == []

    def test_negatives_avoid_true_edges(self, rng):
        store, _, items = bipartite_problem()
        srcs = list(range(40))
        negs = sample_negative_destinations(store, srcs, items, rng)
        hits = sum(store.has_edge(s, d) for s, d in zip(srcs, negs))
        # With 10 retries and 20 % edge density per side, collisions are rare.
        assert hits <= 2

    def test_negatives_need_vocabulary(self, rng):
        with pytest.raises(ConfigurationError):
            sample_negative_destinations(DynamicGraphStore(), [1], [], rng)


class TestLosses:
    def test_bpr_perfect_separation(self):
        loss, gp, gn = bpr_loss(np.array([10.0, 10.0]), np.array([-10.0, -10.0]))
        assert loss == pytest.approx(0.0, abs=1e-4)
        assert np.abs(gp).max() < 1e-4

    def test_bpr_gradient_numeric(self):
        rng = np.random.default_rng(0)
        pos = rng.normal(size=6)
        neg = rng.normal(size=6)
        _, gp, gn = bpr_loss(pos, neg)
        eps = 1e-6
        for i in range(6):
            p2 = pos.copy(); p2[i] += eps
            num = (bpr_loss(p2, neg)[0] - bpr_loss(pos, neg)[0]) / eps
            assert gp[i] == pytest.approx(num, abs=1e-5)
            n2 = neg.copy(); n2[i] += eps
            num = (bpr_loss(pos, n2)[0] - bpr_loss(pos, neg)[0]) / eps
            assert gn[i] == pytest.approx(num, abs=1e-5)

    def test_bpr_shape_check(self):
        with pytest.raises(ShapeError):
            bpr_loss(np.zeros(3), np.zeros(4))

    def test_bce_gradient_numeric(self):
        rng = np.random.default_rng(1)
        scores = rng.normal(size=5)
        labels = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        _, grad = binary_cross_entropy_scores(scores, labels)
        eps = 1e-6
        for i in range(5):
            s2 = scores.copy(); s2[i] += eps
            num = (
                binary_cross_entropy_scores(s2, labels)[0]
                - binary_cross_entropy_scores(scores, labels)[0]
            ) / eps
            assert grad[i] == pytest.approx(num, abs=1e-5)

    def test_bce_shape_check(self):
        with pytest.raises(ShapeError):
            binary_cross_entropy_scores(np.zeros(3), np.zeros(2))


class TestTrainer:
    def make(self, seed=0):
        store, feats, items = bipartite_problem(seed=seed)
        nprng = np.random.default_rng(seed)
        encoder = GraphSAGE(8, 16, 8, num_layers=2, rng=nprng)
        trainer = LinkPredictionTrainer(
            store, feats, encoder, fanouts=[4, 4], lr=0.02,
            rng=random.Random(seed),
        )
        trainer.set_vocabulary(items)
        return trainer

    def test_fanout_validation(self):
        store, feats, _ = bipartite_problem()
        encoder = GraphSAGE(8, 16, 8, num_layers=2)
        with pytest.raises(ConfigurationError):
            LinkPredictionTrainer(store, feats, encoder, fanouts=[4])

    def test_requires_vocabulary(self):
        store, feats, _ = bipartite_problem()
        encoder = GraphSAGE(8, 16, 8, num_layers=2)
        trainer = LinkPredictionTrainer(store, feats, encoder, fanouts=[4, 4])
        with pytest.raises(ConfigurationError):
            trainer.train_step(8)

    def test_score_pairs_shape(self):
        trainer = self.make()
        scores = trainer.score_pairs([0, 1], [10_000, 10_001])
        assert scores.shape == (2,)
        with pytest.raises(ShapeError):
            trainer.score_pairs([0], [1, 2])

    def test_training_improves_ranking(self):
        trainer = self.make(seed=3)
        before = trainer.evaluate_auc(num_pairs=200)
        for _ in range(60):
            trainer.train_step(batch_size=32)
        after = trainer.evaluate_auc(num_pairs=200)
        assert after > max(0.8, before - 0.05)
        assert after > 0.8

    def test_ranking_harness(self):
        from repro.gnn.evaluation import evaluate_link_ranking

        trainer = self.make(seed=5)
        for _ in range(50):
            trainer.train_step(batch_size=32)
        metrics = evaluate_link_ranking(
            trainer,
            trainer.store,
            trainer._vocabulary,
            num_queries=40,
            num_candidates=10,
            k=3,
            rng=random.Random(1),
        )
        assert set(metrics) == {"hit@k", "mrr", "mean_rank"}
        # A trained model ranks the true item well above random
        # (random hit@3 of 10 candidates = 0.3, mean rank = 5.5).
        assert metrics["hit@k"] > 0.5
        assert metrics["mean_rank"] < 4.0
