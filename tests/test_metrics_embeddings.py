"""Tests for observability (metrics) and unsupervised walk embeddings."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.metrics import InstrumentedStore, LatencyHistogram, StoreMetrics
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError, VertexNotFoundError
from repro.gnn.embeddings import EmbeddingTable, SkipGramTrainer
from repro.gnn.samplers import sample_neighbor_matrix


class TestLatencyHistogram:
    def test_record_and_stats(self):
        hist = LatencyHistogram()
        for us in (1, 2, 4, 100, 1000):
            hist.record(us * 1e-6)
        assert hist.count == 5
        assert hist.mean == pytest.approx(1107 * 1e-6 / 5, rel=0.01)
        assert hist.max == pytest.approx(1e-3)
        assert hist.percentile(0.5) <= hist.percentile(0.99)

    def test_percentile_bounds(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0.0
        hist.record(5e-6)
        with pytest.raises(ConfigurationError):
            hist.percentile(1.5)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().record(-1.0)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(1e-6)
        b.record(1e-3)
        a.merge(b)
        assert a.count == 2
        assert a.max == pytest.approx(1e-3)

    def test_reset(self):
        hist = LatencyHistogram()
        hist.record(1e-6)
        hist.reset()
        assert hist.count == 0 and hist.mean == 0.0

    def test_summary_keys(self):
        hist = LatencyHistogram()
        hist.record(1e-5)
        assert set(hist.summary()) == {"count", "mean", "p50", "p99", "max"}


class TestStoreMetrics:
    def test_families(self):
        metrics = StoreMetrics()
        metrics.record("insert", 1e-6)
        assert metrics.histograms["insert"].count == 1
        with pytest.raises(ConfigurationError):
            metrics.record("nope", 1e-6)

    def test_report_format(self):
        metrics = StoreMetrics()
        metrics.record("sample", 2e-6)
        report = metrics.report()
        assert "sample" in report and "p99" in report

    def test_reset(self):
        metrics = StoreMetrics()
        metrics.record("read", 1e-6)
        metrics.reset()
        assert metrics.histograms["read"].count == 0


class TestInstrumentedStore:
    def test_wraps_transparently(self, rng):
        inner = DynamicGraphStore(SamtreeConfig(capacity=8))
        store = InstrumentedStore(inner)
        assert store.add_edge(1, 2, 0.5) is True
        assert store.update_edge(1, 2, 0.9) is True
        assert store.edge_weight(1, 2) == pytest.approx(0.9)
        assert store.degree(1) == 1
        assert store.neighbors(1) == [(2, 0.9)]
        assert store.sample_neighbors(1, 3, rng) == [2, 2, 2]
        assert store.remove_edge(1, 2) is True
        assert store.num_edges == 0
        store.check_invariants()

    def test_records_per_family(self, rng):
        store = InstrumentedStore(DynamicGraphStore())
        for i in range(10):
            store.add_edge(1, i, 1.0)
        store.sample_neighbors(1, 5, rng)
        store.neighbors(1)
        h = store.metrics.histograms
        assert h["insert"].count == 10
        assert h["sample"].count == 1
        assert h["read"].count == 1
        assert h["delete"].count == 0

    def test_usable_by_samplers(self, rng):
        store = InstrumentedStore(DynamicGraphStore())
        for i in range(5):
            store.add_edge(7, 100 + i, 1.0)
        out = sample_neighbor_matrix(store, [7], 4, rng)
        assert out.shape == (1, 4)
        assert store.metrics.histograms["sample"].count == 1


class TestEmbeddingTable:
    def test_allocation(self):
        table = EmbeddingTable(8, np.random.default_rng(0))
        i = table.index_of(42, create=True)
        assert i == 0
        assert table.index_of(42) == 0
        assert 42 in table and 43 not in table
        assert len(table) == 1
        assert table.vector(42).shape == (8,)
        with pytest.raises(VertexNotFoundError):
            table.vector(43)

    def test_rows_ordering(self):
        table = EmbeddingTable(4, np.random.default_rng(0))
        for v in (9, 3, 7):
            table.index_of(v, create=True)
        assert table.vertices() == [9, 3, 7]
        assert table.rows.shape == (3, 4)

    def test_dim_validation(self):
        with pytest.raises(ConfigurationError):
            EmbeddingTable(0, np.random.default_rng(0))


class TestSkipGramTrainer:
    def two_cluster_store(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=16))
        rng = random.Random(0)
        # Two dense cliques bridged by nothing: walks stay inside.
        for base in (0, 100):
            nodes = list(range(base, base + 12))
            for a in nodes:
                for b in rng.sample(nodes, 5):
                    if a != b:
                        store.add_edge(a, b, 1.0)
        return store

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SkipGramTrainer(num_negatives=0)
        with pytest.raises(ConfigurationError):
            SkipGramTrainer(lr=0.0)

    def test_empty_pairs(self):
        assert SkipGramTrainer().train_pairs([]) == 0.0

    def test_loss_decreases(self):
        trainer = SkipGramTrainer(dim=16, seed=1)
        store = self.two_cluster_store()
        seeds = list(store.sources())
        first = trainer.train_from_store(store, seeds, epochs=1)
        last = trainer.train_from_store(store, seeds, epochs=3)
        assert last < first

    def test_clusters_separate(self):
        trainer = SkipGramTrainer(dim=16, lr=0.05, seed=2)
        store = self.two_cluster_store()
        seeds = list(store.sources()) * 3
        for _ in range(4):
            trainer.train_from_store(store, seeds, walk_length=8, window=2)
        # Intra-cluster similarity should beat inter-cluster similarity.
        intra = trainer.similarity(0, 1)
        inter = trainer.similarity(0, 100)
        assert intra > inter

    def test_most_similar_prefers_same_cluster(self):
        trainer = SkipGramTrainer(dim=16, lr=0.05, seed=3)
        store = self.two_cluster_store()
        seeds = list(store.sources()) * 4
        for _ in range(8):
            trainer.train_from_store(store, seeds, walk_length=10, window=2)
        # Averaged over several query vertices, same-cluster hits dominate
        # (single-query top-k is noisy at this tiny scale).
        same_cluster = 0
        total = 0
        for query in (0, 1, 2, 100, 101, 102):
            for v, _ in trainer.most_similar(query, k=5):
                total += 1
                if (v < 100) == (query < 100):
                    same_cluster += 1
        assert same_cluster / total > 0.6

    def test_most_similar_excludes_self(self):
        trainer = SkipGramTrainer(dim=8, seed=4)
        trainer.train_pairs([(1, 2), (2, 1), (1, 3)])
        assert all(v != 1 for v, _ in trainer.most_similar(1, k=2))
