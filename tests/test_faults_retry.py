"""Tests for the fault-tolerance layer: fault injection, retry/backoff,
crash/recover durability, shard replication, and graceful degradation."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.ingest import EdgeBatch
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.distributed import (
    UNAVAILABLE,
    FaultInjector,
    FaultPolicy,
    GraphServer,
    LocalCluster,
    NetworkModel,
    RetryPolicy,
)
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
    ShardUnavailableError,
    TransientRPCError,
)
from repro.storage.wal import ShardWAL


# ---------------------------------------------------------------------------
# FaultPolicy / FaultInjector
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_policy_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPolicy(transient_error_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPolicy(crash_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPolicy(latency_spike_seconds=-1.0)

    def _run_sequence(self, seed, n=400):
        server = GraphServer(0, config=SamtreeConfig(capacity=8))
        injector = FaultInjector(
            FaultPolicy(transient_error_rate=0.2, latency_spike_rate=0.1),
            seed=seed,
        )
        outcomes = []
        for _ in range(n):
            try:
                injector.on_request(server, "x")
                outcomes.append("ok")
            except TransientRPCError:
                outcomes.append("transient")
        return outcomes, injector.stats

    def test_seeded_determinism(self):
        a, stats_a = self._run_sequence(42)
        b, stats_b = self._run_sequence(42)
        c, _ = self._run_sequence(43)
        assert a == b
        assert a != c
        assert stats_a.transient_errors == stats_b.transient_errors > 0
        assert stats_a.latency_spikes > 0

    def test_latency_spike_charges_network(self):
        net = NetworkModel()
        server = GraphServer(0)
        injector = FaultInjector(
            FaultPolicy(latency_spike_rate=1.0, latency_spike_seconds=0.25),
            seed=0,
            network=net,
        )
        injector.on_request(server, "x")
        assert net.stats.slept_seconds == pytest.approx(0.25)
        assert net.stats.simulated_seconds == pytest.approx(0.25)

    def test_injected_crash_downs_server(self):
        server = GraphServer(0, config=SamtreeConfig(capacity=8))
        injector = FaultInjector(FaultPolicy(crash_rate=1.0), seed=1)
        with pytest.raises(ShardUnavailableError):
            injector.on_request(server, "x")
        assert not server.alive
        assert injector.stats.crashes == 1

    def test_pause_resume(self):
        server = GraphServer(0)
        injector = FaultInjector(
            FaultPolicy(transient_error_rate=1.0), seed=0
        )
        injector.pause()
        injector.on_request(server, "x")  # no raise while paused
        injector.resume()
        with pytest.raises(TransientRPCError):
            injector.on_request(server, "x")


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline_seconds=0.0)

    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_seconds=1e-3)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientRPCError("boom")
            return "done"

        assert policy.run(flaky) == "done"
        assert calls["n"] == 3
        assert policy.stats.retries == 2
        assert policy.stats.recoveries == 1
        assert policy.stats.backoff_seconds > 0

    def test_exhaustion_chains_last_error(self):
        policy = RetryPolicy(max_attempts=3)

        def always():
            raise TransientRPCError("nope")

        with pytest.raises(RetryExhaustedError) as exc_info:
            policy.run(always)
        assert isinstance(exc_info.value.__cause__, TransientRPCError)
        assert policy.stats.exhausted == 1
        assert policy.stats.attempts == 3

    def test_non_transient_errors_propagate_untouched(self):
        policy = RetryPolicy(max_attempts=5)
        attempts = {"n": 0}

        def down():
            attempts["n"] += 1
            raise ShardUnavailableError("dead")

        with pytest.raises(ShardUnavailableError):
            policy.run(down)
        assert attempts["n"] == 1  # not retried

    def test_deadline_on_simulated_clock(self):
        net = NetworkModel(latency_seconds=0.4)
        policy = RetryPolicy(
            max_attempts=10, base_backoff_seconds=0.5, jitter=0.0,
            deadline_seconds=1.0,
        )

        def flaky():
            net.send(0)  # 0.4 simulated seconds per attempt
            raise TransientRPCError("boom")

        with pytest.raises(DeadlineExceededError):
            policy.run(flaky, now=net.now, sleep=net.sleep)
        assert policy.stats.deadline_exceeded == 1
        # The simulated clock never advanced past deadline + one backoff.
        assert net.stats.simulated_seconds < 3.0

    def test_backoff_grows_geometrically_with_bounded_jitter(self):
        policy = RetryPolicy(
            base_backoff_seconds=1.0, backoff_multiplier=2.0, jitter=0.5,
            seed=3,
        )
        for attempt in (1, 2, 3, 4):
            nominal = 2.0 ** (attempt - 1)
            d = policy.backoff_for(attempt)
            assert 0.5 * nominal <= d <= 1.5 * nominal


# ---------------------------------------------------------------------------
# Server crash / checkpoint / WAL recovery
# ---------------------------------------------------------------------------
class TestServerDurability:
    def _server(self, wal=True):
        return GraphServer(
            0,
            config=SamtreeConfig(capacity=8),
            wal=ShardWAL(shard_id=0) if wal else None,
        )

    def test_crashed_endpoints_refuse(self):
        server = self._server()
        server.apply_ops([EdgeOp.insert(1, 2, 1.0)])
        server.crash()
        for call in (
            lambda: server.apply_ops([EdgeOp.insert(3, 4, 1.0)]),
            lambda: server.ingest_batch(EdgeBatch.inserts([1], [5])),
            lambda: server.sample_neighbors_many([1], 2),
            lambda: server.degrees([1]),
            lambda: server.neighbors_batch([1]),
            lambda: server.gather_attributes("f", [1]),
            lambda: server.checkpoint(),
        ):
            with pytest.raises(ShardUnavailableError):
                call()

    def test_recover_from_wal_only(self):
        server = self._server()
        server.apply_ops([EdgeOp.insert(1, 2, 0.5), EdgeOp.insert(1, 3, 1.5)])
        server.ingest_batch(EdgeBatch.inserts([9, 9], [1, 2], [2.0, 3.0]))
        server.apply_ops([EdgeOp.delete(1, 3)])
        before = {s: dict(server.store.neighbors(s)) for s in (1, 9)}
        server.crash()
        replayed = server.recover()
        assert replayed == 3
        for s in (1, 9):
            assert dict(server.store.neighbors(s)) == pytest.approx(before[s])
        assert server.stats.recoveries == 1

    def test_recover_from_checkpoint_plus_tail(self):
        server = self._server()
        server.ingest_batch(
            EdgeBatch.inserts(list(range(20)), list(range(100, 120)))
        )
        server.checkpoint()
        assert server.wal.num_records() == 0
        server.apply_ops([EdgeOp.insert(0, 999, 2.0)])
        server.crash()
        replayed = server.recover()
        assert replayed == 1  # only the tail
        assert server.store.edge_weight(0, 999) == pytest.approx(2.0)
        assert server.store.num_edges == 21

    def test_checkpoint_covers_attributes(self):
        server = self._server()
        server.register_attribute("feat", 2)
        server.put_attribute("feat", 5, [1.0, 2.0])
        server.checkpoint()
        server.crash()
        server.recover()
        assert server.attributes.get("feat", 5).tolist() == [1.0, 2.0]

    def test_recover_without_durability_starts_empty(self):
        server = self._server(wal=False)
        server.apply_ops([EdgeOp.insert(1, 2, 1.0)])
        server.crash()
        server.recover()
        assert server.store.num_edges == 0  # volatile state truly lost

    def test_uniform_request_accounting(self):
        server = self._server(wal=False)
        server.apply_ops([EdgeOp.insert(1, 2, 1.0)])
        server.ingest_batch(EdgeBatch.inserts([1], [3]))
        server.sample_neighbors_many([1], 2)
        server.sample_neighbors_uniform_many([1], 2)
        server.neighbors_batch([1])
        server.degrees([1])
        server.edge_weights([(1, 2)])
        server.register_attribute("f", 1)
        server.put_attribute("f", 1, [0.5])
        server.gather_attributes("f", [1])
        stats = server.stats
        assert stats.update_requests == 1
        assert stats.ingest_requests == 1
        assert stats.sample_requests == 5
        assert stats.attribute_requests == 3
        assert stats.ops_applied == 2
        stats.reset()
        assert stats.update_requests == stats.ingest_requests == 0
        assert stats.sample_requests == stats.attribute_requests == 0
        assert stats.ops_applied == stats.recoveries == 0
        assert stats.wal_records_replayed == 0
        assert stats.requests == stats.refused_requests == 0


# ---------------------------------------------------------------------------
# Server-vs-injector request-ledger reconciliation
# ---------------------------------------------------------------------------
class TestRequestReconciliation:
    """The server's own request ledger must agree with the fault
    injector's across crash/recover cycles (the two were maintained in
    different layers and could silently drift)."""

    def _endpoint_total(self, stats) -> int:
        return (
            stats.update_requests
            + stats.ingest_requests
            + stats.sample_requests
            + stats.attribute_requests
        )

    def test_single_server_ledgers_reconcile(self):
        injector = FaultInjector(FaultPolicy(), seed=3)
        server = GraphServer(
            0,
            config=SamtreeConfig(capacity=8),
            wal=ShardWAL(),
            faults=injector,
        )
        server.apply_ops([EdgeOp.insert(1, 2, 1.0)])
        server.sample_neighbors_many([1], 2)
        server.crash()
        for _ in range(4):  # refused while down
            with pytest.raises(ShardUnavailableError):
                server.sample_neighbors_many([1], 2)
        server.recover()
        server.sample_neighbors_many([1], 2)
        stats = server.stats
        assert stats.requests == 7
        assert stats.refused_requests == 4
        # server ledger == injector ledger, on both sides of the split
        assert stats.refused_requests == injector.stats.refused_while_down
        assert (
            stats.requests - stats.refused_requests
            == injector.stats.requests
        )
        # and the per-endpoint counters cover every served request
        assert (
            stats.requests
            == stats.refused_requests + self._endpoint_total(stats)
        )

    def test_cluster_ledgers_reconcile_under_outage(self):
        cluster = LocalCluster(
            num_servers=2,
            config=SamtreeConfig(capacity=8),
            replication_factor=2,
            durable=True,
            fault_policy=FaultPolicy(),  # injector attached, no chaos
            degraded_reads=True,
        )
        rng = random.Random(0)
        for i in range(40):
            cluster.client.add_edge(rng.randrange(10), rng.randrange(10))
        cluster.crash(0, 0)  # primary of shard 0 down -> failover reads
        cluster.client.sample_neighbors_many(list(range(10)), 3, rng)
        cluster.crash_shard(1)  # total outage -> degraded reads
        cluster.client.sample_neighbors_many(list(range(10)), 3, rng)
        cluster.recover_all()
        cluster.client.sample_neighbors_many(list(range(10)), 3, rng)
        servers = [s for g in cluster.replica_groups for s in g]
        total_requests = sum(s.stats.requests for s in servers)
        total_refused = sum(s.stats.refused_requests for s in servers)
        total_endpoint = sum(self._endpoint_total(s.stats) for s in servers)
        injector = cluster.fault_injector
        assert total_refused > 0  # the outage really refused requests
        assert total_refused == injector.stats.refused_while_down
        assert total_requests - total_refused == injector.stats.requests
        assert total_requests == total_refused + total_endpoint


# ---------------------------------------------------------------------------
# Client retry integration + network accounting
# ---------------------------------------------------------------------------
class TestClientRetryIntegration:
    def test_account_propagates_send_cost(self):
        net = NetworkModel(latency_seconds=1e-3, bandwidth_bytes_per_second=1e6)
        cluster = LocalCluster(num_servers=2, network=net)
        cluster.client.add_edge(1, 2, 1.0)
        assert net.stats.last_send_seconds == pytest.approx(
            1e-3 + 21 / 1e6
        )

    def test_transient_faults_retried_to_success(self):
        net = NetworkModel()
        retry = RetryPolicy(max_attempts=8, base_backoff_seconds=1e-4, seed=5)
        cluster = LocalCluster(
            num_servers=2,
            config=SamtreeConfig(capacity=8),
            network=net,
            fault_policy=FaultPolicy(transient_error_rate=0.3),
            fault_seed=17,
            retry=retry,
        )
        rng = random.Random(1)
        for _ in range(200):
            cluster.client.add_edge(rng.randrange(30), rng.randrange(90), 1.0)
        assert cluster.fault_injector.stats.transient_errors > 0
        assert retry.stats.retries > 0
        assert retry.stats.recoveries > 0
        assert retry.stats.exhausted == 0
        # Retries cost extra simulated messages.
        assert net.stats.messages > 200
        # Backoff advanced the simulated clock.
        assert net.stats.slept_seconds > 0

    def test_without_retry_transient_surfaces(self):
        cluster = LocalCluster(
            num_servers=1,
            fault_policy=FaultPolicy(transient_error_rate=1.0),
        )
        with pytest.raises(TransientRPCError):
            cluster.client.add_edge(1, 2, 1.0)


# ---------------------------------------------------------------------------
# Replication: primary-backup writes, read failover, peer resync
# ---------------------------------------------------------------------------
class TestReplication:
    def _cluster(self, **kw):
        return LocalCluster(
            num_servers=2,
            config=SamtreeConfig(capacity=8),
            replication_factor=2,
            durable=True,
            **kw,
        )

    def test_writes_land_on_all_replicas(self):
        cluster = self._cluster()
        for src in range(40):
            cluster.client.add_edge(src, src + 100, 1.0)
        for shard, group in enumerate(cluster.replica_groups):
            primary, backup = group
            assert primary.store.num_edges == backup.store.num_edges
            for s in primary.store.sources():
                assert dict(primary.store.neighbors(s)) == dict(
                    backup.store.neighbors(s)
                )

    def test_read_failover_to_backup(self):
        cluster = self._cluster()
        for src in range(40):
            cluster.client.add_edge(src, src + 100, 2.0)
        cluster.crash(0, replica=0)  # primary of shard 0 down
        cluster.crash(1, replica=0)
        for src in range(40):
            assert cluster.client.degree(src) == 1
            assert cluster.client.edge_weight(src, src + 100) == pytest.approx(2.0)
        rows = cluster.client.sample_neighbors_batch(list(range(40)), 3)
        assert all(row == [s + 100] * 3 for s, row in enumerate(rows))
        assert cluster.client.num_edges == 40

    def test_recover_resyncs_missed_writes_from_peer(self):
        cluster = self._cluster()
        cluster.client.add_edge(1, 2, 1.0)
        cluster.crash(0, replica=1)
        cluster.crash(1, replica=1)
        # Writes continue against the primaries while backups are down.
        for src in range(30):
            cluster.client.add_edge(src, src + 500, 1.0)
        assert cluster.recover_all(sync=True) == 0  # state transfer, no WAL
        for shard, group in enumerate(cluster.replica_groups):
            primary, backup = group
            assert backup.store.num_edges == primary.store.num_edges
            for s in primary.store.sources():
                assert dict(backup.store.neighbors(s)) == dict(
                    primary.store.neighbors(s)
                )

    def test_total_shard_outage_recovers_from_wal(self):
        cluster = self._cluster()
        for src in range(40):
            cluster.client.add_edge(src, src + 100, 1.0)
        cluster.crash_shard(0)
        with pytest.raises(ShardUnavailableError):
            # Some src of shard 0 must exist among 0..39; find one.
            for src in range(40):
                cluster.client.degree(src)
        replayed = cluster.recover_all()
        assert replayed > 0
        assert cluster.client.num_edges == 40

    def test_write_fails_only_when_all_replicas_down(self):
        cluster = self._cluster()
        shard = cluster.partitioner.shard_for(7)
        cluster.crash(shard, replica=0)
        assert cluster.client.add_edge(7, 8, 1.0) is True  # backup took it
        cluster.crash(shard, replica=1)
        with pytest.raises(ShardUnavailableError):
            cluster.client.add_edge(7, 9, 1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalCluster(num_servers=2, replication_factor=0)
        with pytest.raises(ConfigurationError):
            LocalCluster(num_servers=2, wal_dir="/tmp/x")  # needs durable


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------
class TestDegradedReads:
    def _down_shard_cluster(self):
        cluster = LocalCluster(
            num_servers=3,
            config=SamtreeConfig(capacity=8),
            degraded_reads=True,
        )
        for src in range(60):
            cluster.client.add_edge(src, src + 1000, 1.0)
        cluster.crash_shard(1)
        owned = [
            s for s in range(60) if cluster.partitioner.shard_for(s) == 1
        ]
        assert owned  # 60 sources over 3 shards: shard 1 owns some
        return cluster, owned

    def test_partial_batch_with_unavailable_markers(self):
        cluster, owned = self._down_shard_cluster()
        srcs = list(range(60))
        rows = cluster.client.sample_neighbors_many(srcs, 4)
        for s, row in zip(srcs, rows):
            if s in owned:
                assert row is UNAVAILABLE
            else:
                assert list(row) == [s + 1000] * 4
        # The marker degrades like an empty row.
        assert not UNAVAILABLE
        assert len(UNAVAILABLE) == 0
        assert list(UNAVAILABLE) == []

    def test_scalar_reads_degrade(self):
        cluster, owned = self._down_shard_cluster()
        src = owned[0]
        assert cluster.client.degree(src) is UNAVAILABLE
        assert cluster.client.edge_weight(src, src + 1000) is None
        assert cluster.client.neighbors(src) is UNAVAILABLE

    def test_degraded_gather_zero_fills(self):
        cluster, owned = self._down_shard_cluster()
        # Re-register on live shards only (shard 1 is down and skipped).
        cluster.client.register_attribute("feat", 2)
        live_vertex = next(
            s for s in range(60) if cluster.partitioner.shard_for(s) != 1
        )
        cluster.client.put_attribute("feat", live_vertex, [3.0, 4.0])
        out = cluster.client.gather_attributes(
            "feat", [live_vertex, owned[0]]
        )
        assert out[0].tolist() == [3.0, 4.0]
        assert out[1].tolist() == [0.0, 0.0]

    def test_without_degraded_mode_reads_raise(self):
        cluster = LocalCluster(num_servers=2, config=SamtreeConfig(capacity=8))
        cluster.client.add_edge(1, 2, 1.0)
        cluster.crash_shard(cluster.partitioner.shard_for(1))
        with pytest.raises(ShardUnavailableError):
            cluster.client.sample_neighbors_many([1], 3)


# ---------------------------------------------------------------------------
# Cluster control plane
# ---------------------------------------------------------------------------
class TestClusterControlPlane:
    def test_dead_replicas_and_shard_infos(self):
        cluster = LocalCluster(
            num_servers=2, replication_factor=2, durable=True
        )
        cluster.client.add_edge(1, 2, 1.0)
        assert cluster.all_alive()
        cluster.crash(0, replica=1)
        assert cluster.dead_replicas() == [(0, 1)]
        infos = cluster.shard_infos()
        assert infos[0].live_replicas == 1
        assert infos[1].live_replicas == 2
        cluster.crash_shard(0)
        infos = cluster.shard_infos()
        assert infos[0].live_replicas == 0
        assert infos[0].num_edges == 0

    def test_reset_stats_covers_everything(self):
        net = NetworkModel()
        retry = RetryPolicy(max_attempts=4, seed=2)
        cluster = LocalCluster(
            num_servers=2,
            network=net,
            fault_policy=FaultPolicy(transient_error_rate=0.5),
            fault_seed=3,
            retry=retry,
        )
        for src in range(50):
            cluster.client.add_edge(src, src + 1, 1.0)
        assert cluster.fault_injector.stats.requests > 0
        cluster.reset_stats()
        assert cluster.fault_injector.stats.requests == 0
        assert retry.stats.attempts == 0
        assert net.stats.messages == 0
        assert all(
            s.stats.update_requests == 0 for s in cluster.servers
        )

    def test_checkpoint_all_skips_dead(self):
        cluster = LocalCluster(num_servers=2, durable=True)
        cluster.client.add_edge(1, 2, 1.0)
        cluster.crash(0)
        assert cluster.checkpoint_all() > 0  # live shard checkpointed
