"""Tests for ranking metrics, edge-list I/O, and store diffing."""

from __future__ import annotations

import io
import random

import numpy as np
import pytest

from repro.baselines import PlatoGLStore
from repro.core.diff import apply_diff, diff_stores, edge_set, stores_equal
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import OpKind
from repro.datasets.io import load_edge_list, read_edge_list, write_edge_list
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.evaluation import (
    hit_rate_at_k,
    mean_reciprocal_rank,
    ndcg_at_k,
    rank_of_positive,
    recall_at_k,
)


class TestRankingMetrics:
    def test_rank_of_positive(self):
        assert rank_of_positive(np.array([5.0, 1.0, 3.0])) == 1
        assert rank_of_positive(np.array([1.0, 5.0, 3.0])) == 3
        # Pessimistic ties: an equal decoy outranks the positive.
        assert rank_of_positive(np.array([2.0, 2.0])) == 2
        with pytest.raises(ShapeError):
            rank_of_positive(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            rank_of_positive(np.zeros(2), 5)

    def test_hit_rate(self):
        assert hit_rate_at_k([1, 3, 10], k=3) == pytest.approx(2 / 3)
        assert hit_rate_at_k([], k=3) == 0.0
        with pytest.raises(ConfigurationError):
            hit_rate_at_k([1], k=0)

    def test_mrr(self):
        assert mean_reciprocal_rank([1, 2, 4]) == pytest.approx(
            (1 + 0.5 + 0.25) / 3
        )
        assert mean_reciprocal_rank([]) == 0.0
        with pytest.raises(ConfigurationError):
            mean_reciprocal_rank([0])

    def test_recall(self):
        recs = [[1, 2, 3], [9, 8, 7]]
        rels = [[2, 4], [5]]
        assert recall_at_k(recs, rels, k=3) == pytest.approx((0.5 + 0.0) / 2)
        assert recall_at_k(recs, rels, k=1) == pytest.approx(0.0)
        with pytest.raises(ShapeError):
            recall_at_k(recs, rels[:1], k=2)

    def test_recall_skips_empty_relevance(self):
        assert recall_at_k([[1], [2]], [[1], []], k=1) == pytest.approx(1.0)

    def test_ndcg_perfect_and_worst(self):
        assert ndcg_at_k([[1, 2]], [[1, 2]], k=2) == pytest.approx(1.0)
        assert ndcg_at_k([[3, 4]], [[1, 2]], k=2) == pytest.approx(0.0)
        # Relevant item at position 2 instead of 1.
        got = ndcg_at_k([[9, 1]], [[1]], k=2)
        assert 0.0 < got < 1.0


class TestEdgeListIO:
    SAMPLE = "\n".join(
        [
            "# comment",
            "",
            "1 2",
            "1 3 0.5",
            "2\t3\t1.5\t4",
        ]
    )

    def test_read(self):
        rows = list(read_edge_list(io.StringIO(self.SAMPLE)))
        assert rows == [
            (1, 2, 1.0, 0),
            (1, 3, 0.5, 0),
            (2, 3, 1.5, 4),
        ]

    def test_read_malformed(self):
        with pytest.raises(ConfigurationError, match="line 1"):
            list(read_edge_list(io.StringIO("1")))
        with pytest.raises(ConfigurationError, match="line 1"):
            list(read_edge_list(io.StringIO("a b")))
        with pytest.raises(ConfigurationError):
            list(read_edge_list(io.StringIO("1 2 3 4 5")))

    def test_load_into_store(self):
        store = DynamicGraphStore()
        ops = load_edge_list(store, io.StringIO(self.SAMPLE))
        assert ops == 3
        assert store.edge_weight(1, 3) == pytest.approx(0.5)
        assert store.edge_weight(2, 3, etype=4) == pytest.approx(1.5)

    def test_load_bidirected(self):
        store = DynamicGraphStore()
        load_edge_list(store, io.StringIO("1 2 0.5"), bidirected=True)
        assert store.edge_weight(1, 2) == pytest.approx(0.5)
        assert store.edge_weight(2, 1, etype=8) == pytest.approx(0.5)

    def test_roundtrip_file(self, tmp_path):
        store = DynamicGraphStore()
        rng = random.Random(0)
        for _ in range(200):
            store.add_edge(
                rng.randrange(20), rng.randrange(50),
                round(rng.random(), 6), rng.randrange(2),
            )
        path = tmp_path / "edges.tsv"
        written = write_edge_list(store, str(path))
        assert written == store.num_edges
        reloaded = DynamicGraphStore()
        load_edge_list(reloaded, str(path))
        assert stores_equal(store, reloaded)


class TestDiff:
    def fill(self, store, edges):
        for etype, src, dst, w in edges:
            store.add_edge(src, dst, w, etype)
        return store

    def test_edge_set(self):
        store = self.fill(DynamicGraphStore(), [(0, 1, 2, 1.0), (3, 1, 2, 2.0)])
        assert edge_set(store) == {(0, 1, 2): 1.0, (3, 1, 2): 2.0}

    def test_empty_diff_means_equal(self):
        a = self.fill(DynamicGraphStore(), [(0, 1, 2, 1.0)])
        b = self.fill(DynamicGraphStore(), [(0, 1, 2, 1.0)])
        assert diff_stores(a, b) == []
        assert stores_equal(a, b)

    def test_diff_kinds(self):
        a = self.fill(DynamicGraphStore(), [(0, 1, 2, 1.0), (0, 1, 3, 1.0)])
        b = self.fill(DynamicGraphStore(), [(0, 1, 3, 5.0), (0, 1, 4, 1.0)])
        ops = diff_stores(a, b)
        assert {op.kind for op in ops} == {
            OpKind.DELETE, OpKind.INSERT, OpKind.UPDATE,
        }
        assert len(ops) == 3

    def test_apply_diff_converges(self):
        rng = random.Random(1)
        a = DynamicGraphStore(SamtreeConfig(capacity=8))
        b = DynamicGraphStore(SamtreeConfig(capacity=8))
        for _ in range(400):
            a.add_edge(rng.randrange(10), rng.randrange(40), rng.random())
            b.add_edge(rng.randrange(10), rng.randrange(40), rng.random())
        apply_diff(a, diff_stores(a, b))
        assert stores_equal(a, b)
        assert diff_stores(a, b) == []

    def test_diff_across_backends(self):
        """Replicating a samtree store onto a PlatoGL store."""
        rng = random.Random(2)
        primary = DynamicGraphStore()
        for _ in range(200):
            primary.add_edge(rng.randrange(8), rng.randrange(30), rng.random())
        replica = PlatoGLStore()
        apply_diff(replica, diff_stores(replica, primary))
        assert stores_equal(replica, primary)

    def test_tolerance_suppresses_drift(self):
        a = self.fill(DynamicGraphStore(), [(0, 1, 2, 1.0)])
        b = self.fill(DynamicGraphStore(), [(0, 1, 2, 1.0 + 1e-12)])
        assert stores_equal(a, b)
        assert not stores_equal(a, b, weight_tolerance=1e-15)
