"""Integration tests: the full stack wired together the way the paper's
production deployment runs it — distributed heterogeneous storage, PALM
batch updates, operator-layer sampling, and GNN training on a graph that
keeps changing underneath the trainer.
"""

from __future__ import annotations

import random

import numpy as np

from repro.concurrency.palm import PalmExecutor
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.datasets.presets import wechat_scaled
from repro.datasets.stream import EdgeStream
from repro.distributed import LocalCluster, NetworkModel
from repro.gnn.models import GraphSAGE
from repro.gnn.samplers import sample_blocks, sample_metapath, sample_seed_nodes
from repro.gnn.training import Trainer
from repro.storage.attributes import AttributeStore


def test_wechat_pipeline_end_to_end():
    """Build the 4-relation WeChat-scaled graph with PALM batches, run
    meta-path sampling over it, and verify invariants afterwards."""
    data = wechat_scaled(scale=4_000_000)
    store = DynamicGraphStore(SamtreeConfig(capacity=32))
    executor = PalmExecutor(store, num_threads=4)
    stream = EdgeStream(data, seed=0)
    for batch in stream.build_batches(2048):
        executor.apply_batch(batch)
    assert store.num_edges == stream.num_live_edges
    store.check_invariants()
    # Four forward relations plus their bi-directed reversed twins.
    assert set(store.etypes()) == {0, 1, 2, 3, 8, 9, 10, 11}

    # Meta-path User→Live→Live (the recommendation pattern).
    rng = random.Random(1)
    user_live = data.relation("User-Live")
    seeds = [int(user_live.src[i]) for i in range(8)]
    levels = sample_metapath(store, seeds, [(0, 5), (2, 3)], rng)
    assert levels[1].shape == (40,)
    assert levels[2].shape == (120,)

    # Churn through the executor, then re-validate.
    for batch in stream.churn_batches(512, 4, mix=(0.4, 0.4, 0.2)):
        executor.apply_batch(batch)
    assert store.num_edges == stream.num_live_edges
    store.check_invariants()


def test_training_on_distributed_cluster():
    """The trainer runs unmodified against the routing client."""
    rng = random.Random(2)
    nprng = np.random.default_rng(2)
    cluster = LocalCluster(
        num_servers=3,
        config=SamtreeConfig(capacity=16),
        network=NetworkModel(),
    )
    client = cluster.client
    n, dim = 120, 6
    feats = AttributeStore()
    feats.register("feat", dim)
    labels = {}
    for v in range(n):
        c = v % 2
        labels[v] = c
        feats.put("feat", v, nprng.normal(2.0 * c - 1.0, 1.0, dim).astype(np.float32))
    edges = 0
    while edges < n * 6:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and a % 2 == b % 2:
            client.add_edge(a, b, 1.0)
            edges += 1
    seeds = [v for v in range(n) if client.degree(v) > 0]
    y = [labels[v] for v in seeds]
    model = GraphSAGE(dim, 12, 2, num_layers=2, rng=nprng)
    trainer = Trainer(client, feats, model, fanouts=[4, 4], rng=rng)
    for epoch in range(5):
        trainer.train_epoch(seeds, y, batch_size=24, epoch=epoch)
    assert trainer.evaluate(seeds, y) > 0.85
    # The cluster routed real traffic.
    assert cluster.network.stats.messages > 0
    assert sum(s.stats.sample_requests for s in cluster.servers) > 0


def test_concurrent_updates_visible_to_sampler():
    """Figure 1's core premise: samples reflect the latest graph state."""
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    executor = PalmExecutor(store, num_threads=2)
    executor.apply_batch([EdgeOp.insert(1, 100, 1.0)])
    rng = random.Random(3)
    assert set(store.sample_neighbors(1, 20, rng)) == {100}
    # A batch rewires vertex 1 entirely.
    executor.apply_batch(
        [EdgeOp.delete(1, 100)] + [EdgeOp.insert(1, 200 + i, 1.0) for i in range(5)]
    )
    out = set(store.sample_neighbors(1, 200, rng))
    assert 100 not in out
    assert out <= {200, 201, 202, 203, 204}


def test_seed_sampling_feeds_block_sampling():
    store = DynamicGraphStore(SamtreeConfig(capacity=16))
    r = random.Random(4)
    for _ in range(2000):
        store.add_edge(r.randrange(50), r.randrange(500), r.random() + 0.1)
    seeds = sample_seed_nodes(store, 16, r)
    blocks = sample_blocks(store, seeds.tolist(), [5, 5], r)
    assert blocks.levels[0].shape == (16,)
    assert blocks.levels[2].shape == (400,)


def test_store_survives_adversarial_interleaving():
    """Insert/delete storms targeting one hub vertex with a tiny capacity
    force deep split/merge churn."""
    store = DynamicGraphStore(SamtreeConfig(capacity=4, alpha=1))
    r = random.Random(5)
    live = set()
    for round_no in range(30):
        batch = []
        for _ in range(200):
            dst = r.randrange(300)
            if r.random() < 0.55:
                batch.append(EdgeOp.insert(7, dst, r.random() + 0.01))
                live.add(dst)
            else:
                batch.append(EdgeOp.delete(7, dst))
                live.discard(dst)
        PalmExecutor(store, num_threads=2).apply_batch(batch)
        if round_no % 10 == 9:
            store.check_invariants()
    assert store.degree(7) == len(live)
    assert {dst for dst, _ in store.neighbors(7)} == live
