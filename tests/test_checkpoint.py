"""Tests for binary snapshot persistence (repro.storage.checkpoint)."""

from __future__ import annotations

import io
import random

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError
from repro.storage.attributes import AttributeStore
from repro.storage.checkpoint import (
    load_attributes,
    load_store,
    save_attributes,
    save_store,
)


def random_store(seed=0, n=2000, capacity=16) -> DynamicGraphStore:
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=capacity))
    for _ in range(n):
        store.add_edge(
            rng.randrange(50),
            rng.randrange(10**9),
            round(rng.random() * 10, 4),
            etype=rng.randrange(3),
        )
    return store


class TestStoreRoundtrip:
    def test_roundtrip_in_memory(self):
        store = random_store()
        buf = io.BytesIO()
        written = save_store(store, buf)
        assert written == len(buf.getvalue())
        buf.seek(0)
        loaded = load_store(buf)
        assert loaded.num_edges == store.num_edges
        assert loaded.num_sources == store.num_sources
        assert loaded.config == store.config
        for etype in store.etypes():
            for src in store.sources(etype):
                a = dict(store.neighbors(src, etype))
                b = dict(loaded.neighbors(src, etype))
                assert a.keys() == b.keys()
                for k in a:
                    assert b[k] == pytest.approx(a[k])
        loaded.check_invariants()

    def test_roundtrip_via_file(self, tmp_path):
        store = random_store(seed=1, n=500)
        path = str(tmp_path / "snap.pd2g")
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.num_edges == store.num_edges

    def test_empty_store(self):
        buf = io.BytesIO()
        save_store(DynamicGraphStore(), buf)
        buf.seek(0)
        loaded = load_store(buf)
        assert loaded.num_edges == 0

    def test_config_preserved(self):
        store = DynamicGraphStore(
            SamtreeConfig(capacity=32, alpha=3, compress=False)
        )
        store.add_edge(1, 2, 1.0)
        buf = io.BytesIO()
        save_store(store, buf)
        buf.seek(0)
        loaded = load_store(buf)
        assert loaded.config.capacity == 32
        assert loaded.config.alpha == 3
        assert loaded.config.compress is False

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            load_store(io.BytesIO(b"not a snapshot at all"))

    def test_rejects_truncation(self):
        store = random_store(seed=2, n=200)
        buf = io.BytesIO()
        save_store(store, buf)
        data = buf.getvalue()
        with pytest.raises(ConfigurationError):
            load_store(io.BytesIO(data[: len(data) // 2]))

    def test_rejects_future_version(self):
        buf = io.BytesIO()
        save_store(DynamicGraphStore(), buf)
        data = bytearray(buf.getvalue())
        data[4] = 0xFF  # bump version byte
        with pytest.raises(ConfigurationError):
            load_store(io.BytesIO(bytes(data)))

    def test_deterministic_bytes(self):
        a, b = io.BytesIO(), io.BytesIO()
        save_store(random_store(seed=3), a)
        save_store(random_store(seed=3), b)
        assert a.getvalue() == b.getvalue()


class TestAttributeRoundtrip:
    def test_roundtrip(self):
        attrs = AttributeStore()
        attrs.register("feat", 4)
        attrs.register("label", 1, np.dtype(np.int64))
        rng = np.random.default_rng(0)
        for v in range(100):
            attrs.put("feat", v * 7, rng.normal(size=4).astype(np.float32))
            attrs.put("label", v * 7, [v % 5])
        buf = io.BytesIO()
        save_attributes(attrs, buf)
        buf.seek(0)
        loaded = load_attributes(buf)
        assert sorted(loaded.fields()) == ["feat", "label"]
        assert loaded.schema("feat").dim == 4
        assert loaded.schema("label").dtype == np.dtype(np.int64)
        for v in range(100):
            assert loaded.get("feat", v * 7) == pytest.approx(
                attrs.get("feat", v * 7)
            )
            assert loaded.get("label", v * 7)[0] == v % 5

    def test_empty(self):
        buf = io.BytesIO()
        save_attributes(AttributeStore(), buf)
        buf.seek(0)
        assert list(load_attributes(buf).fields()) == []

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            load_attributes(io.BytesIO(b"xxxxxxxxxxxx"))

    def test_file_roundtrip(self, tmp_path):
        attrs = AttributeStore()
        attrs.register("feat", 2)
        attrs.put("feat", 9, [1.0, 2.0])
        path = str(tmp_path / "attrs.pd2a")
        save_attributes(attrs, path)
        loaded = load_attributes(path)
        assert loaded.get("feat", 9).tolist() == [1.0, 2.0]
