"""Tests for binary snapshot persistence (repro.storage.checkpoint)."""

from __future__ import annotations

import io
import random

import numpy as np
import pytest

from repro.core.ingest import OP_DELETE, OP_INSERT, OP_UPDATE, EdgeBatch
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError
from repro.storage.attributes import AttributeStore
from repro.storage.checkpoint import (
    load_attributes,
    load_store,
    save_attributes,
    save_store,
)


def random_store(seed=0, n=2000, capacity=16) -> DynamicGraphStore:
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=capacity))
    for _ in range(n):
        store.add_edge(
            rng.randrange(50),
            rng.randrange(10**9),
            round(rng.random() * 10, 4),
            etype=rng.randrange(3),
        )
    return store


class TestStoreRoundtrip:
    def test_roundtrip_in_memory(self):
        store = random_store()
        buf = io.BytesIO()
        written = save_store(store, buf)
        assert written == len(buf.getvalue())
        buf.seek(0)
        loaded = load_store(buf)
        assert loaded.num_edges == store.num_edges
        assert loaded.num_sources == store.num_sources
        assert loaded.config == store.config
        for etype in store.etypes():
            for src in store.sources(etype):
                a = dict(store.neighbors(src, etype))
                b = dict(loaded.neighbors(src, etype))
                assert a.keys() == b.keys()
                for k in a:
                    assert b[k] == pytest.approx(a[k])
        loaded.check_invariants()

    def test_roundtrip_via_file(self, tmp_path):
        store = random_store(seed=1, n=500)
        path = str(tmp_path / "snap.pd2g")
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.num_edges == store.num_edges

    def test_empty_store(self):
        buf = io.BytesIO()
        save_store(DynamicGraphStore(), buf)
        buf.seek(0)
        loaded = load_store(buf)
        assert loaded.num_edges == 0

    def test_config_preserved(self):
        store = DynamicGraphStore(
            SamtreeConfig(capacity=32, alpha=3, compress=False)
        )
        store.add_edge(1, 2, 1.0)
        buf = io.BytesIO()
        save_store(store, buf)
        buf.seek(0)
        loaded = load_store(buf)
        assert loaded.config.capacity == 32
        assert loaded.config.alpha == 3
        assert loaded.config.compress is False

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            load_store(io.BytesIO(b"not a snapshot at all"))

    def test_rejects_truncation(self):
        store = random_store(seed=2, n=200)
        buf = io.BytesIO()
        save_store(store, buf)
        data = buf.getvalue()
        with pytest.raises(ConfigurationError):
            load_store(io.BytesIO(data[: len(data) // 2]))

    def test_rejects_future_version(self):
        buf = io.BytesIO()
        save_store(DynamicGraphStore(), buf)
        data = bytearray(buf.getvalue())
        data[4] = 0xFF  # bump version byte
        with pytest.raises(ConfigurationError):
            load_store(io.BytesIO(bytes(data)))

    def test_deterministic_bytes(self):
        a, b = io.BytesIO(), io.BytesIO()
        save_store(random_store(seed=3), a)
        save_store(random_store(seed=3), b)
        assert a.getvalue() == b.getvalue()


class TestBulkBuiltRoundtrip:
    """Snapshots of stores built through the *columnar* ingest path.

    The incremental and bulk write paths produce structurally different
    samtrees (bottom-up packed leaves vs. insert-split growth); the
    checkpoint codec must roundtrip both, and a bulk-built snapshot must
    be byte-identical to the snapshot of the reloaded copy (the codec is
    canonical over the logical adjacency it encodes).
    """

    @staticmethod
    def _assert_equivalent(a: DynamicGraphStore, b: DynamicGraphStore):
        assert b.num_edges == a.num_edges
        assert b.num_sources == a.num_sources
        assert sorted(b.etypes()) == sorted(a.etypes())
        for etype in a.etypes():
            assert sorted(b.sources(etype)) == sorted(a.sources(etype))
            for src in a.sources(etype):
                expected = dict(a.neighbors(src, etype))
                got = dict(b.neighbors(src, etype))
                assert got.keys() == expected.keys()
                assert got == pytest.approx(expected)
        b.check_invariants()

    def test_bulk_load_roundtrip(self):
        rng = random.Random(31)
        n = 3000
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        store.bulk_load(
            [rng.randrange(60) for _ in range(n)],
            [rng.randrange(10**6) for _ in range(n)],
            [round(rng.random() * 9 + 0.01, 4) for _ in range(n)],
            [rng.randrange(3) for _ in range(n)],
        )
        buf = io.BytesIO()
        save_store(store, buf)
        loaded = load_store(io.BytesIO(buf.getvalue()))
        self._assert_equivalent(store, loaded)

    def test_mixed_op_batch_roundtrip(self):
        """apply_edge_batch with inserts/updates/deletes interleaved —
        including updates folding over inserts within one batch."""
        rng = random.Random(77)
        store = DynamicGraphStore(SamtreeConfig(capacity=4))
        for _ in range(5):
            n = 400
            store.apply_edge_batch(
                EdgeBatch(
                    [rng.randrange(25) for _ in range(n)],
                    [rng.randrange(60) for _ in range(n)],
                    [round(rng.random() * 4 + 0.01, 4) for _ in range(n)],
                    [rng.randrange(2) for _ in range(n)],
                    [
                        rng.choices(
                            [OP_INSERT, OP_UPDATE, OP_DELETE],
                            weights=[5, 3, 2],
                        )[0]
                        for _ in range(n)
                    ],
                )
            )
        buf = io.BytesIO()
        save_store(store, buf)
        loaded = load_store(io.BytesIO(buf.getvalue()))
        self._assert_equivalent(store, loaded)

    def test_deletes_emptying_trees_roundtrip(self):
        """A batch that deletes a source's entire neighborhood must not
        leave a phantom (empty-tree) section in the snapshot."""
        store = DynamicGraphStore(SamtreeConfig(capacity=4))
        store.bulk_load([1] * 6 + [2] * 3, list(range(9)), 1.0, 0)
        store.apply_edge_batch(
            EdgeBatch([1] * 6, list(range(6)), 1.0, 0, OP_DELETE)
        )
        assert store.degree(1, 0) == 0
        buf = io.BytesIO()
        save_store(store, buf)
        loaded = load_store(io.BytesIO(buf.getvalue()))
        self._assert_equivalent(store, loaded)
        assert loaded.degree(1, 0) == 0
        assert dict(loaded.neighbors(2, 0)) == pytest.approx(
            {0 + 6: 1.0, 1 + 6: 1.0, 2 + 6: 1.0}
        )

    def test_bulk_and_incremental_reloads_equivalent(self):
        """The two write paths grow structurally different trees (packed
        bottom-up leaves vs. insert-split growth), so their snapshots
        need not be byte-identical (tree order and ULP-level weight
        reconstruction differ between them) — but a reload of either
        must present the same logical adjacency, and repeated
        ``save → load`` cycles must not let weights walk away from the
        original values (drift stays within float tolerance)."""
        rng = random.Random(5)
        rows = [
            (rng.randrange(30), d, round(rng.random() * 3 + 0.01, 4))
            for d in range(800)
        ]
        bulk = DynamicGraphStore(SamtreeConfig(capacity=8))
        bulk.bulk_load(
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
            0,
        )
        inc = DynamicGraphStore(SamtreeConfig(capacity=8))
        for s, d, w in rows:
            inc.add_edge(s, d, w)
        for store in (bulk, inc):
            current = store
            for _ in range(3):  # drift must not compound over cycles
                buf = io.BytesIO()
                save_store(current, buf)
                current = load_store(io.BytesIO(buf.getvalue()))
                self._assert_equivalent(store, current)
        self._assert_equivalent(bulk, inc)

    def test_reload_then_mutate_then_snapshot_again(self):
        """A reloaded bulk-built store keeps working as a live store:
        more columnar churn applies cleanly and re-snapshots."""
        rng = random.Random(13)
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        store.bulk_load(
            [rng.randrange(20) for _ in range(500)],
            [rng.randrange(200) for _ in range(500)],
            1.0,
            0,
        )
        buf = io.BytesIO()
        save_store(store, buf)
        loaded = load_store(io.BytesIO(buf.getvalue()))
        batch = EdgeBatch(
            [rng.randrange(20) for _ in range(300)],
            [rng.randrange(200) for _ in range(300)],
            [round(rng.random() + 0.01, 4) for _ in range(300)],
            0,
            [
                rng.choices([OP_INSERT, OP_DELETE], weights=[3, 1])[0]
                for _ in range(300)
            ],
        )
        store.apply_edge_batch(batch)
        loaded.apply_edge_batch(batch)
        self._assert_equivalent(store, loaded)

    def test_store_and_attribute_sections_share_a_buffer(self):
        """A combined snapshot — topology section followed by the
        attribute section in one stream — reloads both (the layout the
        server's checkpoint/recover cycle relies on)."""
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        store.bulk_load(
            list(range(10)) * 3, list(range(30)), 2.0, 0
        )
        attrs = AttributeStore()
        attrs.register("feat", 3)
        for v in range(10):
            attrs.put("feat", v, [float(v), 0.5, -1.0])
        buf = io.BytesIO()
        save_store(store, buf)
        save_attributes(attrs, buf)
        buf.seek(0)
        loaded_store = load_store(buf)
        loaded_attrs = load_attributes(buf)
        self._assert_equivalent(store, loaded_store)
        assert loaded_attrs.get("feat", 7).tolist() == [7.0, 0.5, -1.0]


class TestAttributeRoundtrip:
    def test_roundtrip(self):
        attrs = AttributeStore()
        attrs.register("feat", 4)
        attrs.register("label", 1, np.dtype(np.int64))
        rng = np.random.default_rng(0)
        for v in range(100):
            attrs.put("feat", v * 7, rng.normal(size=4).astype(np.float32))
            attrs.put("label", v * 7, [v % 5])
        buf = io.BytesIO()
        save_attributes(attrs, buf)
        buf.seek(0)
        loaded = load_attributes(buf)
        assert sorted(loaded.fields()) == ["feat", "label"]
        assert loaded.schema("feat").dim == 4
        assert loaded.schema("label").dtype == np.dtype(np.int64)
        for v in range(100):
            assert loaded.get("feat", v * 7) == pytest.approx(
                attrs.get("feat", v * 7)
            )
            assert loaded.get("label", v * 7)[0] == v % 5

    def test_empty(self):
        buf = io.BytesIO()
        save_attributes(AttributeStore(), buf)
        buf.seek(0)
        assert list(load_attributes(buf).fields()) == []

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            load_attributes(io.BytesIO(b"xxxxxxxxxxxx"))

    def test_file_roundtrip(self, tmp_path):
        attrs = AttributeStore()
        attrs.register("feat", 2)
        attrs.put("feat", 9, [1.0, 2.0])
        path = str(tmp_path / "attrs.pd2a")
        save_attributes(attrs, path)
        loaded = load_attributes(path)
        assert loaded.get("feat", 9).tolist() == [1.0, 2.0]
