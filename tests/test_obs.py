"""Tests for the unified telemetry layer (``repro.obs``).

Covers the histogram's exact bucketing (property-tested), concurrent
merge, the metrics registry (owned metrics, views, snapshot diff), the
tracer (parentage, sampling, rings), the instrumentation of every legacy
``*Stats`` holder, the exporters (Prometheus lint round-trip, JSON), the
``repro obs`` CLI, and the trainer's per-phase timers.

The acceptance scenario of the issue — a traced distributed batched
sample under fault injection yielding a span tree that links client
attempt → retry → shard RPC → server endpoint with correct parentage and
simulated-clock durations — lives in :class:`TestDistributedTracing`.
"""

from __future__ import annotations

import json
import math
import random
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.core.metrics import InstrumentedStore, LatencyHistogram, StoreMetrics
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.distributed import (
    FaultPolicy,
    LocalCluster,
    NetworkModel,
    RetryPolicy,
)
from repro.errors import ConfigurationError
from repro.gnn.models import GraphSAGE
from repro.gnn.training import PHASES, Trainer
from repro.obs import (
    MetricsRegistry,
    PrometheusFormatError,
    TimeSeriesStore,
    Tracer,
    lint_prometheus,
    to_json,
    to_prometheus_text,
)
from repro.obs.hist import NUM_BUCKETS
from repro.obs.report import render_report
from repro.storage.attributes import AttributeStore


# ---------------------------------------------------------------------------
# LatencyHistogram: exact bucketing (satellite a)
# ---------------------------------------------------------------------------
class TestHistogramBucketing:
    def test_bounds_partition_the_line(self):
        bounds = LatencyHistogram.bucket_bounds()
        assert len(bounds) == NUM_BUCKETS
        assert bounds[0] == (0.0, 1e-6)
        assert bounds[-1][1] == math.inf
        for (_, hi), (lo2, _) in zip(bounds, bounds[1:]):
            assert hi == lo2  # contiguous, no gaps or overlaps

    @settings(max_examples=300, deadline=None)
    @given(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        )
    )
    def test_every_value_lands_in_its_reported_bucket(self, seconds):
        """The property the exact bucketing is pinned by: recording a
        value increments exactly the bucket whose [lo, hi) contains it."""
        hist = LatencyHistogram()
        hist.record(seconds)
        counts = hist.bucket_counts()
        assert sum(counts) == 1
        idx = counts.index(1)
        lo, hi = LatencyHistogram.bucket_bounds()[idx]
        assert lo <= seconds < hi

    def test_documented_edges(self):
        # 2^i µs is the *lower* edge of bucket i+1, not the top of i.
        for i in range(1, 10):
            edge = (1 << i) * 1e-6
            assert LatencyHistogram.bucket_index(edge) == i + 1
            assert LatencyHistogram.bucket_index(edge * 0.999) == i
        # fractional microseconds stay in bucket 0
        assert LatencyHistogram.bucket_index(0.4e-6) == 0
        assert LatencyHistogram.bucket_index(0.0) == 0

    def test_overflow_bucket_is_honest(self):
        hist = LatencyHistogram()
        huge = (1 << NUM_BUCKETS) * 1e-6  # beyond the last finite bound
        hist.record(huge)
        assert hist.bucket_counts()[-1] == 1
        # percentile reports the recorded max, not a fabricated 2^k bound
        assert hist.percentile(1.0) == huge
        lo, hi = LatencyHistogram.bucket_bounds()[-1]
        assert lo <= huge < hi

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyHistogram().record(-1e-9)

    def test_percentiles_monotone(self):
        hist = LatencyHistogram()
        rng = random.Random(7)
        for _ in range(500):
            hist.record(rng.random() * 1e-2)
        qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0]
        vals = [hist.percentile(q) for q in qs]
        assert vals == sorted(vals)


class TestHistogramMerge:
    def test_concurrent_thread_local_merge(self):
        """The per-thread-record / merge-once aggregation pattern: the
        merged histogram equals one built serially from all samples."""
        samples = [
            [random.Random(seed).random() * 1e-3 for _ in range(2000)]
            for seed in range(8)
        ]
        shared = LatencyHistogram()
        lock = threading.Lock()

        def worker(my_samples):
            local = LatencyHistogram()
            for s in my_samples:
                local.record(s)
            with lock:
                shared.merge(local)

        threads = [
            threading.Thread(target=worker, args=(s,)) for s in samples
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        serial = LatencyHistogram()
        for chunk in samples:
            for s in chunk:
                serial.record(s)
        # Buckets, count, and max are integer/idempotent and must match
        # exactly; the float sum accumulates in merge order, so compare
        # it to within float tolerance.
        s_buckets, s_count, s_sum, s_max = shared.state()
        e_buckets, e_count, e_sum, e_max = serial.state()
        assert s_buckets == e_buckets
        assert s_count == e_count
        assert s_max == e_max
        assert s_sum == pytest.approx(e_sum)
        assert shared.count == 8 * 2000

    def test_merge_then_reset(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(1e-6)
        b.record(5e-3)
        a.merge(b)
        assert a.count == 2 and a.max == 5e-3
        a.reset()
        assert a.count == 0 and a.state()[0] == (0,) * NUM_BUCKETS

    def test_from_state_roundtrip(self):
        h = LatencyHistogram()
        for v in (1e-6, 3e-4, 2e-2, 7.0):
            h.record(v)
        clone = LatencyHistogram.from_state(h.state())
        assert clone.state() == h.state()
        assert clone.percentile(0.99) == h.percentile(0.99)


# ---------------------------------------------------------------------------
# Windowed quantiles: the monitor's state-subtraction must agree with a
# histogram fed the same observations (PR 9 satellite)
# ---------------------------------------------------------------------------
class TestWindowedQuantileProperty:
    @settings(max_examples=150, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=1e3,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=0,
                max_size=6,
            ),
            min_size=1,
            max_size=4,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_window_delta_equals_direct_histogram(self, batches, q):
        """``quantile_over_time`` over a window spanning N scrape
        intervals answers exactly what a single histogram fed all the
        window's observations would — and the merge of the per-interval
        window deltas is that same histogram."""
        reg = MetricsRegistry()
        h = reg.histogram("repro_lat_seconds")
        now = [0.0]
        store = TimeSeriesStore(reg, clock=lambda: now[0])
        store.scrape()  # empty baseline
        for batch in batches:
            for v in batch:
                h.record(v)
            now[0] += 1.0
            store.scrape()

        direct = LatencyHistogram()
        for v in (x for batch in batches for x in batch):
            direct.record(v)

        whole = store.window_histogram(
            "repro_lat_seconds", len(batches) + 0.5
        )
        assert whole.state() == direct.state()
        assert store.quantile_over_time(
            q, "repro_lat_seconds", len(batches) + 0.5
        ) == direct.percentile(q)

        # Per-interval deltas merge back into the whole window.
        merged = LatencyHistogram()
        for i in range(len(batches)):
            merged.merge(
                store.window_histogram(
                    "repro_lat_seconds", 1.0, at=float(i + 1)
                )
            )
        assert merged.bucket_counts() == direct.bucket_counts()
        assert merged.count == direct.count
        assert merged.percentile(q) == direct.percentile(q)


# ---------------------------------------------------------------------------
# MetricsRegistry: owned metrics, views, snapshot diff (satellite c)
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", "help text", shard="0")
        g = reg.gauge("repro_test_gauge")
        h = reg.histogram("repro_test_seconds")
        c.inc(3)
        g.set(1.5)
        h.record(2e-6)
        snap = reg.snapshot()
        assert snap.get('repro_test_total{shard="0"}') == 3.0
        assert snap.get("repro_test_gauge") == 1.5
        assert snap.histograms["repro_test_seconds"][1] == 1  # count

    def test_create_or_get_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x") is reg.counter("repro_x")

    def test_name_and_kind_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("bad name!")
        reg.counter("repro_y")
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_y")  # kind conflict on the same family
        with pytest.raises(ConfigurationError):
            reg.counter("repro_neg").inc(-1)

    def test_views_read_live(self):
        class Holder:
            __slots__ = ("hits",)

            def __init__(self):
                self.hits = 0

        reg = MetricsRegistry()
        holder = Holder()
        reg.register_view("repro_v_hits", lambda: float(holder.hits))
        assert reg.snapshot().get("repro_v_hits") == 0.0
        holder.hits = 41
        holder.hits += 1
        assert reg.snapshot().get("repro_v_hits") == 42.0
        with pytest.raises(ConfigurationError):  # duplicate view slot
            reg.register_view("repro_v_hits", lambda: 0.0)

    def test_snapshot_diff_isolates_a_workload(self):
        """before/after diff equals the workload's own counts — the
        registry-level guarantee satellite (c) asks for."""
        cluster = LocalCluster(
            num_servers=2, config=SamtreeConfig(capacity=8)
        )
        rng = random.Random(1)
        for _ in range(10):
            cluster.client.add_edge(rng.randrange(8), rng.randrange(8))
        before = cluster.registry.snapshot()
        # the measured workload: exactly 7 batched sample requests
        for _ in range(7):
            cluster.client.sample_neighbors_many([0, 1, 2, 3], 2, rng)
        after = cluster.registry.snapshot()
        delta = after.diff(before)
        sample_delta = sum(
            v
            for k, v in delta.scalars.items()
            if k.startswith("repro_server_sample_requests")
        )
        update_delta = sum(
            v
            for k, v in delta.scalars.items()
            if k.startswith("repro_server_update_requests")
        )
        assert sample_delta == 7 * 2  # 7 rounds x 2 shards touched
        assert update_delta == 0  # no writes in the window
        assert json.dumps(delta.to_dict())  # JSON-ready

    def test_merge_from_adds_counters(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_m").inc(2)
        b.counter("repro_m").inc(5)
        b.histogram("repro_h").record(1e-6)
        a.merge_from(b)
        snap = a.snapshot()
        assert snap.get("repro_m") == 7.0
        assert snap.histograms["repro_h"][1] == 1

    def test_diff_clamps_counter_resets(self):
        """A counter that went backwards between snapshots (crash,
        ``reset_stats``) yields a zero delta — never negative work —
        and the snapshot reports how many series were clamped."""
        reg = MetricsRegistry()
        c = reg.counter("repro_work_total")
        g = reg.gauge("repro_depth")
        h = reg.histogram("repro_lat_seconds")
        c.inc(10)
        g.set(5.0)
        h.record(1e-3)
        h.record(1e-3)
        before = reg.snapshot()
        reg.reset_owned()  # the reset event
        c.inc(3)
        g.set(2.0)
        h.record(2e-3)
        delta = reg.snapshot().diff(before)
        # Counter 13 -> 3: clamped to 0, not -7.
        assert delta.scalars["repro_work_total"] == 0.0
        # Gauges keep signed deltas (5 -> 2 is a real -3).
        assert delta.scalars["repro_depth"] == -3.0
        # Histogram count 2 -> 1: bucket-wise clamp, reset counted.
        assert delta.histograms["repro_lat_seconds"][1] == 0
        assert delta.resets == 2
        assert delta.to_dict()["resets"] == 2

    def test_diff_without_reset_reports_zero_resets(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_work_total")
        c.inc(4)
        before = reg.snapshot()
        c.inc(6)
        delta = reg.snapshot().diff(before)
        assert delta.scalars["repro_work_total"] == 6.0
        assert delta.resets == 0

    def test_snapshot_prefix_filter(self):
        """The pushed-down keep-list (the monitor's scrape path) must
        not invoke the view callbacks of filtered-out series."""
        reg = MetricsRegistry()
        reg.counter("repro_keep_total").inc(1)
        calls = []
        reg.register_view(
            "repro_drop_total", lambda: calls.append(1) or 0.0
        )
        snap = reg.snapshot(prefixes=("repro_keep_",))
        assert set(snap.scalars) == {"repro_keep_total"}
        assert calls == []  # filtered view never ran


# ---------------------------------------------------------------------------
# Stats holders registered into the cluster registry
# ---------------------------------------------------------------------------
class TestStatsInstrumentation:
    def _cluster(self, **kw):
        kw.setdefault("num_servers", 2)
        kw.setdefault("config", SamtreeConfig(capacity=8))
        return LocalCluster(**kw)

    def test_all_seven_holders_have_views(self):
        cluster = self._cluster(
            network=NetworkModel(),
            replication_factor=2,
            durable=True,
            fault_policy=FaultPolicy(),
            retry=RetryPolicy(),
        )
        rng = random.Random(0)
        cluster.client.bulk_load(
            [rng.randrange(8) for _ in range(30)],
            [rng.randrange(8) for _ in range(30)],
        )
        cluster.client.sample_neighbors_many(list(range(8)), 3, rng)
        names = set(cluster.registry.names())
        for expected in (
            "repro_server_sample_requests",  # ServerStats
            "repro_network_messages",  # NetworkStats
            "repro_retry_attempts",  # RetryStats
            "repro_faults_transient_errors",  # FaultStats
            "repro_ingest_ops",  # IngestStats
            "repro_snapshot_cache_hits",  # SnapshotCacheStats
            "repro_samtree_leaf_ops",  # OpStats
            "repro_wal_records_appended",  # WAL ledger
        ):
            assert expected in names, expected
        snap = cluster.registry.snapshot()
        # the views agree with the holders they watch
        total_ingest = sum(
            s.stats.ingest_requests
            for g in cluster.replica_groups
            for s in g
        )
        seen = sum(
            v
            for k, v in snap.scalars.items()
            if k.startswith("repro_server_ingest_requests")
        )
        assert seen == total_ingest > 0

    def test_views_survive_crash_recover(self):
        """GraphServer.recover() swaps the store object; views must
        resolve through the server and keep reporting afterwards."""
        cluster = self._cluster(durable=True)
        rng = random.Random(0)
        for _ in range(20):
            cluster.client.add_edge(rng.randrange(8), rng.randrange(8))
        key = 'repro_samtree_leaf_ops{replica="0",shard="0"}'
        before = cluster.registry.snapshot().get(key)
        assert before > 0
        cluster.crash(0)
        assert cluster.registry.snapshot().get(key) == 0.0  # down -> 0
        cluster.recover(0)
        # recovery replays the WAL through the bulk path; the new store's
        # counters are live again (value is the new store's, not stale)
        after = cluster.registry.snapshot().get(key)
        assert after >= 0.0
        cluster.replica_groups[0][0].store.add_edge(100, 101, 1.0)
        assert cluster.registry.snapshot().get(key) > after

    def test_reset_stats_clears_views_and_traces(self):
        tracer = Tracer()
        cluster = self._cluster(network=NetworkModel(), tracer=tracer)
        cluster.client.add_edge(1, 2, 1.0)
        assert len(tracer.finished) > 0
        snap = cluster.registry.snapshot()
        assert any(
            v for k, v in snap.scalars.items() if k.startswith("repro_")
        )
        cluster.reset_stats()
        snap = cluster.registry.snapshot()
        counters = {
            k: v
            for k, v in snap.scalars.items()
            if snap.kinds.get(k) == "counter"
        }
        assert all(v == 0.0 for v in counters.values()), counters
        assert len(tracer.finished) == 0

    def test_store_metrics_register_into(self):
        store = InstrumentedStore(DynamicGraphStore(SamtreeConfig(capacity=8)))
        reg = MetricsRegistry()
        store.metrics.register_into(reg)
        store.add_edge(1, 2, 1.0)
        store.sample_neighbors(1, 2, random.Random(0))
        snap = reg.snapshot()
        key = 'repro_store_op_latency_seconds{op="insert"}'
        assert snap.histograms[key][1] == 1
        text = to_prometheus_text(reg)
        assert lint_prometheus(text)["families"] == 1


# ---------------------------------------------------------------------------
# Tracer mechanics
# ---------------------------------------------------------------------------
class TestTracer:
    def test_parentage_and_walk(self):
        tracer = Tracer()
        with tracer.span("root", a=1) as root:
            with tracer.span("child1") as c1:
                with tracer.span("leaf") as leaf:
                    pass
            with tracer.span("child2"):
                pass
        assert root.parent_id is None
        assert c1.parent_id == root.span_id
        assert leaf.parent_id == c1.span_id
        assert [s.name for s in root.walk()] == [
            "root",
            "child1",
            "leaf",
            "child2",
        ]
        assert root.find("leaf") == [leaf]
        assert len(tracer.finished) == 1  # only roots archived

    def test_error_status_and_tag(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        root = tracer.traces()[0]
        assert root.status == "error"
        assert root.tags["error"] == "ValueError"

    def test_head_sampling_drops_whole_trees(self):
        tracer = Tracer(sample_rate=0.5, seed=123)
        kept = 0
        for _ in range(200):
            with tracer.span("root"):
                with tracer.span("inner"):  # must not become a root
                    pass
        kept = len(tracer.finished)
        assert 0 < kept < 200
        assert all(s.parent_id is None for s in tracer.finished)
        assert all(len(s.children) == 1 for s in tracer.finished)
        # determinism: the same seed keeps the same count
        tracer2 = Tracer(sample_rate=0.5, seed=123)
        for _ in range(200):
            with tracer2.span("root"):
                with tracer2.span("inner"):
                    pass
        assert len(tracer2.finished) == kept

    def test_rings_are_bounded(self):
        tracer = Tracer(max_traces=8, slow_threshold_seconds=0.0,
                        max_slow_traces=4)
        for _ in range(50):
            with tracer.span("r"):
                pass
        assert len(tracer.finished) == 8
        assert len(tracer.slow) == 4

    def test_simulated_clock_durations(self):
        net = NetworkModel(latency_seconds=1e-3)
        tracer = Tracer(clock=net.now)
        with tracer.span("op") as span:
            net.send(100)  # advances the simulated clock
        assert span.duration == pytest.approx(net.stats.last_send_seconds)

    def test_trace_counters_in_registry(self):
        reg = MetricsRegistry()
        tracer = Tracer(sample_rate=1.0, registry=reg)
        with tracer.span("r"):
            with tracer.span("c"):
                pass
        snap = reg.snapshot()
        assert snap.get("repro_trace_roots_total") == 1
        assert snap.get("repro_trace_sampled_total") == 1
        assert snap.get("repro_trace_spans_total") == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Tracer(sample_rate=1.5)
        with pytest.raises(ConfigurationError):
            Tracer(max_traces=0)
        with pytest.raises(ConfigurationError):
            Tracer(slow_threshold_seconds=-1)

    def test_chrome_trace_export(self):
        now = [0.0]
        tracer = Tracer(clock=lambda: now[0])
        with tracer.span("serve.batch", shard=3, policy=object()) as root:
            now[0] += 0.25
            with tracer.span("rpc.read_shard"):
                now[0] += 0.5
            now[0] += 0.25
        payload = tracer.to_chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["serve.batch", "rpc.read_shard"]
        for e in events:
            assert e["ph"] == "X"  # complete events: one per finished span
            assert e["cat"] == "repro"
            assert e["pid"] == 0
        root_ev, child_ev = events
        # chrome://tracing wants microseconds
        assert root_ev["ts"] == pytest.approx(0.0)
        assert root_ev["dur"] == pytest.approx(1.0e6)
        assert child_ev["ts"] == pytest.approx(0.25e6)
        assert child_ev["dur"] == pytest.approx(0.5e6)
        # one lane per trace: tid is the shared trace id
        assert root_ev["tid"] == child_ev["tid"] == root.trace_id
        assert root_ev["args"]["span_id"] == root.span_id
        assert root_ev["args"]["parent_id"] is None
        assert child_ev["args"]["parent_id"] == root.span_id
        assert root_ev["args"]["status"] == "ok"
        # JSON-native tags pass through; anything else falls back to repr
        assert root_ev["args"]["shard"] == 3
        assert isinstance(root_ev["args"]["policy"], str)
        json.dumps(payload)  # the whole export must serialise

    def test_chrome_trace_skips_unfinished_spans(self):
        now = [0.0]
        tracer = Tracer(clock=lambda: now[0])
        with tracer.span("root"):
            tracer.span("stuck")  # opened, never exited
            now[0] += 1.0
        events = tracer.to_chrome_trace()["traceEvents"]
        assert [e["name"] for e in events] == ["root"]

    def test_chrome_trace_explicit_span_subset(self):
        tracer = Tracer()
        for name in ("a", "b"):
            with tracer.span(name):
                pass
        subset = [s for s in tracer.traces() if s.name == "b"]
        events = tracer.to_chrome_trace(spans=subset)["traceEvents"]
        assert [e["name"] for e in events] == ["b"]


# ---------------------------------------------------------------------------
# The acceptance scenario: traced distributed sampling under faults
# ---------------------------------------------------------------------------
class TestDistributedTracing:
    def _traced_cluster(self):
        net = NetworkModel(latency_seconds=1e-4)
        tracer = Tracer(clock=net.now)
        cluster = LocalCluster(
            num_servers=3,
            config=SamtreeConfig(capacity=8),
            network=net,
            replication_factor=2,
            durable=True,
            fault_policy=FaultPolicy(transient_error_rate=0.25),
            fault_seed=5,
            retry=RetryPolicy(max_attempts=8, base_backoff_seconds=1e-3),
            tracer=tracer,
        )
        return cluster, tracer, net

    def test_span_tree_links_every_layer(self):
        cluster, tracer, _ = self._traced_cluster()
        rng = random.Random(0)
        srcs = [rng.randrange(30) for _ in range(120)]
        dsts = [rng.randrange(30) for _ in range(120)]
        cluster.client.bulk_load(srcs, dsts, 1.0)
        tracer.reset()
        rows = cluster.client.sample_neighbors_many(
            list(range(30)), 4, rng
        )
        assert len(rows) == 30
        assert len(tracer.finished) == 1
        root = tracer.traces()[0]
        # layer linkage: client -> shard RPC -> attempt -> server -> samtree
        assert root.name == "client.sample_neighbors_many"
        reads = root.find("rpc.read_shard")
        assert len(reads) == 3  # one per shard
        for read in reads:
            assert read.parent_id == root.span_id
            attempts = read.find("rpc.attempt")
            assert attempts  # at least one attempt per shard read
            for att in attempts:
                assert att.parent_id == read.span_id
            ok = [a for a in attempts if a.status == "ok"]
            assert len(ok) == 1  # exactly one attempt succeeded
            server_spans = ok[0].find("server.sample_neighbors_many")
            assert len(server_spans) == 1
            samtree = server_spans[0].find("samtree.sample_many")
            assert len(samtree) == 1
            assert samtree[0].parent_id == server_spans[0].span_id
        # every span's window nests inside its parent's
        for span in root.walk():
            for child in span.children:
                assert child.start >= span.start
                assert child.end <= span.end

    def test_retries_appear_as_error_attempts(self):
        cluster, tracer, _ = self._traced_cluster()
        rng = random.Random(0)
        for i in range(120):
            cluster.client.add_edge(rng.randrange(30), rng.randrange(30))
        failed = [
            s
            for root in tracer.traces()
            for s in root.find("rpc.attempt")
            if s.status == "error"
        ]
        assert failed  # 25% transient rate over 120 writes must retry
        for att in failed:
            assert att.tags["error"] == "TransientRPCError"
        # attempt numbering restarts per replica call and increments
        retried = [a for a in failed if a.tags["attempt"] >= 1]
        assert retried
        assert cluster.retry.stats.retries > 0

    def test_durations_run_on_the_simulated_clock(self):
        cluster, tracer, net = self._traced_cluster()
        rng = random.Random(0)
        cluster.client.bulk_load([1, 2, 3], [4, 5, 6], 1.0)
        t0 = net.now()
        cluster.client.sample_neighbors_many([1, 2, 3], 2, rng)
        elapsed = net.now() - t0
        root = tracer.traces()[-1]
        assert root.name == "client.sample_neighbors_many"
        # the root span covers exactly the simulated time the batch took
        assert root.duration == pytest.approx(elapsed)
        assert root.duration > 0.0


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
class TestExporters:
    def _loaded_cluster(self):
        net = NetworkModel()
        tracer = Tracer(clock=net.now)
        cluster = LocalCluster(
            num_servers=2,
            config=SamtreeConfig(capacity=8),
            network=net,
            tracer=tracer,
        )
        rng = random.Random(0)
        cluster.client.bulk_load(
            [rng.randrange(16) for _ in range(60)],
            [rng.randrange(16) for _ in range(60)],
        )
        cluster.client.sample_neighbors_many(list(range(16)), 3, rng)
        return cluster, tracer

    def test_prometheus_round_trip_lints(self):
        cluster, _ = self._loaded_cluster()
        cluster.registry.histogram(
            "repro_demo_seconds", phase="x"
        ).record(3e-4)
        text = to_prometheus_text(cluster.registry)
        result = lint_prometheus(text)
        assert result["families"] > 10
        assert result["samples"] > 20
        assert "# TYPE repro_demo_seconds histogram" in text
        assert 'repro_demo_seconds_bucket{phase="x",le="+Inf"} 1' in text

    def test_lint_rejects_malformed_expositions(self):
        with pytest.raises(PrometheusFormatError):
            lint_prometheus("bad name{} 1\n")
        with pytest.raises(PrometheusFormatError):
            lint_prometheus("x 1\nx 2\n")  # duplicate series
        with pytest.raises(PrometheusFormatError):
            lint_prometheus("x notanumber\n")
        with pytest.raises(PrometheusFormatError):
            lint_prometheus("# TYPE h histogram\nh_bucket{le=\"1\"} 1\n"
                            "h_sum 1\nh_count 1\n")  # no +Inf bucket
        with pytest.raises(PrometheusFormatError):
            lint_prometheus("x{a=\"1\"b=\"2\"} 1\n")  # malformed labels

    def test_json_payload(self):
        cluster, tracer = self._loaded_cluster()
        doc = to_json(cluster.registry, tracer, top_slow=3)
        blob = json.dumps(doc)
        assert "repro_server_sample_requests" in blob
        assert doc["traces_archived"] == len(tracer.finished)
        assert len(doc["slow_traces"]) <= 3
        if doc["slow_traces"]:
            span = doc["slow_traces"][0]
            assert {"trace_id", "span_id", "children"} <= set(span)

    def test_report_renders_shards_counters_traces(self):
        cluster, tracer = self._loaded_cluster()
        text = render_report(cluster, tracer=tracer, top_k=2)
        assert "per-shard load" in text
        assert "skew: edges max/mean" in text
        assert "cache" in text and "network" in text
        assert "slow traces" in text
        assert "client.sample_neighbors_many" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestObsCLI:
    def test_human_report(self, capsys):
        assert cli_main([
            "obs", "--shards", "2", "--edges", "200", "--rounds", "3",
            "--vertices", "50",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro observability report" in out
        assert "per-shard load" in out

    def test_prometheus_output_lints(self, capsys):
        assert cli_main([
            "obs", "--format", "prometheus", "--shards", "2",
            "--edges", "200", "--rounds", "2", "--vertices", "50",
        ]) == 0
        out = capsys.readouterr().out
        result = lint_prometheus(out)
        assert result["samples"] > 0

    def test_json_output_with_faults(self, capsys):
        assert cli_main([
            "obs", "--format", "json", "--shards", "2", "--replicas", "2",
            "--fault-rate", "0.1", "--edges", "200", "--rounds", "2",
            "--vertices", "50",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["traces_archived"] > 0
        assert any(
            k.startswith("repro_retry_attempts") for k in doc["metrics"]
        )


# ---------------------------------------------------------------------------
# Trainer phase timers
# ---------------------------------------------------------------------------
class TestTrainerTelemetry:
    def _problem(self, n=40, dim=4):
        rng = random.Random(0)
        nprng = np.random.default_rng(0)
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        feats = AttributeStore()
        feats.register("feat", dim)
        for v in range(n):
            feats.put("feat", v, nprng.normal(0, 1, dim).astype(np.float32))
        for _ in range(n * 4):
            store.add_edge(rng.randrange(n), rng.randrange(n), 1.0)
        seeds = [v for v in range(n) if store.degree(v) > 0]
        labels = [v % 2 for v in seeds]
        return store, feats, seeds, labels

    def test_phase_histograms_and_report(self):
        store, feats, seeds, labels = self._problem()
        reg = MetricsRegistry()
        tracer = Tracer()
        model = GraphSAGE(4, 8, 2, num_layers=2,
                          rng=np.random.default_rng(0))
        trainer = Trainer(
            store, feats, model, fanouts=[3, 3],
            registry=reg, tracer=tracer,
        )
        result = trainer.train_epoch(seeds, labels, batch_size=16)
        assert result.num_batches > 0
        summary = trainer.phase_summary()
        assert set(summary) == set(PHASES)
        for phase in PHASES:
            assert summary[phase]["count"] == result.num_batches
        snap = reg.snapshot()
        assert snap.get("repro_train_batches") == result.num_batches
        assert snap.get("repro_train_seeds") == len(seeds)
        key = 'repro_train_phase_seconds{phase="sample"}'
        assert snap.histograms[key][1] == result.num_batches
        report = trainer.phase_report()
        for phase in PHASES:
            assert phase in report
        # exposition of the phase histograms lints too
        assert lint_prometheus(to_prometheus_text(reg))["samples"] > 0

    def test_train_step_span_nests_phases(self):
        store, feats, seeds, labels = self._problem()
        tracer = Tracer()
        model = GraphSAGE(4, 8, 2, num_layers=2,
                          rng=np.random.default_rng(0))
        trainer = Trainer(
            store, feats, model, fanouts=[3, 3], tracer=tracer
        )
        trainer.train_step(seeds[:8], labels[:8])
        root = tracer.traces()[-1]
        assert root.name == "train.step"
        names = [s.name for s in root.children]
        assert names == ["train.sample", "train.gather", "train.compute"]
        hops = root.find("sampler.hop")
        assert len(hops) == 2  # one per fanout
        assert all(h.parent_id == root.children[0].span_id for h in hops)

    def test_without_registry_everything_is_off(self):
        store, feats, seeds, labels = self._problem()
        model = GraphSAGE(4, 8, 2, num_layers=2,
                          rng=np.random.default_rng(0))
        trainer = Trainer(store, feats, model, fanouts=[3, 3])
        trainer.train_step(seeds[:8], labels[:8])
        assert trainer.phase_summary() == {}
        assert "no phase telemetry" in trainer.phase_report()
