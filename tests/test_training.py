"""Tests for the trainer and Adam optimiser (end-to-end learning)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.models import GraphSAGE
from repro.gnn.training import Adam, Trainer
from repro.storage.attributes import AttributeStore


def two_cluster_problem(n=160, dim=8, seed=0):
    """Two feature clusters with intra-cluster edges: trivially separable
    by a GNN that aggregates sampled neighborhoods."""
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=16))
    feats = AttributeStore()
    feats.register("feat", dim)
    labels = {}
    for v in range(n):
        c = v % 2
        labels[v] = c
        mu = 1.5 if c == 0 else -1.5
        feats.put("feat", v, nprng.normal(mu, 1.0, dim).astype(np.float32))
    edges = 0
    while edges < n * 8:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and a % 2 == b % 2:
            store.add_edge(a, b, 1.0)
            edges += 1
    seeds = [v for v in range(n) if store.degree(v) > 0]
    return store, feats, seeds, [labels[v] for v in seeds]


class TestAdam:
    def test_decreases_quadratic(self, nprng):
        model = GraphSAGE(2, 4, 2, num_layers=1, rng=nprng)
        adam = Adam(model, lr=0.05)
        # Drive one parameter towards a target by synthetic gradients.
        target = np.zeros_like(model.layers[0].params["W_self"])
        for _ in range(200):
            model.zero_grads()
            model.layers[0].grads["W_self"] += (
                model.layers[0].params["W_self"] - target
            )
            adam.step()
        assert np.abs(model.layers[0].params["W_self"]).max() < 0.05

    def test_lr_validation(self, nprng):
        model = GraphSAGE(2, 4, 2, num_layers=1, rng=nprng)
        with pytest.raises(ConfigurationError):
            Adam(model, lr=0.0)


class TestTrainer:
    def test_fanouts_must_match_depth(self, nprng):
        store, feats, _, _ = two_cluster_problem(40)
        model = GraphSAGE(8, 8, 2, num_layers=2, rng=nprng)
        with pytest.raises(ConfigurationError):
            Trainer(store, feats, model, fanouts=[5])

    def test_label_shape_check(self, nprng):
        store, feats, seeds, labels = two_cluster_problem(40)
        model = GraphSAGE(8, 8, 2, num_layers=2, rng=nprng)
        trainer = Trainer(store, feats, model, fanouts=[3, 3])
        with pytest.raises(ShapeError):
            trainer.train_step(seeds[:4], labels[:3])

    def test_learns_two_clusters(self, nprng):
        store, feats, seeds, labels = two_cluster_problem()
        model = GraphSAGE(8, 16, 2, num_layers=2, rng=nprng)
        trainer = Trainer(
            store, feats, model, fanouts=[5, 5], lr=0.01,
            rng=random.Random(1),
        )
        before = trainer.evaluate(seeds, labels)
        result = None
        for epoch in range(6):
            result = trainer.train_epoch(seeds, labels, batch_size=32, epoch=epoch)
        after = trainer.evaluate(seeds, labels)
        assert after > max(0.9, before)
        assert result is not None and result.num_batches > 0
        assert result.loss < 0.5

    def test_training_tracks_dynamic_graph(self, nprng):
        """New edges become visible to the very next mini-batch — the
        dynamic-training property the system exists for."""
        store, feats, seeds, labels = two_cluster_problem(80)
        model = GraphSAGE(8, 16, 2, num_layers=2, rng=nprng)
        trainer = Trainer(store, feats, model, fanouts=[4, 4], rng=random.Random(2))
        trainer.train_epoch(seeds, labels, batch_size=16)
        # Insert a brand-new vertex wired into cluster 0 and classify it.
        new_v = 10_000
        feats.put("feat", new_v, np.full(8, 1.5, dtype=np.float32))
        for dst in [v for v in seeds if v % 2 == 0][:6]:
            store.add_edge(new_v, dst, 1.0)
        logits = trainer.forward_batch([new_v])
        assert logits.shape == (1, 2)

    def test_evaluate_empty(self, nprng):
        store, feats, _, _ = two_cluster_problem(40)
        model = GraphSAGE(8, 8, 2, num_layers=2, rng=nprng)
        trainer = Trainer(store, feats, model, fanouts=[2, 2])
        assert trainer.evaluate([], []) == 0.0
