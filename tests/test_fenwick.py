"""Unit tests for the FSTable (paper §V-A, Algorithms 3-5)."""

from __future__ import annotations

import random

import pytest

from repro.core.fenwick import FSTable, lsb
from repro.errors import (
    EmptyStructureError,
    IndexOutOfRangeError,
    InvalidWeightError,
)


class TestLSB:
    def test_powers_of_two(self):
        for k in range(20):
            assert lsb(1 << k) == 1 << k

    def test_mixed_values(self):
        # Paper's example: LSB(6) = LSB(110b) = 2.
        assert lsb(6) == 2
        assert lsb(12) == 4
        assert lsb(7) == 1
        assert lsb(40) == 8

    def test_rejects_non_positive(self):
        with pytest.raises(IndexOutOfRangeError):
            lsb(0)
        with pytest.raises(IndexOutOfRangeError):
            lsb(-4)


class TestConstruction:
    def test_empty(self):
        table = FSTable()
        assert len(table) == 0
        assert not table
        assert table.total() == 0.0
        assert table.to_weights() == []

    def test_paper_example_3(self):
        """Figure 5: A = {0.3, 0.4, 0.1} → F = [0.3, 0.7, 0.1]."""
        table = FSTable([0.3, 0.4, 0.1])
        assert table.entry(0) == pytest.approx(0.3)
        assert table.entry(1) == pytest.approx(0.7)
        assert table.entry(2) == pytest.approx(0.1)

    def test_bulk_equals_incremental(self):
        weights = [0.5, 1.5, 2.0, 0.25, 3.0, 0.125, 1.0, 4.0, 0.75]
        bulk = FSTable(weights)
        inc = FSTable()
        for w in weights:
            inc.append(w)
        assert len(bulk) == len(inc)
        for i in range(len(weights)):
            assert bulk.entry(i) == pytest.approx(inc.entry(i))

    def test_to_weights_roundtrip(self):
        weights = [float(i % 7) / 3 for i in range(100)]
        assert FSTable(weights).to_weights() == pytest.approx(weights)

    def test_rejects_bad_weights(self):
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidWeightError):
                FSTable([bad])
            table = FSTable([1.0])
            with pytest.raises(InvalidWeightError):
                table.append(bad)


class TestQueries:
    def test_prefix_sums_match_reference(self):
        r = random.Random(1)
        weights = [r.random() for _ in range(257)]
        table = FSTable(weights)
        running = 0.0
        for i, w in enumerate(weights):
            running += w
            assert table.prefix_sum(i) == pytest.approx(running)

    def test_total_matches_sum(self):
        for n in (1, 2, 3, 7, 8, 9, 63, 64, 65):
            weights = [0.5 + (i % 5) for i in range(n)]
            assert FSTable(weights).total() == pytest.approx(sum(weights))

    def test_weight_recovery(self):
        weights = [float(i + 1) for i in range(40)]
        table = FSTable(weights)
        for i, w in enumerate(weights):
            assert table.weight(i) == pytest.approx(w)

    def test_index_bounds(self):
        table = FSTable([1.0, 2.0])
        for bad in (-1, 2, 100):
            with pytest.raises(IndexOutOfRangeError):
                table.weight(bad)
            with pytest.raises(IndexOutOfRangeError):
                table.prefix_sum(bad)

    def test_theorem_4_subtree_sums(self):
        """F[2^k - 1] equals the strict prefix sum (paper Theorem 4)."""
        weights = [0.1 * (i + 1) for i in range(64)]
        table = FSTable(weights)
        for k in range(1, 7):
            i = (1 << k) - 1
            assert table.entry(i) == pytest.approx(sum(weights[: i + 1]))


class TestUpdates:
    def test_in_place_update_returns_old(self):
        table = FSTable([1.0, 2.0, 3.0])
        assert table.update(1, 5.0) == pytest.approx(2.0)
        assert table.weight(1) == pytest.approx(5.0)
        assert table.total() == pytest.approx(9.0)

    def test_add_delta(self):
        table = FSTable([1.0, 2.0, 3.0, 4.0])
        table.add(2, 1.5)
        assert table.weight(2) == pytest.approx(4.5)
        assert table.to_weights() == pytest.approx([1.0, 2.0, 4.5, 4.0])

    def test_add_rejects_nan(self):
        table = FSTable([1.0])
        with pytest.raises(InvalidWeightError):
            table.add(0, float("nan"))

    def test_append_returns_index(self):
        table = FSTable()
        for i in range(10):
            assert table.append(1.0) == i

    def test_delete_swaps_with_last(self):
        table = FSTable([1.0, 2.0, 3.0, 4.0])
        removed = table.delete(1)
        assert removed == pytest.approx(2.0)
        # Position 1 now holds the old last weight.
        assert table.to_weights() == pytest.approx([1.0, 4.0, 3.0])

    def test_delete_last_element(self):
        table = FSTable([1.0, 2.0, 3.0])
        assert table.delete(2) == pytest.approx(3.0)
        assert table.to_weights() == pytest.approx([1.0, 2.0])

    def test_delete_until_empty(self):
        table = FSTable([float(i + 1) for i in range(17)])
        expected_total = sum(float(i + 1) for i in range(17))
        while table:
            expected_total -= table.delete(0)
            assert table.total() == pytest.approx(expected_total)
        assert len(table) == 0

    def test_interleaved_ops_match_reference(self):
        r = random.Random(2)
        table = FSTable()
        ref: list = []
        for _ in range(3000):
            op = r.random()
            if op < 0.5 or not ref:
                w = r.random()
                table.append(w)
                ref.append(w)
            elif op < 0.8:
                i = r.randrange(len(ref))
                w = r.random()
                table.update(i, w)
                ref[i] = w
            else:
                i = r.randrange(len(ref))
                table.delete(i)
                ref[i] = ref[-1]
                ref.pop()
        assert table.to_weights() == pytest.approx(ref)


class TestSampling:
    def test_sample_with_matches_its_rule(self):
        """FTS picks the smallest i with prefix_sum(i) > r."""
        weights = [0.5, 0.1, 0.9, 0.3, 0.7, 0.2]
        table = FSTable(weights)
        cumulative = []
        running = 0.0
        for w in weights:
            running += w
            cumulative.append(running)
        for r_scaled in range(0, 270, 7):
            r = r_scaled / 100.0
            if r >= running:
                continue
            expected = next(i for i, c in enumerate(cumulative) if c > r)
            assert table.sample_with(r) == expected

    def test_sample_with_boundaries(self):
        table = FSTable([1.0, 1.0, 1.0, 1.0])
        assert table.sample_with(0.0) == 0
        assert table.sample_with(0.999) == 0
        assert table.sample_with(1.0) == 1
        assert table.sample_with(3.999) == 3

    def test_sample_distribution(self):
        weights = [1.0, 3.0, 6.0]
        table = FSTable(weights)
        r = random.Random(3)
        counts = [0, 0, 0]
        n = 30000
        for _ in range(n):
            counts[table.sample(r)] += 1
        for i, w in enumerate(weights):
            assert counts[i] / n == pytest.approx(w / 10.0, abs=0.02)

    def test_sample_zero_weights_uniform(self):
        table = FSTable([0.0, 0.0, 0.0])
        r = random.Random(4)
        seen = {table.sample(r) for _ in range(100)}
        assert seen == {0, 1, 2}

    def test_sample_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            FSTable().sample()
        with pytest.raises(EmptyStructureError):
            FSTable().sample_with(0.0)

    def test_sample_negative_mass_rejected(self):
        with pytest.raises(InvalidWeightError):
            FSTable([1.0]).sample_with(-0.1)

    def test_sample_many(self):
        table = FSTable([1.0, 1.0])
        out = table.sample_many(50, random.Random(5))
        assert len(out) == 50
        assert set(out) <= {0, 1}
        with pytest.raises(IndexOutOfRangeError):
            table.sample_many(-1)

    def test_non_power_of_two_sizes(self):
        """The padded range-narrow must handle every size, not just 2^m."""
        r = random.Random(6)
        for n in (1, 2, 3, 5, 6, 7, 9, 11, 13, 100, 255, 257):
            weights = [r.random() + 0.01 for _ in range(n)]
            table = FSTable(weights)
            cumulative = []
            running = 0.0
            for w in weights:
                running += w
                cumulative.append(running)
            for _ in range(50):
                mass = r.random() * running
                expected = next(i for i, c in enumerate(cumulative) if c > mass)
                assert table.sample_with(mass) == expected


class TestAccounting:
    def test_nbytes(self):
        table = FSTable([1.0] * 10)
        assert table.nbytes() == 40
        assert table.nbytes(weight_bytes=8) == 80

    def test_iter_yields_raw_weights(self):
        weights = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert list(FSTable(weights)) == pytest.approx(weights)

    def test_clear(self):
        table = FSTable([1.0, 2.0])
        table.clear()
        assert len(table) == 0
        assert table.total() == 0.0
