"""Seeded chaos soak for the fault-tolerant distributed tier.

The acceptance bar for the robustness work: drive a churn + sampling
workload against a :class:`LocalCluster` while a seeded
:class:`FaultInjector` throws transient RPC errors, latency spikes, and
hard crashes at it — and while an explicit schedule crashes **every**
shard at least once.  After the dust settles the recovered cluster must
be *indistinguishable* from a fault-free reference store:

* full adjacency (every source's neighbor/weight map) is equal;
* weighted neighbor sampling is chi-square-equivalent;
* the run finished with bounded retries, and the fault/retry counters
  tell a coherent story (faults were actually injected, retries
  actually recovered).

Everything is seeded; these tests are deterministic.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.ingest import OP_DELETE, OP_INSERT, OP_UPDATE, EdgeBatch
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.distributed import (
    FaultPolicy,
    LocalCluster,
    NetworkModel,
    RetryPolicy,
)
from repro.errors import RetryExhaustedError, ShardUnavailableError

try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    from math import erf, sqrt

    return float(0.5 * (1.0 - erf(z / sqrt(2.0))))


# ---------------------------------------------------------------------------
# workload helpers
# ---------------------------------------------------------------------------

_NSRC = 60
_NDST = 120


def _churn_batch(rng: random.Random, n: int) -> EdgeBatch:
    src = [rng.randrange(_NSRC) for _ in range(n)]
    dst = [rng.randrange(_NDST) for _ in range(n)]
    weight = [round(rng.random() * 4 + 0.01, 4) for _ in range(n)]
    etype = [rng.randrange(2) for _ in range(n)]
    op = [
        rng.choices([OP_INSERT, OP_UPDATE, OP_DELETE], weights=[6, 2, 2])[0]
        for _ in range(n)
    ]
    return EdgeBatch(src, dst, weight, etype, op)


_OUTAGE_ERRORS = (ShardUnavailableError, RetryExhaustedError)


def _apply_with_recovery(cluster: LocalCluster, batch: EdgeBatch,
                         max_tries: int = 8) -> int:
    """Apply one batch, recovering crashed shards and re-submitting.

    Whole-batch re-submission is safe because the columnar fold is
    last-wins: re-applying an already-applied batch is a no-op
    (the same property that makes WAL-tail replay idempotent).
    Returns the number of tries it took; the cap makes runaway fault
    storms fail the test instead of hanging it.
    """
    for attempt in range(1, max_tries + 1):
        try:
            cluster.client.apply_edge_batch(batch)
            return attempt
        except _OUTAGE_ERRORS:
            cluster.recover_all(sync=True)
    raise AssertionError(f"batch did not apply within {max_tries} tries")


def _sample_with_recovery(cluster: LocalCluster, srcs, k, rng,
                          max_tries: int = 8):
    for _ in range(max_tries):
        try:
            return cluster.client.sample_neighbors_many(srcs, k, rng)
        except _OUTAGE_ERRORS:
            cluster.recover_all(sync=True)
    raise AssertionError(f"sampling did not finish within {max_tries} tries")


def _reference_adjacency(store: DynamicGraphStore) -> dict:
    out = {}
    for etype in store.etypes():
        for src in store.sources(etype):
            out[(etype, src)] = dict(store.neighbors(src, etype))
    return out


def _assert_cluster_matches_reference(cluster: LocalCluster,
                                      reference: DynamicGraphStore) -> None:
    assert cluster.client.num_edges == reference.num_edges
    for (etype, src), expected in _reference_adjacency(reference).items():
        got = dict(cluster.client.neighbors(src, etype))
        assert got.keys() == expected.keys(), (etype, src)
        assert got == pytest.approx(expected), (etype, src)


def _assert_sampling_chi2_equivalent(cluster: LocalCluster,
                                     reference: DynamicGraphStore) -> None:
    """Weighted sampling through the recovered cluster matches the
    reference store's weight distribution (chi-square, p > 1e-3)."""
    # Pick the reference source with the largest neighborhood so the
    # chi-square test has cells to work with.
    src = max(
        reference.sources(0),
        key=lambda s: reference.degree(s, 0),
    )
    neighbors = dict(reference.neighbors(src, 0))
    assert len(neighbors) >= 5, "workload too sparse for a chi-square test"
    total = sum(neighbors.values())
    draws = 6000
    samples = cluster.client.sample_neighbors(
        src, draws, random.Random(424242), etype=0
    )
    assert len(samples) == draws
    counts = {nbr: 0 for nbr in neighbors}
    for nbr in samples:
        counts[nbr] += 1  # KeyError ⇒ sampled a non-neighbor: hard fail
    observed = [counts[n] for n in sorted(neighbors)]
    expected = [draws * neighbors[n] / total for n in sorted(neighbors)]
    p = _chi2_pvalue(observed, expected)
    assert p > 1e-3, f"sampling distribution diverged (p={p:.2e})"


# ---------------------------------------------------------------------------
# the soak
# ---------------------------------------------------------------------------


class TestChaosSoak:
    def test_crash_every_shard_and_recover_equivalence(self, tmp_path):
        """Every shard hard-crashes (and recovers) at least once during a
        seeded churn+sampling workload with fault injection on; the
        recovered cluster equals a fault-free reference, sampling is
        chi-square-equivalent, and the counters are coherent."""
        rng = random.Random(20240806)
        num_servers = 3
        config = SamtreeConfig(capacity=8)
        retry = RetryPolicy(
            max_attempts=6, base_backoff_seconds=1e-4, seed=11
        )
        network = NetworkModel()
        cluster = LocalCluster(
            num_servers=num_servers,
            config=config,
            network=network,
            durable=True,
            wal_dir=str(tmp_path / "wal"),
            fault_policy=FaultPolicy(
                transient_error_rate=0.04,
                latency_spike_rate=0.02,
                crash_rate=0.004,
            ),
            fault_seed=97,
            retry=retry,
        )
        reference = DynamicGraphStore(config)

        steps = 30
        for step in range(steps):
            batch = _churn_batch(rng, 80)
            reference.apply_edge_batch(batch)
            _apply_with_recovery(cluster, batch)

            # Explicit crash schedule: shard (step mod N) goes down hard,
            # so every shard crashes at least `steps / N` times.
            if step % 3 == 2:
                cluster.crash_shard(step // 3 % num_servers)
            # Periodic sampling keeps the read path under fire too.
            if step % 5 == 4:
                frontier = [rng.randrange(_NSRC) for _ in range(16)]
                rows = _sample_with_recovery(
                    cluster, frontier, 4, random.Random(step)
                )
                assert len(rows) == len(frontier)
            # Mid-run checkpoint: later recoveries replay only the tail.
            if step == steps // 2:
                cluster.recover_all(sync=True)
                assert cluster.checkpoint_all() > 0

        # Settle: recover everything, stop injecting, then compare.
        cluster.recover_all(sync=True)
        assert cluster.all_alive()
        injector = cluster.fault_injector
        injector.pause()

        _assert_cluster_matches_reference(cluster, reference)
        _assert_sampling_chi2_equivalent(cluster, reference)
        for shard in range(num_servers):
            cluster.servers[shard].store.check_invariants()

        # Counter coherence.  The explicit schedule alone produced 10
        # hard crashes (steps // 3, round-robin over the shards), each
        # followed by a recovery; requests kept flowing throughout; and
        # at least one request was refused by a down shard before its
        # recovery (that refusal is what *triggers* the recovery loop).
        stats = injector.stats
        assert stats.requests > steps
        recoveries = sum(
            s.stats.recoveries for g in cluster.replica_groups for s in g
        )
        assert recoveries >= 10
        assert stats.refused_while_down > 0
        replayed = sum(
            s.stats.wal_records_replayed
            for g in cluster.replica_groups
            for s in g
        )
        assert replayed > 0  # recoveries actually exercised the WAL

    def test_transient_storm_finishes_with_bounded_retries(self):
        """With transient faults + latency spikes (no crashes) the whole
        workload completes with zero intervention, retries stay bounded,
        and the final graph equals the fault-free reference."""
        rng = random.Random(7)
        config = SamtreeConfig(capacity=8)
        retry = RetryPolicy(
            max_attempts=8, base_backoff_seconds=1e-4, seed=3
        )
        network = NetworkModel()
        cluster = LocalCluster(
            num_servers=3,
            config=config,
            network=network,
            fault_policy=FaultPolicy(
                transient_error_rate=0.15, latency_spike_rate=0.05
            ),
            fault_seed=5,
            retry=retry,
        )
        reference = DynamicGraphStore(config)

        for step in range(20):
            batch = _churn_batch(rng, 60)
            reference.apply_edge_batch(batch)
            cluster.client.apply_edge_batch(batch)  # no recovery loop!
            if step % 4 == 3:
                frontier = [rng.randrange(_NSRC) for _ in range(12)]
                cluster.client.sample_neighbors_many(
                    frontier, 3, random.Random(step)
                )

        injector = cluster.fault_injector
        injector.pause()
        # Every retry-wrapped client attempt is exactly one server-side
        # request arrival: the two independent counters must agree.
        assert retry.stats.attempts == injector.stats.requests

        _assert_cluster_matches_reference(cluster, reference)

        # Faults were actually thrown, retries actually recovered...
        assert injector.stats.transient_errors > 0
        assert injector.stats.latency_spikes > 0
        assert retry.stats.retries > 0
        assert retry.stats.recoveries > 0
        assert retry.stats.exhausted == 0
        # ...and stayed bounded: at most `max_attempts` tries per call.
        calls = retry.stats.attempts - retry.stats.retries
        assert retry.stats.attempts <= retry.max_attempts * calls
        # Backoff and spikes advanced the simulated clock, not wall time.
        assert network.stats.slept_seconds > 0
        assert network.stats.simulated_seconds > network.stats.slept_seconds

    def test_replicated_soak_survives_primary_crashes_without_recovery(
        self,
    ):
        """With R=2, crashing every primary mid-stream never surfaces an
        error — reads fail over and writes land on the backups — and a
        later sync-recovery converges both replicas to the reference."""
        rng = random.Random(99)
        config = SamtreeConfig(capacity=8)
        cluster = LocalCluster(
            num_servers=2,
            config=config,
            replication_factor=2,
            durable=True,
            retry=RetryPolicy(max_attempts=4, base_backoff_seconds=1e-4),
        )
        reference = DynamicGraphStore(config)

        for step in range(12):
            batch = _churn_batch(rng, 50)
            reference.apply_edge_batch(batch)
            cluster.client.apply_edge_batch(batch)
            if step == 4:  # both primaries go down; backups carry on
                cluster.crash(0, replica=0)
                cluster.crash(1, replica=0)
            if step == 8:  # primaries resync from their live backups
                cluster.recover_all(sync=True)
                assert cluster.all_alive()

        _assert_cluster_matches_reference(cluster, reference)
        # Both replicas of each shard independently hold the full state.
        for group in cluster.replica_groups:
            primary, backup = group
            assert primary.store.num_edges == backup.store.num_edges
            primary.store.check_invariants()
            backup.store.check_invariants()

    def test_hot_replication_and_rebalance_soak_under_faults(self, tmp_path):
        """Mid-soak control-plane actions under fault injection: the
        hot-set tracker drives ``replicate_hot`` and an online
        ``plan_rebalance``/``execute_plan`` migration while transient
        faults, latency spikes, and an explicit crash schedule run —
        afterwards the cluster still equals the fault-free reference
        and weighted sampling is chi-square-equivalent."""
        from repro.datasets.stream import RequestStream
        from repro.distributed.rebalance import execute_plan, plan_rebalance

        rng = random.Random(20240808)
        num_servers = 3
        config = SamtreeConfig(capacity=8)
        retry = RetryPolicy(
            max_attempts=8, base_backoff_seconds=1e-4, seed=13
        )
        cluster = LocalCluster(
            num_servers=num_servers,
            config=config,
            durable=True,
            wal_dir=str(tmp_path / "wal"),
            fault_policy=FaultPolicy(
                transient_error_rate=0.03, latency_spike_rate=0.02
            ),
            fault_seed=41,
            retry=retry,
            hot_set_capacity=64,
        )
        reference = DynamicGraphStore(config)
        # Power-law read traffic, so the tracker has a real hot head to
        # replicate and the traffic-aware planner has skew to fix.
        requests = RequestStream(_NSRC, exponent=1.2, seed=5)
        sample_rng = np.random.default_rng(8)

        steps = 24
        replicated = migrated = False
        for step in range(steps):
            batch = _churn_batch(rng, 70)
            reference.apply_edge_batch(batch)
            _apply_with_recovery(cluster, batch)
            frontier = requests.batch(24)
            rows = _sample_with_recovery(cluster, frontier, 4, sample_rng)
            assert len(rows) == len(frontier)
            # Explicit crash schedule on top of the injected faults.
            if step % 6 == 5:
                cluster.crash_shard(step // 6 % num_servers)
                cluster.recover_all(sync=True)
            if step == steps // 3:
                installed = cluster.replicate_hot(
                    top_n=4, copies=1, min_count=1
                )
                replicated = bool(installed)
            if step == 2 * steps // 3:
                moves = plan_rebalance(cluster, tolerance=0.05, max_moves=8)
                if moves:
                    execute_plan(cluster, moves, verify=True)
                    migrated = True

        assert replicated, "tracker never produced a hot set to replicate"
        assert migrated, "planner found no moves; soak exercised nothing"

        cluster.recover_all(sync=True)
        assert cluster.all_alive()
        cluster.fault_injector.pause()

        _assert_cluster_matches_reference(cluster, reference)
        _assert_sampling_chi2_equivalent(cluster, reference)
        for group in cluster.replica_groups:
            for server in group:
                if server.store is not None:
                    server.store.check_invariants()
        # The chaos actually happened: faults were injected and the
        # control-plane work rode through retries.
        stats = cluster.fault_injector.stats
        assert stats.transient_errors > 0
        assert retry.stats.recoveries > 0

    def test_chaos_schedule_records_deterministically(self):
        """The flight recorder captures the chaos schedule (crashes,
        recoveries, policy swaps) with the scenario seed, and two
        independent runs of the same outage spec produce byte-identical
        event streams — the property incident replay rests on."""
        import json

        from repro.obs.replay import (
            build_rig_from_spec,
            make_spec,
            scenario_from_spec,
        )
        from repro.serving.scenarios import ScenarioRunner

        spec = make_spec(
            "regional_outage",
            seed=0,
            rig_kwargs={"num_shards": 3, "num_sources": 200},
        )

        def run():
            rig = build_rig_from_spec(spec)
            runner = ScenarioRunner(
                rig, scenario_from_spec(spec, rig.num_sources)
            )
            runner.run()
            return rig.recorder.snapshot()

        first, second = run(), run()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        chaos = first["categories"]["chaos"]["events"]
        assert [e["kind"] for e in chaos] == ["crash", "recover"]
        assert all(e["seed"] == spec["scenario_seed"] for e in chaos)
        assert chaos[0]["shard"] == 0
        # the crash itself also landed in the fault ring, cause->effect
        fault_kinds = [e["kind"]
                       for e in first["categories"]["fault"]["events"]]
        assert "crash" in fault_kinds

    def test_soak_reports_stats(self, capsys, tmp_path):
        """The soak surfaces its fault/retry counters (acceptance asks
        for them to be *reported*, not silently swallowed)."""
        rng = random.Random(1)
        retry = RetryPolicy(max_attempts=6, base_backoff_seconds=1e-4)
        cluster = LocalCluster(
            num_servers=2,
            config=SamtreeConfig(capacity=8),
            durable=True,
            wal_dir=str(tmp_path / "wal"),
            fault_policy=FaultPolicy(
                transient_error_rate=0.1, latency_spike_rate=0.05
            ),
            fault_seed=2,
            retry=retry,
        )
        for _ in range(6):
            _apply_with_recovery(cluster, _churn_batch(rng, 40))
        report = {
            "faults": cluster.fault_injector.stats.to_dict(),
            "retries": {
                "attempts": retry.stats.attempts,
                "retries": retry.stats.retries,
                "recoveries": retry.stats.recoveries,
                "exhausted": retry.stats.exhausted,
            },
        }
        print(f"chaos soak stats: {report}")
        out = capsys.readouterr().out
        assert "chaos soak stats" in out
        assert report["faults"]["requests"] > 0
