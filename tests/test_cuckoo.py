"""Tests for the concurrent cuckoo hashmap directory (paper §IV-B)."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.storage.cuckoo import CuckooHashMap


class TestBasics:
    def test_put_get(self):
        m = CuckooHashMap()
        m.put("a", 1)
        assert m.get("a") == 1
        assert m.get("b") is None
        assert m.get("b", 7) == 7
        assert len(m) == 1
        assert "a" in m and "b" not in m

    def test_overwrite(self):
        m = CuckooHashMap()
        m.put(1, "x")
        m.put(1, "y")
        assert m.get(1) == "y"
        assert len(m) == 1

    def test_delete(self):
        m = CuckooHashMap()
        m.put(1, "x")
        assert m.delete(1) is True
        assert m.delete(1) is False
        assert len(m) == 0
        assert m.get(1) is None

    def test_none_values_are_storable(self):
        m = CuckooHashMap()
        m.put("k", None)
        assert "k" in m
        assert m.get("k", "default") is None

    def test_tuple_keys(self):
        m = CuckooHashMap()
        m.put((0, 5), "tree")
        assert m.get((0, 5)) == "tree"
        assert m.get((1, 5)) is None

    def test_get_or_create(self):
        m = CuckooHashMap()
        created = []
        v1 = m.get_or_create("k", lambda: created.append(1) or "v")
        v2 = m.get_or_create("k", lambda: created.append(1) or "w")
        assert v1 == v2 == "v"
        assert created == [1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CuckooHashMap(initial_buckets=0)


class TestGrowth:
    def test_grows_past_initial_capacity(self):
        m = CuckooHashMap(initial_buckets=1)
        for i in range(1000):
            m.put(i, i * 2)
        assert len(m) == 1000
        for i in range(1000):
            assert m.get(i) == i * 2

    def test_load_factor_reported(self):
        m = CuckooHashMap(initial_buckets=4)
        for i in range(10):
            m.put(i, i)
        assert 0.0 < m.load_factor <= 1.0

    def test_iteration(self):
        m = CuckooHashMap()
        for i in range(50):
            m.put(i, -i)
        assert sorted(m.keys()) == list(range(50))
        assert sorted(m) == list(range(50))
        assert dict(m.items()) == {i: -i for i in range(50)}
        assert sorted(m.values()) == sorted(-i for i in range(50))

    def test_nbytes_scales_with_buckets(self):
        small = CuckooHashMap(initial_buckets=4)
        big = CuckooHashMap(initial_buckets=4)
        for i in range(500):
            big.put(i, i)
        assert big.nbytes() > small.nbytes()


class TestConcurrency:
    def test_threaded_writers_disjoint_keys(self):
        m = CuckooHashMap()
        errors = []

        def writer(base):
            try:
                for i in range(300):
                    m.put((base, i), base * 1000 + i)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(m) == 8 * 300
        for t in range(8):
            for i in range(300):
                assert m.get((t, i)) == t * 1000 + i

    def test_threaded_get_or_create_single_winner(self):
        m = CuckooHashMap()
        created = []

        def worker():
            m.get_or_create("k", lambda: created.append(1) or object())

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(created) == 1


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=100),
            st.integers(),
        ),
        max_size=300,
    )
)
@settings(max_examples=100, deadline=None)
def test_matches_dict_semantics(ops):
    m = CuckooHashMap(initial_buckets=1)
    ref = {}
    for kind, k, v in ops:
        if kind == "put":
            m.put(k, v)
            ref[k] = v
        else:
            assert m.delete(k) == (k in ref)
            ref.pop(k, None)
    assert len(m) == len(ref)
    assert dict(m.items()) == ref
