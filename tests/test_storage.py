"""Tests for the KV substrate and the attribute (feature) store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.memory import DEFAULT_MEMORY_MODEL, MemoryModel, humanize_bytes
from repro.errors import ConfigurationError, ShapeError, VertexNotFoundError
from repro.storage.attributes import AttributeSchema, AttributeStore
from repro.storage.kvstore import BlockKVStore


class TestBlockKVStore:
    def make(self):
        return BlockKVStore(value_nbytes=lambda v: len(v))

    def test_put_get_delete(self):
        kv = self.make()
        kv.put(("b", 0, 1), b"abc")
        assert kv.get(("b", 0, 1)) == b"abc"
        assert ("b", 0, 1) in kv
        assert kv.delete(("b", 0, 1)) is True
        assert kv.delete(("b", 0, 1)) is False
        assert kv.get(("b", 0, 1)) is None

    def test_len_and_iteration(self):
        kv = self.make()
        for i in range(5):
            kv.put(("b", i), b"x")
        assert len(kv) == 5
        assert sorted(kv) == [("b", i) for i in range(5)]
        assert dict(kv.items())[("b", 2)] == b"x"

    def test_keys_with_prefix(self):
        kv = self.make()
        kv.put(("head", 0, 7), b"")
        kv.put(("block", 0, 7, 0), b"")
        kv.put(("block", 0, 7, 1), b"")
        kv.put(("block", 0, 8, 0), b"")
        assert sorted(kv.keys_with_prefix(("block", 0, 7))) == [
            ("block", 0, 7, 0),
            ("block", 0, 7, 1),
        ]

    def test_nbytes_includes_key_and_index_overhead(self):
        model = DEFAULT_MEMORY_MODEL
        kv = self.make()
        kv.put(("b", 1), b"xyzw")
        assert kv.nbytes() == model.kv_key_bytes + model.kv_index_entry_bytes + 4


class TestAttributeStore:
    def test_schema_registration(self):
        store = AttributeStore()
        store.register("feat", 4)
        store.register("feat", 4)  # idempotent
        with pytest.raises(ConfigurationError):
            store.register("feat", 8)
        with pytest.raises(ConfigurationError):
            store.schema("unknown")
        with pytest.raises(ConfigurationError):
            AttributeSchema("bad", 0)
        assert list(store.fields()) == ["feat"]

    def test_put_get(self):
        store = AttributeStore()
        store.register("feat", 3)
        store.put("feat", 7, [1.0, 2.0, 3.0])
        assert store.get("feat", 7).tolist() == [1.0, 2.0, 3.0]
        assert store.has("feat", 7)
        assert not store.has("feat", 8)
        with pytest.raises(VertexNotFoundError):
            store.get("feat", 8)
        with pytest.raises(ShapeError):
            store.put("feat", 9, [1.0, 2.0])

    def test_get_or_default(self):
        store = AttributeStore()
        store.register("feat", 2)
        assert store.get_or_default("feat", 1).tolist() == [0.0, 0.0]

    def test_put_many_and_gather(self):
        store = AttributeStore()
        store.register("feat", 2)
        store.put_many("feat", [1, 2], np.array([[1, 2], [3, 4]], dtype=np.float32))
        out = store.gather("feat", [2, 99, 1])
        assert out.shape == (3, 2)
        assert out[0].tolist() == [3.0, 4.0]
        assert out[1].tolist() == [0.0, 0.0]  # missing rows are zero
        assert out[2].tolist() == [1.0, 2.0]
        with pytest.raises(ShapeError):
            store.put_many("feat", [1], np.zeros((2, 2)))

    def test_delete(self):
        store = AttributeStore()
        store.register("feat", 1)
        store.put("feat", 5, [1.0])
        assert store.delete("feat", 5) is True
        assert store.delete("feat", 5) is False
        assert store.num_vertices("feat") == 0

    def test_nbytes(self):
        store = AttributeStore()
        store.register("feat", 4)
        empty = store.nbytes()
        store.put("feat", 1, [0, 0, 0, 0])
        assert store.nbytes() > empty


class TestMemoryModel:
    def test_humanize(self):
        assert humanize_bytes(512) == "512B"
        assert humanize_bytes(2048) == "2.00KB"
        assert humanize_bytes(1.5 * (1 << 30)) == "1.50GB"
        assert humanize_bytes(4.2 * (1 << 40)) == "4.20TB"

    def test_directory_bytes(self):
        model = MemoryModel()
        assert model.directory_bytes(0) == 0
        assert model.directory_bytes(100) > 100 * model.directory_entry_bytes * 0.99

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_MEMORY_MODEL.id_bytes = 4  # type: ignore[misc]
