"""Bulk-built samtrees are equivalent to insert-loop trees.

The bottom-up O(n) builder (`Samtree.bulk_build`) must produce trees
that are *indistinguishable* from incrementally grown ones everywhere it
matters: structural invariants, degree, height bounds, the neighbor set
and weights, the total weight, and — the property the whole system
exists for — the weighted sampling distribution (chi-square tested).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.samtree import BULK_FILL_FRACTION, Samtree, SamtreeConfig
from repro.errors import ConfigurationError, InvalidWeightError

try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    from math import erf, sqrt

    return float(0.5 * (1.0 - erf(z / sqrt(2.0))))


def _incremental(ids, weights, config):
    tree = Samtree(config)
    for v, w in zip(ids, weights):
        tree.insert(int(v), float(w))
    return tree


@pytest.mark.parametrize("capacity,alpha", [(4, 0), (8, 2), (256, 0)])
@pytest.mark.parametrize("compress", [True, False])
def test_bulk_build_equivalence_sweep(capacity, alpha, compress):
    """Across sizes and configs: invariants, degree, height bound,
    neighbors, and total weight all match the insert-loop tree."""
    rng = random.Random(13)
    config = SamtreeConfig(capacity=capacity, alpha=alpha, compress=compress)
    for n in (0, 1, 2, 3, capacity, capacity + 1, 10 * capacity + 7, 2000):
        ids = rng.sample(range(10 * n + 10), n)
        weights = [round(rng.random() * 5 + 0.01, 6) for _ in range(n)]
        bulk = Samtree.bulk_build(ids, weights, config)
        inc = _incremental(ids, weights, config)
        bulk.check_invariants()
        assert bulk.degree == inc.degree == n
        # Bottom-up packing at target fill never ends up *taller* than
        # the split-on-overflow incremental shape.
        assert bulk.height <= inc.height
        # Stored weights agree up to Fenwick reconstruction rounding
        # (prefix sums are accumulated in different orders).
        bd, idd = bulk.to_dict(), inc.to_dict()
        assert bd.keys() == idd.keys()
        for v in bd:
            assert bd[v] == pytest.approx(idd[v], rel=1e-9, abs=1e-9)
        assert sorted(bulk.neighbors()) == sorted(inc.neighbors())
        assert bulk.total_weight == pytest.approx(
            inc.total_weight, rel=1e-12, abs=1e-12
        )


def test_bulk_build_duplicates_resolve_last_wins():
    config = SamtreeConfig(capacity=8)
    ids = [5, 3, 5, 9, 3, 3]
    weights = [1.0, 2.0, 7.0, 4.0, 5.0, 6.0]
    tree = Samtree.bulk_build(ids, weights, config)
    tree.check_invariants()
    assert tree.to_dict() == {5: 7.0, 3: 6.0, 9: 4.0}


def test_bulk_build_assume_sorted_unique_skips_sort():
    config = SamtreeConfig(capacity=4)
    ids = list(range(0, 100, 3))
    weights = [float(i % 7 + 1) for i in ids]
    a = Samtree.bulk_build(ids, weights, config, assume_sorted_unique=True)
    b = Samtree.bulk_build(ids, weights, config)
    a.check_invariants()
    assert a.to_dict() == b.to_dict()


def test_bulk_build_weight_default_is_one():
    tree = Samtree.bulk_build([4, 1, 9], config=SamtreeConfig(capacity=4))
    assert tree.to_dict() == {1: 1.0, 4: 1.0, 9: 1.0}


def test_bulk_build_validation():
    config = SamtreeConfig(capacity=4)
    with pytest.raises(InvalidWeightError):
        Samtree.bulk_build([-1, 2], config=config)
    with pytest.raises(InvalidWeightError):
        Samtree.bulk_build([1, 2], [1.0, -3.0], config=config)
    with pytest.raises(InvalidWeightError):
        Samtree.bulk_build([1], [float("nan")], config=config)
    with pytest.raises(ConfigurationError):
        Samtree.bulk_build([[1, 2]], config=config)  # 2-D ids
    with pytest.raises(ConfigurationError):
        Samtree.bulk_build([1, 2], [1.0], config=config)
    with pytest.raises(ConfigurationError):
        Samtree.bulk_build([1, 2], config=config, fill=0.0)


def test_bulk_build_occupancy_matches_fill_fraction():
    """A bulk-built tree packs leaves near the target fill: its leaf
    count is close to n / (fill * capacity), well below worst case."""
    config = SamtreeConfig(capacity=256)
    n = 100_000
    tree = Samtree.bulk_build(np.arange(n), config=config)
    tree.check_invariants()
    target = BULK_FILL_FRACTION * config.capacity
    leaves = -(-n // int(target))  # expected ~= ceil(n / target)
    # Count actual leaves by walking down to the leaf level.
    def count_leaves(node):
        if node.is_leaf:
            return 1
        return sum(count_leaves(c) for c in node.children)

    actual = count_leaves(tree._root)
    assert abs(actual - leaves) <= leaves * 0.05 + 2


def test_bulk_build_supports_further_incremental_mutations():
    """A bulk-built tree is a first-class samtree: inserts, updates and
    deletes after the build keep every invariant."""
    rng = random.Random(5)
    config = SamtreeConfig(capacity=8, alpha=1)
    tree = Samtree.bulk_build(
        list(range(0, 400, 2)), [1.0 + (i % 5) for i in range(200)], config
    )
    for _ in range(300):
        r = rng.random()
        v = rng.randrange(500)
        if r < 0.5:
            tree.insert(v, rng.random() + 0.1)
        elif v in tree:
            tree.delete(v)
    tree.check_invariants()


def test_bulk_build_chi_square_sampling_equivalence():
    """The paper's core contract: a bulk-built tree samples neighbors
    from the same weighted distribution as an incrementally built one."""
    rng = random.Random(99)
    config = SamtreeConfig(capacity=8, alpha=0)
    n = 40
    ids = list(range(0, 4 * n, 4))
    weights = [(i % 7 + 1) * (10.0 if i % 11 == 0 else 1.0) for i in range(n)]
    bulk = Samtree.bulk_build(ids, weights, config)
    inc = _incremental(ids, weights, config)

    draws = 60_000
    total = sum(weights)
    expected = np.asarray([w / total * draws for w in weights])
    index = {v: i for i, v in enumerate(ids)}

    for tree, seed in ((bulk, 1), (inc, 2)):
        counts = np.zeros(n)
        samples = tree.sample_many(draws, random.Random(seed))
        for v in samples:
            counts[index[v]] += 1
        p = _chi2_pvalue(counts, expected)
        assert p > 0.01, (p, "bulk" if tree is bulk else "inc")
