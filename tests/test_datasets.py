"""Tests for the dataset generators, presets, and edge streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topology import DynamicGraphStore
from repro.datasets.presets import (
    DATASET_SPECS,
    RelationSpec,
    load_dataset,
    ogbn_scaled,
    reddit_scaled,
    wechat_scaled,
)
from repro.datasets.statistics import (
    degree_histogram,
    format_table3,
    published_table3_rows,
)
from repro.datasets.stream import EdgeStream, RequestStream
from repro.datasets.synthetic import (
    TYPE_ID_STRIDE,
    power_law_edges,
    powerlaw_degrees,
    type_offset,
    zipf_probabilities,
    zipf_request_sources,
)
from repro.errors import ConfigurationError


class TestSynthetic:
    def test_zipf_probabilities(self):
        p = zipf_probabilities(10, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[-1]
        uniform = zipf_probabilities(10, 0.0)
        assert uniform[0] == pytest.approx(uniform[-1])
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_probabilities(5, -1.0)

    def test_power_law_edges_shapes_and_ranges(self):
        rng = np.random.default_rng(0)
        src, dst, w = power_law_edges(100, 50, 1000, rng, src_type=1, dst_type=2)
        assert src.shape == dst.shape == w.shape == (1000,)
        assert ((src >= type_offset(1)) & (src < type_offset(2))).all()
        assert ((dst >= type_offset(2)) & (dst < type_offset(3))).all()
        assert (w > 0).all()

    def test_skewed_degrees(self):
        rng = np.random.default_rng(1)
        src, _, _ = power_law_edges(1000, 1000, 20000, rng, src_exponent=1.0)
        _, counts = np.unique(src, return_counts=True)
        # Power-law skew: the hottest source is far above the mean.
        assert counts.max() > 5 * counts.mean()

    def test_type_offset(self):
        assert type_offset(0) == 0
        assert type_offset(3) == 3 * TYPE_ID_STRIDE
        with pytest.raises(ConfigurationError):
            type_offset(-1)

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            power_law_edges(0, 10, 10, rng)
        with pytest.raises(ConfigurationError):
            power_law_edges(10, 10, -1, rng)

    def test_zipf_request_sources_skew_and_determinism(self):
        draws = zipf_request_sources(
            500, 4000, 1.4, np.random.default_rng(3), shuffle=False
        )
        assert draws.dtype == np.int64
        assert draws.shape == (4000,)
        ids, counts = np.unique(draws, return_counts=True)
        # Unshuffled: rank == id, so id 0 is the celebrity.
        assert ids[np.argmax(counts)] == 0
        assert counts.max() / 4000 > 0.25
        again = zipf_request_sources(
            500, 4000, 1.4, np.random.default_rng(3), shuffle=False
        )
        assert np.array_equal(draws, again)

    def test_zipf_request_sources_shuffle_and_type_offset(self):
        draws = zipf_request_sources(
            500, 2000, 1.2, np.random.default_rng(4), src_type=2
        )
        assert (draws >= type_offset(2)).all()
        assert (draws < type_offset(3)).all()
        # The shuffled hot key is (almost surely) not rank 0's id.
        _, counts = np.unique(draws, return_counts=True)
        assert counts.max() > 100
        with pytest.raises(ConfigurationError):
            zipf_request_sources(0, 10, 1.0, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            zipf_request_sources(10, -1, 1.0, np.random.default_rng(0))

    def test_powerlaw_degrees(self):
        degrees = powerlaw_degrees(1000, hub_degree=10_000, min_degree=8)
        assert degrees.shape == (1000,)
        assert degrees[0] == 10_000
        assert (np.diff(degrees) <= 0).all()  # rank-monotone
        assert degrees[-1] == 8
        with pytest.raises(ConfigurationError):
            powerlaw_degrees(0, 100)
        with pytest.raises(ConfigurationError):
            powerlaw_degrees(10, 100, min_degree=0)


class TestSpecs:
    def test_published_sizes_match_table3(self):
        ogbn = DATASET_SPECS["OGBN"][0]
        assert ogbn.num_edges == 61_900_000
        assert ogbn.density == pytest.approx(25.8, abs=0.1)
        reddit = DATASET_SPECS["Reddit"][0]
        assert reddit.density == pytest.approx(489.3, abs=0.2)
        wechat = {s.name: s for s in DATASET_SPECS["WeChat"]}
        assert wechat["User-Live"].density == pytest.approx(62.06, abs=0.1)
        assert wechat["User-Attr"].density == pytest.approx(1.96, abs=0.01)
        assert wechat["Live-Live"].density == pytest.approx(49.62, abs=0.1)
        assert wechat["Live-Tag"].density == pytest.approx(1.99, abs=0.01)
        total_edges = sum(s.num_edges for s in DATASET_SPECS["WeChat"])
        assert total_edges == pytest.approx(65.88e9, rel=0.01)

    def test_scaling_preserves_density(self):
        spec = DATASET_SPECS["Reddit"][0]
        scaled = spec.scaled(1000)
        assert scaled.density == pytest.approx(spec.density, rel=0.01)
        with pytest.raises(ConfigurationError):
            spec.scaled(0.5)

    def test_min_nodes_floor(self):
        spec = RelationSpec("tiny", 0, 0, 0, 100, 100, 1000)
        scaled = spec.scaled(1000, min_nodes=64)
        assert scaled.num_src == 64


class TestPresets:
    def test_ogbn(self):
        data = ogbn_scaled(scale=10_000)
        assert data.name == "OGBN"
        assert len(data.relations) == 2  # forward + reversed twin
        assert len(data.forward_relations()) == 1
        rows = data.stats_rows()
        assert rows[0]["density"] == pytest.approx(25.8, rel=0.05)

    def test_reddit(self):
        data = reddit_scaled(scale=3000)
        assert data.stats_rows()[0]["density"] == pytest.approx(489.3, rel=0.05)

    def test_wechat_four_relations(self):
        data = wechat_scaled(scale=4_000_000)
        assert [r.spec.name for r in data.forward_relations()] == [
            "User-Live",
            "User-Attr",
            "Live-Live",
            "Live-Tag",
        ]
        # Bi-directed storage adds a reversed twin per relation.
        assert len(data.relations) == 8
        assert len({r.spec.etype for r in data.relations}) == 8
        user_live = data.relation("User-Live")
        assert (user_live.dst >= TYPE_ID_STRIDE).all()
        rev = data.relation("rev:User-Live")
        assert (rev.src == user_live.dst).all()
        assert (rev.dst == user_live.src).all()

    def test_bidirected_off(self):
        data = wechat_scaled(scale=4_000_000, bidirected=False)
        assert len(data.relations) == 4

    def test_load_dataset(self):
        assert load_dataset("OGBN", scale=20_000).name == "OGBN"
        assert load_dataset("WeChat").name == "WeChat"
        with pytest.raises(ConfigurationError):
            load_dataset("nope")

    def test_determinism(self):
        a = ogbn_scaled(scale=10_000, seed=5)
        b = ogbn_scaled(scale=10_000, seed=5)
        assert (a.relations[0].src == b.relations[0].src).all()

    def test_relation_lookup_error(self):
        with pytest.raises(ConfigurationError):
            ogbn_scaled(scale=10_000).relation("nope")


class TestStatistics:
    def test_published_rows(self):
        rows = published_table3_rows()
        assert len(rows) == 6  # OGBN + Reddit + 4 WeChat relations
        table = format_table3(rows)
        assert "63.30B" in table
        assert "489.27" in table or "489.3" in table

    def test_degree_histogram(self):
        data = ogbn_scaled(scale=10_000)
        hist = degree_histogram(data)
        assert sum(hist.values()) > 0
        # Power-law: low-degree buckets dominate.
        assert max(hist, key=hist.get) <= 6


class TestRequestStream:
    def test_deterministic_by_seed(self):
        a = RequestStream(1000, exponent=1.2, seed=5)
        b = RequestStream(1000, exponent=1.2, seed=5)
        for batch_a, batch_b in zip(a.batches(64, 4), b.batches(64, 4)):
            assert np.array_equal(batch_a, batch_b)
        c = RequestStream(1000, exponent=1.2, seed=6)
        assert not np.array_equal(a.batch(64), c.batch(64))

    def test_hot_sources_ground_truth(self):
        stream = RequestStream(2000, exponent=1.4, seed=7)
        hot = stream.hot_sources(3)
        counts = {int(h): 0 for h in hot}
        for batch in stream.batches(256, 30):
            for src in batch:
                if int(src) in counts:
                    counts[int(src)] += 1
        observed = sorted(counts, key=counts.get, reverse=True)
        # The declared hottest key really dominates the trace.
        assert observed[0] == int(hot[0])
        assert counts[int(hot[0])] > 256 * 30 * 0.25

    def test_skew_concentration_grows_with_exponent(self):
        def top_share(exponent):
            stream = RequestStream(2000, exponent=exponent, seed=8)
            draws = np.concatenate(list(stream.batches(256, 20)))
            _, counts = np.unique(draws, return_counts=True)
            return counts.max() / draws.size

        assert top_share(0.6) < top_share(0.99) < top_share(1.4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RequestStream(0)
        with pytest.raises(ConfigurationError):
            RequestStream(10, exponent=-0.1)
        stream = RequestStream(10)
        with pytest.raises(ConfigurationError):
            stream.batch(0)
        with pytest.raises(ConfigurationError):
            stream.hot_sources(-1)


class TestEdgeStream:
    def test_build_batches_cover_everything(self):
        data = ogbn_scaled(scale=20_000)
        stream = EdgeStream(data)
        total = 0
        for batch in stream.build_batches(97):
            assert len(batch) <= 97
            total += len(batch)
        assert total == data.num_edges

    def test_live_set_matches_store(self):
        data = ogbn_scaled(scale=20_000)
        stream = EdgeStream(data, seed=3)
        store = DynamicGraphStore()
        for batch in stream.build_batches(256):
            for op in batch:
                store.apply(op)
        assert store.num_edges == stream.num_live_edges
        for batch in stream.churn_batches(128, 6, mix=(0.4, 0.3, 0.3)):
            for op in batch:
                store.apply(op)
        assert store.num_edges == stream.num_live_edges

    def test_mix_validation(self):
        stream = EdgeStream(ogbn_scaled(scale=20_000))
        with pytest.raises(ConfigurationError):
            list(stream.churn_batches(10, 1, mix=(0, 0, 0)))
        with pytest.raises(ConfigurationError):
            list(stream.build_batches(0))

    def test_delete_only_churn_drains(self):
        data = ogbn_scaled(scale=20_000)
        stream = EdgeStream(data, seed=1)
        store = DynamicGraphStore()
        for batch in stream.build_batches(512):
            for op in batch:
                store.apply(op)
        before = stream.num_live_edges
        for batch in stream.churn_batches(64, 3, mix=(0.0, 0.0, 1.0)):
            for op in batch:
                assert op.kind.value == "delete"
                store.apply(op)
        assert stream.num_live_edges < before
        assert store.num_edges == stream.num_live_edges
