"""Tests for the dataset generators, presets, and edge streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.topology import DynamicGraphStore
from repro.datasets.presets import (
    DATASET_SPECS,
    RelationSpec,
    load_dataset,
    ogbn_scaled,
    reddit_scaled,
    wechat_scaled,
)
from repro.datasets.statistics import (
    degree_histogram,
    format_table3,
    published_table3_rows,
)
from repro.datasets.stream import EdgeStream
from repro.datasets.synthetic import (
    TYPE_ID_STRIDE,
    power_law_edges,
    type_offset,
    zipf_probabilities,
)
from repro.errors import ConfigurationError


class TestSynthetic:
    def test_zipf_probabilities(self):
        p = zipf_probabilities(10, 1.0)
        assert p.sum() == pytest.approx(1.0)
        assert p[0] > p[-1]
        uniform = zipf_probabilities(10, 0.0)
        assert uniform[0] == pytest.approx(uniform[-1])
        with pytest.raises(ConfigurationError):
            zipf_probabilities(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_probabilities(5, -1.0)

    def test_power_law_edges_shapes_and_ranges(self):
        rng = np.random.default_rng(0)
        src, dst, w = power_law_edges(100, 50, 1000, rng, src_type=1, dst_type=2)
        assert src.shape == dst.shape == w.shape == (1000,)
        assert ((src >= type_offset(1)) & (src < type_offset(2))).all()
        assert ((dst >= type_offset(2)) & (dst < type_offset(3))).all()
        assert (w > 0).all()

    def test_skewed_degrees(self):
        rng = np.random.default_rng(1)
        src, _, _ = power_law_edges(1000, 1000, 20000, rng, src_exponent=1.0)
        _, counts = np.unique(src, return_counts=True)
        # Power-law skew: the hottest source is far above the mean.
        assert counts.max() > 5 * counts.mean()

    def test_type_offset(self):
        assert type_offset(0) == 0
        assert type_offset(3) == 3 * TYPE_ID_STRIDE
        with pytest.raises(ConfigurationError):
            type_offset(-1)

    def test_validation(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            power_law_edges(0, 10, 10, rng)
        with pytest.raises(ConfigurationError):
            power_law_edges(10, 10, -1, rng)


class TestSpecs:
    def test_published_sizes_match_table3(self):
        ogbn = DATASET_SPECS["OGBN"][0]
        assert ogbn.num_edges == 61_900_000
        assert ogbn.density == pytest.approx(25.8, abs=0.1)
        reddit = DATASET_SPECS["Reddit"][0]
        assert reddit.density == pytest.approx(489.3, abs=0.2)
        wechat = {s.name: s for s in DATASET_SPECS["WeChat"]}
        assert wechat["User-Live"].density == pytest.approx(62.06, abs=0.1)
        assert wechat["User-Attr"].density == pytest.approx(1.96, abs=0.01)
        assert wechat["Live-Live"].density == pytest.approx(49.62, abs=0.1)
        assert wechat["Live-Tag"].density == pytest.approx(1.99, abs=0.01)
        total_edges = sum(s.num_edges for s in DATASET_SPECS["WeChat"])
        assert total_edges == pytest.approx(65.88e9, rel=0.01)

    def test_scaling_preserves_density(self):
        spec = DATASET_SPECS["Reddit"][0]
        scaled = spec.scaled(1000)
        assert scaled.density == pytest.approx(spec.density, rel=0.01)
        with pytest.raises(ConfigurationError):
            spec.scaled(0.5)

    def test_min_nodes_floor(self):
        spec = RelationSpec("tiny", 0, 0, 0, 100, 100, 1000)
        scaled = spec.scaled(1000, min_nodes=64)
        assert scaled.num_src == 64


class TestPresets:
    def test_ogbn(self):
        data = ogbn_scaled(scale=10_000)
        assert data.name == "OGBN"
        assert len(data.relations) == 2  # forward + reversed twin
        assert len(data.forward_relations()) == 1
        rows = data.stats_rows()
        assert rows[0]["density"] == pytest.approx(25.8, rel=0.05)

    def test_reddit(self):
        data = reddit_scaled(scale=3000)
        assert data.stats_rows()[0]["density"] == pytest.approx(489.3, rel=0.05)

    def test_wechat_four_relations(self):
        data = wechat_scaled(scale=4_000_000)
        assert [r.spec.name for r in data.forward_relations()] == [
            "User-Live",
            "User-Attr",
            "Live-Live",
            "Live-Tag",
        ]
        # Bi-directed storage adds a reversed twin per relation.
        assert len(data.relations) == 8
        assert len({r.spec.etype for r in data.relations}) == 8
        user_live = data.relation("User-Live")
        assert (user_live.dst >= TYPE_ID_STRIDE).all()
        rev = data.relation("rev:User-Live")
        assert (rev.src == user_live.dst).all()
        assert (rev.dst == user_live.src).all()

    def test_bidirected_off(self):
        data = wechat_scaled(scale=4_000_000, bidirected=False)
        assert len(data.relations) == 4

    def test_load_dataset(self):
        assert load_dataset("OGBN", scale=20_000).name == "OGBN"
        assert load_dataset("WeChat").name == "WeChat"
        with pytest.raises(ConfigurationError):
            load_dataset("nope")

    def test_determinism(self):
        a = ogbn_scaled(scale=10_000, seed=5)
        b = ogbn_scaled(scale=10_000, seed=5)
        assert (a.relations[0].src == b.relations[0].src).all()

    def test_relation_lookup_error(self):
        with pytest.raises(ConfigurationError):
            ogbn_scaled(scale=10_000).relation("nope")


class TestStatistics:
    def test_published_rows(self):
        rows = published_table3_rows()
        assert len(rows) == 6  # OGBN + Reddit + 4 WeChat relations
        table = format_table3(rows)
        assert "63.30B" in table
        assert "489.27" in table or "489.3" in table

    def test_degree_histogram(self):
        data = ogbn_scaled(scale=10_000)
        hist = degree_histogram(data)
        assert sum(hist.values()) > 0
        # Power-law: low-degree buckets dominate.
        assert max(hist, key=hist.get) <= 6


class TestEdgeStream:
    def test_build_batches_cover_everything(self):
        data = ogbn_scaled(scale=20_000)
        stream = EdgeStream(data)
        total = 0
        for batch in stream.build_batches(97):
            assert len(batch) <= 97
            total += len(batch)
        assert total == data.num_edges

    def test_live_set_matches_store(self):
        data = ogbn_scaled(scale=20_000)
        stream = EdgeStream(data, seed=3)
        store = DynamicGraphStore()
        for batch in stream.build_batches(256):
            for op in batch:
                store.apply(op)
        assert store.num_edges == stream.num_live_edges
        for batch in stream.churn_batches(128, 6, mix=(0.4, 0.3, 0.3)):
            for op in batch:
                store.apply(op)
        assert store.num_edges == stream.num_live_edges

    def test_mix_validation(self):
        stream = EdgeStream(ogbn_scaled(scale=20_000))
        with pytest.raises(ConfigurationError):
            list(stream.churn_batches(10, 1, mix=(0, 0, 0)))
        with pytest.raises(ConfigurationError):
            list(stream.build_batches(0))

    def test_delete_only_churn_drains(self):
        data = ogbn_scaled(scale=20_000)
        stream = EdgeStream(data, seed=1)
        store = DynamicGraphStore()
        for batch in stream.build_batches(512):
            for op in batch:
                store.apply(op)
        before = stream.num_live_edges
        for batch in stream.churn_batches(64, 3, mix=(0.0, 0.0, 1.0)):
            for op in batch:
                assert op.kind.value == "delete"
                store.apply(op)
        assert stream.num_live_edges < before
        assert store.num_edges == stream.num_live_edges
