"""Tests for the benchmark harness (timers, report, workloads)."""

from __future__ import annotations

import time

import pytest

from repro.bench.report import format_series, format_table, reduction_pct, speedup
from repro.bench.timers import Timer, timed
from repro.bench.workloads import (
    CLUSTER_BUDGET_BYTES,
    STORE_NAMES,
    build_store,
    full_scale_bytes,
    make_store,
    neighbor_sampling_sweep,
    run_update_batches,
    sources_of,
    subgraph_sampling_sweep,
)
from repro.core.topology import DynamicGraphStore
from repro.datasets.presets import ogbn_scaled, wechat_scaled
from repro.datasets.stream import EdgeStream
from repro.errors import ConfigurationError


class TestTimers:
    def test_laps(self):
        t = Timer()
        with timed(t):
            time.sleep(0.001)
        with timed(t):
            pass
        assert t.count == 2
        assert t.total >= 0.001
        assert t.mean == pytest.approx(t.total / 2)
        t.reset()
        assert t.count == 0 and t.mean == 0.0


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2], ["xxx", 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "xxx" in out

    def test_format_series_marks_oom(self):
        out = format_series(
            "batch", [1, 2], {"sys": [1.5, float("nan")]}, unit="ms"
        )
        assert "1.500ms" in out
        assert "o.o.m" in out

    def test_ratios(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        assert speedup(1.0, 0.0) == float("inf")
        assert reduction_pct(4.3, 0.81) == pytest.approx(81.2, abs=0.1)
        assert reduction_pct(0.0, 1.0) == 0.0


class TestWorkloads:
    def test_make_store_names(self):
        for name in STORE_NAMES:
            store = make_store(name)
            store.add_edge(1, 2, 1.0)
            assert store.num_edges == 1
        with pytest.raises(ConfigurationError):
            make_store("nope")

    def test_make_store_respects_capacity(self):
        store = make_store("PlatoD2GL", capacity=16, alpha=2)
        assert store.config.capacity == 16
        assert store.config.alpha == 2

    def test_build_store(self):
        data = ogbn_scaled(scale=20_000)
        result = build_store(make_store("PlatoD2GL"), data, batch_size=512)
        assert result.num_ops == data.num_edges
        assert not result.out_of_memory
        assert result.seconds > 0
        assert result.ops_per_second > 0

    def test_build_store_oom(self):
        data = ogbn_scaled(scale=20_000)
        result = build_store(
            make_store("AliGraph"), data, batch_size=512, memory_budget=1024
        )
        assert result.out_of_memory
        assert result.num_ops < data.num_edges

    def test_run_update_batches(self):
        data = ogbn_scaled(scale=20_000)
        store = make_store("PlatoD2GL")
        stream = EdgeStream(data)
        for batch in stream.build_batches(1024):
            for op in batch:
                store.apply(op)
        mean = run_update_batches(store, stream, batch_size=64, num_batches=3)
        assert mean > 0

    def test_sampling_sweeps(self):
        data = ogbn_scaled(scale=20_000)
        store = make_store("PlatoD2GL")
        build_store(store, data)
        sources = sources_of(store, limit=100)
        assert len(sources) == 100
        neigh = neighbor_sampling_sweep(store, sources, [4, 16], k=10)
        assert set(neigh) == {4, 16}
        assert all(v > 0 for v in neigh.values())
        sub = subgraph_sampling_sweep(store, sources, [4], fanouts=(3, 3))
        assert sub[4] > 0

    def test_full_scale_extrapolation(self):
        data = wechat_scaled(scale=4_000_000)
        store = make_store("PlatoD2GL")
        build_store(store, data)
        full = full_scale_bytes(store, data, "WeChat")
        # Per-edge cost times 65.9B edges lands in the hundreds of GB.
        assert full > 100 * (1 << 30)
        assert full < CLUSTER_BUDGET_BYTES
        ali = make_store("AliGraph")
        build_store(ali, data)
        peak = full_scale_bytes(ali, data, "WeChat", use_peak=True)
        assert peak > CLUSTER_BUDGET_BYTES  # the paper's o.o.m entry

    def test_full_scale_empty_store(self):
        data = ogbn_scaled(scale=20_000)
        assert full_scale_bytes(DynamicGraphStore(), data, "OGBN") == 0.0
