"""Tests for intra-tree batch updates (paper Appendix B rounds)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency.palm import PalmExecutor
from repro.core.samtree import Samtree, SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.errors import ConfigurationError


def sequential_apply(tree: Samtree, ops):
    outcomes = []
    for kind, vid, w in ops:
        if kind == "insert":
            outcomes.append(tree.insert(vid, w))
        elif kind == "update":
            present = vid in tree
            if present:
                tree.insert(vid, w)
            outcomes.append(present)
        else:
            outcomes.append(tree.delete(vid))
    return outcomes


class TestBasics:
    def test_empty_batch(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        assert tree.apply_batch([]) == []

    def test_unknown_kind(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        with pytest.raises(ConfigurationError):
            tree.apply_batch([("frob", 1, 1.0)])

    def test_outcome_semantics(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        out = tree.apply_batch(
            [
                ("insert", 1, 1.0),   # new -> True
                ("insert", 1, 2.0),   # overwrite -> False
                ("update", 2, 1.0),   # missing -> False
                ("update", 1, 3.0),   # present -> True
                ("delete", 1, 0.0),   # present -> True
                ("delete", 1, 0.0),   # gone -> False
            ]
        )
        assert out == [True, False, False, True, True, False]
        assert tree.degree == 0

    def test_mass_insert_multi_split(self):
        """One batch can force a leaf to split several times."""
        tree = Samtree(SamtreeConfig(capacity=4))
        ops = [("insert", v, 1.0) for v in range(200)]
        out = tree.apply_batch(ops)
        assert all(out)
        tree.check_invariants()
        assert tree.degree == 200
        assert tree.height >= 3

    def test_mass_delete_collapses(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        tree.apply_batch([("insert", v, 1.0) for v in range(200)])
        out = tree.apply_batch([("delete", v, 0.0) for v in range(200)])
        assert all(out)
        tree.check_invariants()
        assert tree.degree == 0
        assert tree.height == 1

    def test_mixed_batch_on_preloaded_tree(self):
        tree = Samtree(SamtreeConfig(capacity=8))
        for v in range(100):
            tree.insert(v, 1.0)
        tree.apply_batch(
            [("delete", v, 0.0) for v in range(0, 100, 2)]
            + [("insert", 1000 + v, 2.0) for v in range(30)]
            + [("update", 1, 9.0, )]
        )
        tree.check_invariants()
        assert tree.degree == 50 + 30
        assert tree.get_weight(1) == pytest.approx(9.0)
        assert tree.get_weight(0) is None


class TestDecorativeKeyRegression:
    """A node's keys[0] is decorative (routing clamps to child 0), so a
    child-0 split must not place its exact pivot after the inherited
    decorative key.  Regression for a separator-ordering corruption found
    by adversarial fuzzing (round 8 of seed 5)."""

    def test_adversarial_rounds_stay_consistent(self):
        rng = random.Random(5)
        tree = Samtree(SamtreeConfig(capacity=4, alpha=1))
        live = {}
        for _ in range(20):
            ops = []
            for _ in range(200):
                dst = rng.randrange(300)
                if rng.random() < 0.55:
                    w = rng.random() + 0.01
                    ops.append(("insert", dst, w))
                    live[dst] = w
                else:
                    ops.append(("delete", dst, 0.0))
                    live.pop(dst, None)
            tree.apply_batch(ops)
            tree.check_invariants()
        assert tree.to_dict().keys() == live.keys()

    def test_decorative_root_key_then_batch_split(self):
        """Force the exact shape: collapse leaves a root whose keys[0]
        exceeds child 0's minimum, then a batch splits child 0."""
        tree = Samtree(SamtreeConfig(capacity=4))
        # Build height 3, then delete the left side so the root collapses
        # to a former right-half node (its keys[0] is an old pivot).
        for v in range(0, 120, 2):
            tree.insert(v, 1.0)
        for v in range(0, 60, 2):
            tree.delete(v)
        # Insert values below the (possibly decorative) smallest key via
        # one batch large enough to split child 0 repeatedly.
        tree.apply_batch([("insert", v, 1.0) for v in range(1, 59, 2)])
        tree.check_invariants()
        expected = set(range(60, 120, 2)) | set(range(1, 59, 2))
        assert set(tree.neighbors()) == expected


ops_st = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert", "update", "delete"]),
        st.integers(min_value=0, max_value=250),
        st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=300,
)


@given(ops_st, st.sampled_from([4, 8, 16]), st.integers(min_value=0, max_value=3))
@settings(max_examples=100, deadline=None)
def test_batch_equals_sequential(ops, capacity, alpha):
    """apply_batch ≡ sequential op application (outcomes + final state)."""
    seq = Samtree(SamtreeConfig(capacity=capacity, alpha=alpha))
    bat = Samtree(SamtreeConfig(capacity=capacity, alpha=alpha))
    out_b = bat.apply_batch(ops)
    out_s = sequential_apply(seq, ops)
    assert out_b == out_s
    bat.check_invariants()
    bd, sd = bat.to_dict(), seq.to_dict()
    assert bd.keys() == sd.keys()
    for k in sd:
        assert bd[k] == pytest.approx(sd[k])


@given(ops_st)
@settings(max_examples=50, deadline=None)
def test_batch_on_preloaded_tree(ops):
    seq = Samtree(SamtreeConfig(capacity=8))
    bat = Samtree(SamtreeConfig(capacity=8))
    for v in range(0, 250, 3):
        seq.insert(v, 0.5)
        bat.insert(v, 0.5)
    assert bat.apply_batch(ops) == sequential_apply(seq, ops)
    bat.check_invariants()
    assert bat.to_dict().keys() == seq.to_dict().keys()


class TestStoreIntegration:
    def test_apply_source_batch_counters(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        out = store.apply_source_batch(
            5, 0, [("insert", 1, 1.0), ("insert", 2, 1.0), ("delete", 1, 0.0)]
        )
        assert out == [True, True, True]
        assert store.num_edges == 1
        assert store.degree(5) == 1

    def test_apply_source_batch_no_tree_creation_for_updates(self):
        store = DynamicGraphStore()
        out = store.apply_source_batch(5, 0, [("update", 1, 1.0), ("delete", 2, 0.0)])
        assert out == [False, False]
        assert store.num_sources == 0

    def test_apply_source_batch_drops_empty_tree(self):
        store = DynamicGraphStore()
        store.add_edge(5, 1, 1.0)
        store.apply_source_batch(5, 0, [("delete", 1, 0.0)])
        assert store.num_sources == 0
        assert store.num_edges == 0

    def test_palm_backends_agree(self):
        rng = random.Random(1)
        ops = []
        for _ in range(3000):
            src, dst = rng.randrange(15), rng.randrange(200)
            if rng.random() < 0.7:
                ops.append(EdgeOp.insert(src, dst, round(rng.random(), 4)))
            else:
                ops.append(EdgeOp.delete(src, dst))
        batched = DynamicGraphStore(SamtreeConfig(capacity=8))
        per_op = DynamicGraphStore(SamtreeConfig(capacity=8))
        r1 = PalmExecutor(batched, 4, tree_batching=True).apply_batch(ops)
        r2 = PalmExecutor(per_op, 4, tree_batching=False).apply_batch(ops)
        assert r1.outcomes == r2.outcomes
        assert batched.num_edges == per_op.num_edges
        batched.check_invariants()
        for src in range(15):
            a, b = dict(batched.neighbors(src)), dict(per_op.neighbors(src))
            assert a.keys() == b.keys()
            for k in a:
                assert a[k] == pytest.approx(b[k])
