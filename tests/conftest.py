"""Shared fixtures for the PlatoD2GL reproduction test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig


@pytest.fixture
def rng() -> random.Random:
    """Deterministic stdlib RNG."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def nprng() -> np.random.Generator:
    """Deterministic NumPy RNG."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def small_config() -> SamtreeConfig:
    """A tiny samtree capacity so tests exercise splits and merges."""
    return SamtreeConfig(capacity=8, alpha=0, compress=True)
