"""Unit tests for the samtree (paper §IV, Algorithms 1-2, Examples 1-2)."""

from __future__ import annotations

import random

import pytest

from repro.core.samtree import OpStats, Samtree, SamtreeConfig
from repro.errors import (
    ConfigurationError,
    EmptyStructureError,
    InvalidWeightError,
)


def build_tree(edges, capacity=8, alpha=0, compress=True):
    tree = Samtree(SamtreeConfig(capacity=capacity, alpha=alpha, compress=compress))
    for dst, w in edges:
        tree.insert(dst, w)
    return tree


class TestConfig:
    def test_defaults_match_paper(self):
        """Default node capacity 256 (2^8) and α = 0 (paper §VII-A)."""
        config = SamtreeConfig()
        assert config.capacity == 256
        assert config.alpha == 0
        assert config.compress is True

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SamtreeConfig(capacity=2)
        with pytest.raises(ConfigurationError):
            SamtreeConfig(alpha=-1)

    def test_min_fill_follows_paper_remark(self):
        """Each node holds at least c/2 - α entries after a split."""
        assert SamtreeConfig(capacity=8, alpha=0).leaf_min_fill == 4
        assert SamtreeConfig(capacity=8, alpha=2).leaf_min_fill == 2
        assert SamtreeConfig(capacity=8, alpha=100).leaf_min_fill == 1


class TestPaperExample1:
    """Figure 3: the graph-storage running example."""

    def test_vertex_3_single_leaf(self):
        tree = build_tree([(4, 0.6), (7, 0.7)], capacity=4)
        assert tree.degree == 2
        assert tree.height == 1
        # The leaf FSTable holds [0.6, 1.3] (w_4, w_4 + w_7).
        assert tree.total_weight == pytest.approx(1.3)
        assert tree.get_weight(4) == pytest.approx(0.6)
        assert tree.get_weight(7) == pytest.approx(0.7)

    def test_vertex_1_three_neighbors(self):
        tree = build_tree([(2, 0.1), (3, 0.4), (5, 0.2)], capacity=4)
        assert tree.degree == 3
        assert tree.total_weight == pytest.approx(0.7)
        assert tree.to_dict() == pytest.approx({2: 0.1, 3: 0.4, 5: 0.2})


class TestPaperExample2:
    """Figure 4: inserting v6 into a full capacity-4 leaf splits it."""

    def test_insertion_split(self):
        tree = build_tree(
            [(1, 0.3), (2, 0.4), (3, 0.5), (4, 0.6)], capacity=4
        )
        assert tree.height == 1
        tree.insert(6, 0.7)
        assert tree.degree == 5
        assert tree.height == 2
        tree.check_invariants()
        # Total weight: 0.3+0.4+0.5+0.6+0.7 = 2.5; the root CSTable's two
        # entries partition it.
        assert tree.total_weight == pytest.approx(2.5)
        assert tree.to_dict() == pytest.approx(
            {1: 0.3, 2: 0.4, 3: 0.5, 4: 0.6, 6: 0.7}
        )


class TestInsertion:
    def test_insert_returns_newness(self):
        tree = build_tree([])
        assert tree.insert(5, 1.0) is True
        assert tree.insert(5, 2.0) is False  # in-place update
        assert tree.degree == 1
        assert tree.get_weight(5) == pytest.approx(2.0)

    def test_add_weight_accumulates(self):
        tree = build_tree([])
        tree.add_weight(5, 1.0)
        tree.add_weight(5, 2.5)
        assert tree.get_weight(5) == pytest.approx(3.5)
        assert tree.degree == 1

    def test_many_inserts_keep_invariants(self):
        tree = build_tree([], capacity=8)
        for i in range(500):
            tree.insert(i * 37 % 1000, 1.0 + (i % 3))
        tree.check_invariants()
        assert tree.height >= 3

    def test_reverse_order_inserts(self):
        tree = build_tree([], capacity=6)
        for i in reversed(range(200)):
            tree.insert(i, 1.0)
        tree.check_invariants()
        assert sorted(tree.neighbors()) == list(range(200))

    def test_rejects_bad_weight(self):
        tree = build_tree([])
        with pytest.raises(InvalidWeightError):
            tree.insert(1, -1.0)
        with pytest.raises(InvalidWeightError):
            tree.insert(1, float("nan"))

    def test_duplicate_heavy_workload(self):
        tree = build_tree([], capacity=8)
        for rep in range(5):
            for v in range(100):
                tree.insert(v, float(rep + 1))
        assert tree.degree == 100
        assert all(w == pytest.approx(5.0) for _, w in tree.items())
        tree.check_invariants()


class TestDeletion:
    def test_delete_missing(self):
        tree = build_tree([(1, 1.0)])
        assert tree.delete(2) is False
        assert tree.delete(1) is True
        assert tree.delete(1) is False
        assert tree.degree == 0

    def test_delete_all_in_order(self):
        tree = build_tree([(i, 1.0) for i in range(300)], capacity=8)
        for i in range(300):
            assert tree.delete(i) is True
            if i % 50 == 0:
                tree.check_invariants()
        assert tree.degree == 0
        assert tree.height == 1
        tree.check_invariants()

    def test_delete_all_reverse(self):
        tree = build_tree([(i, 1.0) for i in range(300)], capacity=8)
        for i in reversed(range(300)):
            tree.delete(i)
        assert tree.degree == 0
        tree.check_invariants()

    def test_merge_keeps_weights(self):
        tree = build_tree([(i, float(i + 1)) for i in range(64)], capacity=8)
        r = random.Random(9)
        expected = {i: float(i + 1) for i in range(64)}
        for v in r.sample(range(64), 48):
            tree.delete(v)
            del expected[v]
        tree.check_invariants()
        assert tree.to_dict() == pytest.approx(expected)

    def test_root_collapse(self):
        tree = build_tree([(i, 1.0) for i in range(50)], capacity=8)
        assert tree.height > 1
        for i in range(45):
            tree.delete(i)
        tree.check_invariants()
        assert tree.height == 1


class TestSampling:
    def test_weighted_distribution(self):
        tree = build_tree([(1, 1.0), (2, 3.0), (3, 6.0)], capacity=4)
        r = random.Random(11)
        counts = {1: 0, 2: 0, 3: 0}
        n = 30000
        for _ in range(n):
            counts[tree.sample(r)] += 1
        assert counts[1] / n == pytest.approx(0.1, abs=0.02)
        assert counts[2] / n == pytest.approx(0.3, abs=0.02)
        assert counts[3] / n == pytest.approx(0.6, abs=0.02)

    def test_weighted_distribution_multilevel(self):
        """Sampling across internal CSTables + leaf FSTables (paper §V-C)."""
        weights = {v: 0.5 + (v % 7) for v in range(200)}
        tree = build_tree(list(weights.items()), capacity=8)
        assert tree.height >= 3
        total = sum(weights.values())
        r = random.Random(12)
        counts = {v: 0 for v in weights}
        n = 60000
        for _ in range(n):
            counts[tree.sample(r)] += 1
        # Aggregate check over weight classes to keep variance low.
        for klass in range(7):
            expect = sum(w for v, w in weights.items() if v % 7 == klass) / total
            got = sum(c for v, c in counts.items() if v % 7 == klass) / n
            assert got == pytest.approx(expect, abs=0.02)

    def test_sample_uniform(self):
        tree = build_tree([(1, 100.0), (2, 0.5)], capacity=4)
        r = random.Random(13)
        ones = sum(tree.sample_uniform(r) == 1 for _ in range(10000))
        assert ones / 10000 == pytest.approx(0.5, abs=0.03)

    def test_sample_empty_raises(self):
        tree = build_tree([])
        with pytest.raises(EmptyStructureError):
            tree.sample()
        with pytest.raises(EmptyStructureError):
            tree.sample_uniform()
        with pytest.raises(EmptyStructureError):
            tree.sample_many(3)

    def test_sample_many_count(self):
        tree = build_tree([(1, 1.0)])
        assert tree.sample_many(7) == [1] * 7
        with pytest.raises(ConfigurationError):
            tree.sample_many(-1)

    def test_zero_weight_edges_fall_back_to_uniform(self):
        tree = build_tree([(1, 0.0), (2, 0.0)], capacity=4)
        r = random.Random(14)
        seen = {tree.sample(r) for _ in range(100)}
        assert seen == {1, 2}


class TestStats:
    def test_leaf_dominates_updates(self):
        """Table V's mechanism: inserts are leaf ops; internal ops only
        appear on splits, so their share shrinks with capacity."""
        shares = {}
        for capacity in (8, 32, 128):
            stats = OpStats()
            tree = Samtree(SamtreeConfig(capacity=capacity), stats=stats)
            for i in range(2000):
                tree.insert(i, 1.0)
            shares[capacity] = stats.leaf_fraction
        assert shares[8] < shares[32] < shares[128]
        assert shares[128] > 0.98

    def test_stats_merge(self):
        a = OpStats(leaf_ops=3, internal_ops=1)
        b = OpStats(leaf_ops=2, internal_ops=2, merges=1)
        a.merge_from(b)
        assert a.leaf_ops == 5 and a.internal_ops == 3 and a.merges == 1
        a.reset()
        assert a.total_ops == 0 and a.leaf_fraction == 0.0


class TestAlphaAndCompression:
    def test_alpha_variants_store_same_graph(self):
        edges = [(i * 17 % 997, 1.0 + i % 5) for i in range(600)]
        reference = build_tree(edges, capacity=16, alpha=0)
        for alpha in (1, 3, 7):
            tree = build_tree(edges, capacity=16, alpha=alpha)
            tree.check_invariants()
            assert tree.to_dict() == pytest.approx(reference.to_dict())

    def test_compression_transparent(self):
        edges = [((7 << 40) + i, float(i % 9) + 0.1) for i in range(400)]
        plain = build_tree(edges, capacity=16, compress=False)
        comp = build_tree(edges, capacity=16, compress=True)
        comp.check_invariants()
        assert comp.to_dict() == pytest.approx(plain.to_dict())
        assert comp.nbytes() < plain.nbytes()


class TestAccounting:
    def test_nbytes_grows_with_content(self):
        tree = build_tree([], capacity=8)
        empty = tree.nbytes()
        for i in range(100):
            tree.insert(i, 1.0)
        assert tree.nbytes() > empty

    def test_repr(self):
        tree = build_tree([(1, 1.0)])
        assert "Samtree" in repr(tree)

    def test_contains_and_len(self):
        tree = build_tree([(5, 1.0)])
        assert 5 in tree
        assert 6 not in tree
        assert len(tree) == 1
        assert bool(tree)
