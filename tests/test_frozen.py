"""Tests for the frozen-shard read path (repro.core.frozen).

Covers the PR's acceptance criteria:

* chi-square distribution equivalence — the frozen CSC kernels
  (weighted and uniform) sample the same distribution as the samtree
  descent on a *churned* store (insert/update/delete/accumulate mix);
* epoch invalidation — a post-compile mutation forces
  recompile-or-fallback, proven by zero stale reads (a deleted neighbor
  is never drawn, a new one is reachable) under the default staleness
  budget of 0;
* edge cases — empty frontier, missing/zero-degree sources,
  zero-weight edges (never drawn weighted; uniform fallback on
  all-zero rows);
* the multi-hop ``sample_fanouts`` kernel and its self-loop padding,
  plus the ``sample_blocks`` fast path and its automatic fallback;
* the distributed path: ``LocalCluster.freeze_all`` and the
  per-endpoint accounting identity of the ``freeze`` RPC;
* the satellite vectorizations: ``CompressedIDList.to_array`` /
  ``FSTable.to_weight_array`` / ``TreeSnapshot.from_tree`` preallocated
  fills, and the lexsort-built static-CSR baseline.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.baselines.static_csr import StaticCSRStore
from repro.core.compression import CompressedIDList, PlainIDList
from repro.core.fenwick import FSTable
from repro.core.frozen import FrozenShard, FrozenStats
from repro.core.samtree import Samtree, SamtreeConfig
from repro.core.snapshot import TreeSnapshot, coerce_generator, flatten_tree
from repro.core.topology import DynamicGraphStore
from repro.distributed.cluster import LocalCluster
from repro.errors import ConfigurationError
from repro.gnn.samplers import sample_blocks

try:  # scipy is part of the baked toolchain, but degrade gracefully.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    """p-value of a chi-square goodness-of-fit test."""
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    # Wilson–Hilferty normal approximation of the chi-square CDF.
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    return float(0.5 * (1.0 - np.math.erf(z / np.sqrt(2.0))))


def _churned_store(seed: int = 17, capacity: int = 8) -> DynamicGraphStore:
    """A store that has lived: inserts, updates, deletes, accumulates."""
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=capacity, alpha=0))
    for src in range(30):
        for i in range(rng.randrange(3, 25)):
            store.add_edge(src, 1000 + i, (i + 1) ** 1.5)
    for src in range(0, 30, 3):
        store.update_edge(src, 1000, 50.0)
        store.remove_edge(src, 1001)
        store.accumulate_edge(src, 1002, 7.5)
        store.add_edge(src, 2000 + src, rng.random() + 0.5)
    return store


# ---------------------------------------------------------------------------
# satellite vectorizations
# ---------------------------------------------------------------------------
class TestVectorizedDecoders:
    def test_compressed_to_array_round_trip(self):
        rng = random.Random(3)
        for base in (0, 1 << 33, (1 << 62) - 500):
            ids = [base + rng.randrange(1 << 16) for _ in range(50)]
            lst = CompressedIDList(ids)
            np.testing.assert_array_equal(
                lst.to_array(), np.asarray(lst.to_list(), dtype=np.int64)
            )

    def test_to_array_empty_and_plain(self):
        assert CompressedIDList().to_array().size == 0
        plain = PlainIDList([5, 9, 2])
        np.testing.assert_array_equal(plain.to_array(), [5, 9, 2])
        assert plain.to_array().dtype == np.int64

    def test_to_array_matches_after_mutation(self):
        lst = CompressedIDList([10, 11, 12])
        lst.append((1 << 40) + 3)  # breaks the prefix, forces repack
        lst.swap_delete(0)
        np.testing.assert_array_equal(
            lst.to_array(), np.asarray(lst.to_list(), dtype=np.int64)
        )

    def test_fstable_to_weight_array_matches_scalar(self):
        rng = random.Random(5)
        for n in (0, 1, 2, 7, 8, 63, 100):
            weights = [rng.random() * 10 for _ in range(n)]
            table = FSTable(weights)
            vec = table.to_weight_array()
            assert vec.dtype == np.float64
            np.testing.assert_allclose(
                vec, table.to_weights(), rtol=1e-12, atol=1e-12
            )
            assert (vec >= 0.0).all()

    def test_from_tree_preallocated_matches_tree(self):
        tree = Samtree(SamtreeConfig(capacity=8, alpha=0))
        rng = random.Random(11)
        for i in range(60):
            tree.insert(7_000_000_000 + i, rng.random() * 5)
        snap = TreeSnapshot.from_tree(tree)
        ids, weights = flatten_tree(tree)
        assert snap.degree == tree.degree
        assert dict(zip(ids.tolist(), weights.tolist())) == pytest.approx(
            dict(tree.items())
        )
        assert snap.total_weight == pytest.approx(tree.total_weight)


class TestStaticCSRVectorized:
    def test_rows_stay_dst_sorted_and_weights_align(self):
        store = StaticCSRStore()
        rng = random.Random(23)
        expected = {}
        for _ in range(300):
            s, d = rng.randrange(20), rng.randrange(50)
            w = rng.random() + 0.1
            store.add_edge(s, d, w)
            expected[(s, d)] = w
        for s in range(20):
            row = store.neighbors(s)
            dsts = [d for d, _ in row]
            assert dsts == sorted(dsts)
            for d, w in row:
                assert w == pytest.approx(expected[(s, d)])
                assert store.edge_weight(s, d) == pytest.approx(w)

    def test_multi_etype_and_empty_relation(self):
        store = StaticCSRStore()
        store.add_edge(1, 2, 1.0, etype=0)
        store.add_edge(1, 3, 2.0, etype=5)
        assert store.neighbors(1, etype=5) == [(3, 2.0)]
        assert store.sample_neighbors(1, 4, rng=1, etype=5) == [3, 3, 3, 3]


# ---------------------------------------------------------------------------
# compilation & directory
# ---------------------------------------------------------------------------
class TestFrozenCompile:
    def test_compile_matches_store_content(self):
        store = _churned_store()
        (shard,) = store.freeze()
        assert shard.num_rows == store.num_sources
        assert shard.num_edges == store.num_edges
        # Row directory is sorted and complete.
        assert (np.diff(shard.src_ids) > 0).all()
        for src in store.sources():
            row = int(shard.lookup_rows(np.asarray([src]))[0])
            assert row >= 0
            lo, hi = int(shard.indptr[row]), int(shard.indptr[row + 1])
            frozen_adj = dict(
                zip(
                    shard.neighbor_ids[lo:hi].tolist(),
                    np.diff(
                        np.concatenate(
                            ([shard.row_base[row]],
                             shard.cum_weights[lo:hi])
                        )
                    ).tolist(),
                )
            )
            assert frozen_adj == pytest.approx(dict(store.neighbors(src)))

    def test_lookup_missing_and_empty_shard(self):
        store = _churned_store()
        (shard,) = store.freeze()
        rows = shard.lookup_rows(np.asarray([-5, 10**9, 0]))
        assert rows[0] == -1 and rows[1] == -1 and rows[2] >= 0
        empty = FrozenShard.compile(DynamicGraphStore(), 0, epoch=0)
        assert empty.num_rows == 0 and empty.num_edges == 0
        assert (empty.lookup_rows(np.asarray([1, 2])) == -1).all()

    def test_freeze_all_etypes_and_thaw(self):
        store = DynamicGraphStore()
        store.add_edge(1, 2, 1.0, etype=0)
        store.add_edge(1, 3, 1.0, etype=4)
        shards = store.freeze()
        assert sorted(s.etype for s in shards) == [0, 4]
        assert store.nbytes_breakdown()["frozen"] > 0
        assert store.thaw() == 2
        assert store.nbytes_breakdown()["frozen"] == 0
        assert store.frozen_stats.thaws == 2

    def test_nbytes_includes_frozen_component(self):
        store = _churned_store()
        before = store.nbytes()
        store.freeze()
        assert store.nbytes() > before
        assert store.nbytes() == sum(store.nbytes_breakdown().values())


# ---------------------------------------------------------------------------
# distribution equivalence (chi-square)
# ---------------------------------------------------------------------------
class TestDistributionEquivalence:
    DRAWS = 60_000

    def _histogram(self, rows, support):
        index = {d: i for i, d in enumerate(support)}
        counts = np.zeros(len(support))
        for row in rows:
            for v in row:
                counts[index[int(v)]] += 1
        return counts

    def test_weighted_matches_descent_on_churned_store(self):
        store = _churned_store()
        src = 0
        adjacency = dict(store.neighbors(src))
        support = sorted(adjacency)
        total = sum(adjacency.values())
        k = 20
        n_batches = self.DRAWS // k

        exact_store = _churned_store()
        exact_store.snapshot_cache = None  # force the ITS/FTS descent
        exact_rows = [
            exact_store.sample_neighbors(src, k, rng=random.Random(i))
            for i in range(n_batches)
        ]

        store.freeze()
        frozen_rows = store.sample_neighbors_many(
            [src] * n_batches, k, rng=99
        )
        assert store.frozen_stats.batches == 1

        expected = np.asarray(
            [self.DRAWS * adjacency[d] / total for d in support]
        )
        for rows in (exact_rows, frozen_rows):
            p = _chi2_pvalue(self._histogram(rows, support), expected)
            assert p > 0.01

    def test_uniform_matches_expectation(self):
        store = _churned_store()
        src = 3
        support = sorted(d for d, _ in store.neighbors(src))
        store.freeze()
        k = 20
        n_batches = self.DRAWS // k
        rows = store.sample_neighbors_uniform_many(
            [src] * n_batches, k, rng=42
        )
        expected = np.full(len(support), self.DRAWS / len(support))
        assert _chi2_pvalue(self._histogram(rows, support), expected) > 0.01

    def test_zero_weight_edge_never_drawn_weighted(self):
        store = DynamicGraphStore()
        store.add_edge(1, 10, 0.0)
        store.add_edge(1, 11, 2.0)
        store.add_edge(1, 12, 1.0)
        store.freeze()
        rows = store.sample_neighbors_many([1] * 200, 10, rng=5)
        drawn = {int(v) for row in rows for v in row}
        assert 10 not in drawn
        assert drawn == {11, 12}

    def test_all_zero_weights_fall_back_to_uniform(self):
        store = DynamicGraphStore()
        for d in range(5):
            store.add_edge(1, 100 + d, 0.0)
        store.freeze()
        rows = store.sample_neighbors_many([1] * 600, 10, rng=5)
        counts = np.zeros(5)
        for row in rows:
            for v in row:
                counts[int(v) - 100] += 1
        assert counts.sum() == 6000
        assert _chi2_pvalue(counts, np.full(5, 1200.0)) > 0.01


# ---------------------------------------------------------------------------
# epoch coherence
# ---------------------------------------------------------------------------
class TestEpochInvalidation:
    def test_every_mutation_path_bumps_the_epoch(self):
        store = DynamicGraphStore()
        epoch = store.mutation_epoch
        for mutate in (
            lambda: store.add_edge(1, 2, 1.0),
            lambda: store.accumulate_edge(1, 2, 0.5),
            lambda: store.update_edge(1, 2, 3.0),
            lambda: store.remove_edge(1, 2),
            lambda: store.apply_source_batch(1, 0, [("insert", 9, 1.0)]),
            lambda: store.bulk_load([5, 5], [1, 2], 1.0),
        ):
            mutate()
            assert store.mutation_epoch > epoch
            epoch = store.mutation_epoch

    def test_no_stale_reads_after_mutation(self):
        store = DynamicGraphStore()
        store.add_edge(1, 10, 1.0)
        store.freeze()
        store.remove_edge(1, 10)
        store.add_edge(1, 20, 1.0)
        rows = store.sample_neighbors_many([1] * 50, 8, rng=3)
        drawn = {int(v) for row in rows for v in row}
        assert drawn == {20}  # the deleted neighbor is never served
        assert store.frozen_stats.stale_misses >= 1
        # The frontier fell back to the live path, not the frozen kernel.
        assert store.frozen_stats.batches == 0

    def test_staleness_budget_tolerates_bounded_drift(self):
        store = DynamicGraphStore()
        store.add_edge(1, 10, 1.0)
        store.freeze()
        store.frozen_staleness_budget = 2
        store.add_edge(1, 11, 1.0)  # drift 1 <= budget: still frozen
        rows = store.sample_neighbors_many([1], 4, rng=0)
        assert store.frozen_stats.batches == 1
        assert {int(v) for v in rows[0]} == {10}  # stale by design
        store.add_edge(1, 12, 1.0)
        store.add_edge(1, 13, 1.0)  # drift 3 > budget: refused
        store.sample_neighbors_many([1], 4, rng=0)
        assert store.frozen_stats.stale_misses == 1
        assert store.frozen_stats.batches == 1

    def test_auto_refreeze_recompiles_on_demand(self):
        store = DynamicGraphStore()
        store.add_edge(1, 10, 1.0)
        store.freeze()
        store.frozen_auto_refreeze = True
        store.add_edge(1, 30, 1000.0)
        rows = store.sample_neighbors_many([1] * 20, 10, rng=8)
        assert store.frozen_stats.refreezes == 1
        assert store.frozen_stats.compiles == 2
        assert 30 in {int(v) for row in rows for v in row}

    def test_explicit_refreeze_restores_the_fast_path(self):
        store = _churned_store()
        store.freeze()
        store.add_edge(0, 9999, 1.0)
        store.sample_neighbors_many([0], 4, rng=1)
        assert store.frozen_stats.batches == 0
        store.freeze()
        store.sample_neighbors_many([0], 4, rng=1)
        assert store.frozen_stats.batches == 1


# ---------------------------------------------------------------------------
# edge cases & kernels
# ---------------------------------------------------------------------------
class TestKernelEdgeCases:
    def test_empty_frontier(self):
        store = _churned_store()
        store.freeze()
        assert store.sample_neighbors_many([], 5, rng=1) == []
        levels = store.sample_fanouts([], [3, 2], rng=1)
        assert [int(l.size) for l in levels] == [0, 0, 0]

    def test_missing_source_gets_empty_row(self):
        store = _churned_store()
        store.freeze()
        rows = store.sample_neighbors_many([0, 10**8], 5, rng=1)
        assert len(rows[0]) == 5
        assert len(rows[1]) == 0
        assert store.frozen_stats.missing_vertices == 1

    def test_sample_fanouts_shapes_and_membership(self):
        store = _churned_store()
        store.freeze()
        seeds = [0, 3, 6, 10**8]  # last one has no adjacency
        levels = store.sample_fanouts(seeds, [4, 3], rng=2)
        assert [int(l.size) for l in levels] == [4, 16, 48]
        # Missing seed rows are padded with the seed itself.
        assert set(levels[1][12:16].tolist()) == {10**8}
        # Every sampled vertex is a neighbor of its parent (or the
        # parent itself via self-loop padding).
        parents = np.repeat(levels[0], 4)
        for parent, child in zip(parents.tolist(), levels[1].tolist()):
            neighbors = {d for d, _ in store.neighbors(parent)}
            assert child in neighbors or child == parent

    def test_sample_fanouts_returns_none_when_not_frozen(self):
        store = _churned_store()
        assert store.sample_fanouts([0], [2]) is None
        store.freeze()
        store.add_edge(0, 777, 1.0)  # stale again
        assert store.sample_fanouts([0], [2]) is None

    def test_invalid_fanout_raises(self):
        store = _churned_store()
        (shard,) = store.freeze()
        with pytest.raises(ConfigurationError):
            shard.sample_fanouts([0], [0], coerce_generator(1))
        with pytest.raises(ConfigurationError):
            shard.sample_matrix([0], -1, coerce_generator(1))

    def test_stats_reset_and_to_dict(self):
        stats = FrozenStats()
        stats.batches = 5
        assert stats.to_dict()["batches"] == 5
        stats.reset()
        assert all(v == 0 for v in stats.to_dict().values())


# ---------------------------------------------------------------------------
# sampler integration
# ---------------------------------------------------------------------------
class TestSamplerFastPath:
    def test_sample_blocks_uses_frozen_path(self):
        store = _churned_store()
        store.freeze()
        blocks = sample_blocks(store, [0, 3, 6], [4, 3], rng=9)
        assert store.frozen_stats.hops == 2
        assert blocks.batch_size == 3
        assert [int(l.size) for l in blocks.levels] == [3, 12, 36]

    def test_sample_blocks_falls_back_when_stale(self):
        store = _churned_store()
        store.freeze()
        store.add_edge(0, 424242, 0.5)
        blocks = sample_blocks(store, [0, 3], [2, 2], rng=9)
        assert store.frozen_stats.hops == 0  # frozen path refused
        assert [int(l.size) for l in blocks.levels] == [2, 4, 8]


# ---------------------------------------------------------------------------
# distributed path
# ---------------------------------------------------------------------------
class TestDistributedFreeze:
    def _loaded_cluster(self, **kwargs) -> LocalCluster:
        cluster = LocalCluster(num_servers=3, **kwargs)
        rng = random.Random(31)
        for src in range(40):
            for _ in range(rng.randrange(2, 10)):
                cluster.client.add_edge(
                    src, 500 + rng.randrange(300), rng.random() + 0.1
                )
        return cluster

    def test_freeze_all_serves_frozen_reads(self):
        cluster = self._loaded_cluster()
        compiled = cluster.freeze_all()
        assert compiled == 3
        frontier = list(range(40)) * 5
        rows = cluster.client.sample_neighbors_many(frontier, 6, rng=4)
        assert len(rows) == len(frontier)
        assert all(len(row) == 6 for row in rows)
        served = sum(
            s.store.frozen_stats.batches for s in cluster.servers
        )
        assert served == 3  # one frozen batch per shard RPC
        for server in cluster.servers:
            st = server.stats
            assert st.requests == st.refused_requests + (
                st.update_requests
                + st.ingest_requests
                + st.sample_requests
                + st.attribute_requests
            )

    def test_write_after_freeze_falls_back_per_shard(self):
        cluster = self._loaded_cluster()
        cluster.freeze_all()
        cluster.client.add_edge(0, 999999, 1.0)  # dirties one shard
        frontier = list(range(40))
        rows = cluster.client.sample_neighbors_many(frontier, 4, rng=4)
        assert all(len(row) == 4 for row in rows)
        stale = sum(
            s.store.frozen_stats.stale_misses for s in cluster.servers
        )
        assert stale == 1  # only the written shard fell back
        drawn = {
            int(v)
            for row in cluster.client.sample_neighbors_many([0], 64, rng=1)
            for v in row
        }
        assert 999999 in drawn or len(drawn) > 0  # fresh state reachable

    def test_reset_stats_clears_frozen_counters(self):
        cluster = self._loaded_cluster()
        cluster.freeze_all()
        cluster.client.sample_neighbors_many([0, 1, 2], 3, rng=0)
        assert any(
            s.store.frozen_stats.batches for s in cluster.servers
        )
        cluster.reset_stats()
        assert all(
            s.store.frozen_stats.batches == 0 for s in cluster.servers
        )

    def test_registry_exports_frozen_views(self):
        cluster = self._loaded_cluster()
        cluster.freeze_all()
        cluster.client.sample_neighbors_many(list(range(10)), 3, rng=0)
        scalars = cluster.registry.snapshot().to_dict()["scalars"]
        assert any(k.startswith("repro_frozen_compiles") for k in scalars)
        assert any(k.startswith("repro_frozen_batches") for k in scalars)


# ---------------------------------------------------------------------------
# doctor integration
# ---------------------------------------------------------------------------
class TestDoctorFrozenSection:
    def test_report_carries_frozen_occupancy(self):
        from repro.obs.doctor import diagnose_store

        store = _churned_store()
        store.freeze()
        store.add_edge(0, 31337, 1.0)
        report = diagnose_store(store)
        payload = report.to_dict()
        assert payload["frozen"]["shards"] == 1
        assert payload["frozen"]["rows"] == store.num_sources
        assert payload["frozen"]["max_epoch_drift"] >= 1
        assert report.total_bytes == store.nbytes()
        assert "frozen shards: 1" in report.render()
        reg = report.to_registry().snapshot().to_dict()["scalars"]
        assert any(k.startswith("repro_doctor_frozen_shards") for k in reg)
