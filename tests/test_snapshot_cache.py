"""Tests for the batched read path: flat snapshots + the bounded cache.

Covers the PR's acceptance criteria:

* chi-square distribution equivalence — the vectorized snapshot draw and
  the exact ITS/FTS tree descent sample the *same* distribution on
  skewed weights (p > 0.01 for both against the analytic expectation);
* coherence — every mutation path (single-edge insert/update/delete,
  ``accumulate_edge``, ``apply_source_batch`` → PALM tree-batch) bumps
  the samtree version and invalidates the cached snapshot, proven by an
  interleaved update/sample workload;
* LRU eviction under a byte budget, with MRU retention;
* seed reproducibility of the mixed batched/exact read path.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.memory import DEFAULT_MEMORY_MODEL
from repro.core.samtree import Samtree, SamtreeConfig
from repro.core.snapshot import (
    SnapshotCache,
    TreeSnapshot,
    coerce_generator,
    coerce_scalar_rng,
    resolve_rngs,
)
from repro.core.topology import DynamicGraphStore
from repro.core.tree_batch import apply_tree_batch
from repro.errors import ConfigurationError, EmptyStructureError

try:  # scipy is part of the baked toolchain, but degrade gracefully.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    """p-value of a chi-square goodness-of-fit test."""
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    # Wilson–Hilferty normal approximation of the chi-square CDF.
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    return float(0.5 * (1.0 - np.math.erf(z / np.sqrt(2.0))))


def _skewed_tree(n: int = 40, capacity: int = 8) -> Samtree:
    """A multi-leaf samtree with heavily skewed (power-law-ish) weights."""
    tree = Samtree(SamtreeConfig(capacity=capacity, alpha=0))
    for i in range(n):
        tree.insert(100 + i, (i + 1) ** 1.8)
    return tree


# ---------------------------------------------------------------------------
# RNG plumbing
# ---------------------------------------------------------------------------
class TestRNGHelpers:
    def test_int_seed_is_deterministic(self):
        a = coerce_scalar_rng(7).random()
        b = coerce_scalar_rng(7).random()
        assert a == b
        ga = coerce_generator(7).random()
        gb = coerce_generator(7).random()
        assert ga == gb

    def test_passthrough(self):
        r = random.Random(1)
        assert coerce_scalar_rng(r) is r
        g = np.random.default_rng(1)
        assert coerce_generator(g) is g
        assert coerce_scalar_rng(None) is None

    def test_cross_coercion_is_deterministic(self):
        # Generator -> Random and Random -> Generator are pure functions
        # of the source state.
        a = coerce_scalar_rng(np.random.default_rng(3)).random()
        b = coerce_scalar_rng(np.random.default_rng(3)).random()
        assert a == b
        c = coerce_generator(random.Random(3)).random()
        d = coerce_generator(random.Random(3)).random()
        assert c == d

    def test_resolve_pair_from_one_seed(self):
        s1, g1 = resolve_rngs(42)
        s2, g2 = resolve_rngs(42)
        assert s1.random() == s2.random()
        assert g1.random() == g2.random()

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            coerce_scalar_rng("not an rng")
        with pytest.raises(ConfigurationError):
            coerce_generator(3.14)
        with pytest.raises(ConfigurationError):
            resolve_rngs(object())


# ---------------------------------------------------------------------------
# TreeSnapshot
# ---------------------------------------------------------------------------
class TestTreeSnapshot:
    def test_from_tree_matches_tree_contents(self):
        tree = _skewed_tree(25)
        snap = TreeSnapshot.from_tree(tree)
        assert snap.degree == tree.degree == 25
        assert snap.version == tree.version
        assert sorted(snap.neighbor_ids.tolist()) == sorted(
            v for v, _ in tree.items()
        )
        assert snap.total_weight == pytest.approx(tree.total_weight)

    def test_membership_of_draws(self, nprng):
        tree = _skewed_tree(30)
        snap = TreeSnapshot.from_tree(tree)
        valid = {v for v, _ in tree.items()}
        out = snap.sample_matrix(4, 16, nprng)
        assert out.shape == (4, 16)
        assert set(out.reshape(-1).tolist()) <= valid
        uni = snap.sample_uniform_matrix(4, 16, nprng)
        assert set(uni.reshape(-1).tolist()) <= valid

    def test_zero_weight_neighbor_never_sampled(self, nprng):
        snap = TreeSnapshot.from_arrays([1, 2, 3], [1.0, 0.0, 1.0])
        draws = snap.sample(4000, nprng)
        assert 2 not in set(draws.tolist())

    def test_all_zero_weights_fall_back_to_uniform(self, nprng):
        snap = TreeSnapshot.from_arrays([5, 6], [0.0, 0.0])
        draws = set(snap.sample(500, nprng).tolist())
        assert draws == {5, 6}

    def test_empty_snapshot_raises(self, nprng):
        snap = TreeSnapshot.from_arrays([], [])
        with pytest.raises(EmptyStructureError):
            snap.sample(3, nprng)
        with pytest.raises(EmptyStructureError):
            snap.sample_uniform_matrix(1, 3, nprng)

    def test_negative_shape_rejected(self, nprng):
        snap = TreeSnapshot.from_arrays([1], [1.0])
        with pytest.raises(ConfigurationError):
            snap.sample_matrix(-1, 2, nprng)
        with pytest.raises(ConfigurationError):
            snap.sample_uniform_matrix(1, -2, nprng)

    def test_nbytes_uses_memory_model(self):
        snap = TreeSnapshot.from_arrays(range(10), [1.0] * 10)
        model = DEFAULT_MEMORY_MODEL
        assert snap.nbytes(model) == 10 * (model.id_bytes + model.weight_bytes)


# ---------------------------------------------------------------------------
# distribution equivalence (acceptance criterion: p > 0.01)
# ---------------------------------------------------------------------------
class TestDistributionEquivalence:
    N_DRAWS = 60_000

    def _frequencies(self, draws, ids):
        index = {v: i for i, v in enumerate(ids)}
        counts = np.zeros(len(ids), dtype=np.int64)
        for d in draws:
            counts[index[int(d)]] += 1
        return counts

    def test_snapshot_matches_exact_on_skewed_weights(self):
        tree = _skewed_tree(24)
        ids = [v for v, _ in tree.items()]
        weights = np.array([w for _, w in tree.items()], dtype=np.float64)
        expected = self.N_DRAWS * weights / weights.sum()

        snap = TreeSnapshot.from_tree(tree)
        snap_draws = snap.sample(self.N_DRAWS, np.random.default_rng(11))
        exact_draws = tree.sample_many(self.N_DRAWS, random.Random(11))

        p_snap = _chi2_pvalue(self._frequencies(snap_draws, ids), expected)
        p_exact = _chi2_pvalue(self._frequencies(exact_draws, ids), expected)
        # Both read paths must be indistinguishable from the analytic
        # weighted distribution.
        assert p_snap > 0.01, f"snapshot path diverges (p={p_snap:.4g})"
        assert p_exact > 0.01, f"exact path diverges (p={p_exact:.4g})"

    def test_store_batched_path_matches_weights(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=8, alpha=0))
        weights = {10: 1.0, 11: 4.0, 12: 15.0, 13: 40.0}
        for dst, w in weights.items():
            store.add_edge(1, dst, w)
        n = 20_000
        rows = store.sample_neighbors_many([1] * 40, n // 40, rng=5)
        draws = [int(v) for row in rows for v in row]
        ids = sorted(weights)
        total = sum(weights.values())
        expected = [n * weights[v] / total for v in ids]
        observed = self._frequencies(draws, ids)
        p = _chi2_pvalue(observed, expected)
        assert p > 0.01, f"store batched path diverges (p={p:.4g})"

    def test_uniform_batched_path_is_uniform(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=8, alpha=0))
        for dst in range(20, 28):
            store.add_edge(2, dst, float(dst))  # skewed weights, ignored
        n = 16_000
        rows = store.sample_neighbors_uniform_many([2] * 16, n // 16, rng=9)
        draws = [int(v) for row in rows for v in row]
        ids = list(range(20, 28))
        observed = self._frequencies(draws, ids)
        p = _chi2_pvalue(observed, [n / len(ids)] * len(ids))
        assert p > 0.01, f"uniform batched path diverges (p={p:.4g})"


# ---------------------------------------------------------------------------
# version counters: every mutation path bumps the epoch
# ---------------------------------------------------------------------------
class TestVersionCounter:
    def test_insert_update_delete_bump(self):
        tree = Samtree(SamtreeConfig(capacity=8))
        v0 = tree.version
        tree.insert(1, 1.0)
        assert tree.version > v0
        v1 = tree.version
        tree.insert(1, 2.0)  # weight update through the same upsert
        assert tree.version > v1
        v2 = tree.version
        tree.add_weight(1, 0.5)
        assert tree.version > v2
        v3 = tree.version
        tree.delete(1)
        assert tree.version > v3

    def test_failed_delete_does_not_bump(self):
        tree = Samtree(SamtreeConfig(capacity=8))
        tree.insert(1, 1.0)
        v = tree.version
        assert not tree.delete(99)
        assert tree.version == v

    def test_tree_batch_bumps(self):
        tree = Samtree(SamtreeConfig(capacity=8))
        for i in range(6):
            tree.insert(i, 1.0)
        v = tree.version
        apply_tree_batch(
            tree,
            [("insert", 10, 2.0), ("delete", 0, 0.0), ("update", 1, 9.0)],
        )
        assert tree.version > v

    def test_store_mutations_bump_through_every_path(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        store.add_edge(1, 2, 1.0)
        tree = store.tree(1)
        checkpoints = [tree.version]

        store.add_edge(1, 3, 1.0)
        checkpoints.append(tree.version)
        store.update_edge(1, 2, 5.0)
        checkpoints.append(tree.version)
        store.accumulate_edge(1, 3, 1.0)
        checkpoints.append(tree.version)
        store.apply_source_batch(1, 0, [("insert", 4, 1.0)])
        checkpoints.append(tree.version)
        store.remove_edge(1, 4)
        checkpoints.append(tree.version)

        # Strictly increasing at every step.
        assert all(b > a for a, b in zip(checkpoints, checkpoints[1:]))


# ---------------------------------------------------------------------------
# cache coherence under interleaved update/sample
# ---------------------------------------------------------------------------
class TestCacheInvalidation:
    def _warm_store(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=8, alpha=0))
        for dst in range(100, 130):
            store.add_edge(7, dst, 1.0)
        # First batched read builds the snapshot.
        store.sample_neighbors_many([7] * 4, 8, rng=1)
        cache = store.snapshot_cache
        assert (0, 7) in cache
        assert cache.stats.builds == 1
        return store, cache

    def test_single_edge_mutation_invalidates(self):
        store, cache = self._warm_store()
        store.remove_edge(7, 100)
        # Post-mutation read: stale entry dropped, exact path serves it.
        rows = store.sample_neighbors_many([7] * 6, 64, rng=2)
        assert cache.stats.invalidations == 1
        assert cache.stats.exact_fallbacks >= 1
        assert (0, 7) not in cache
        drawn = {int(v) for row in rows for v in row}
        assert 100 not in drawn  # deleted neighbor can never be sampled

    def test_probation_then_readmission(self):
        store, cache = self._warm_store()
        store.update_edge(7, 101, 50.0)
        store.sample_neighbors_many([7], 4, rng=3)  # exact (probation)
        builds_before = cache.stats.builds
        store.sample_neighbors_many([7], 4, rng=4)  # quiet read: rebuild
        assert cache.stats.builds == builds_before + 1
        assert (0, 7) in cache
        # Readmitted snapshot reflects the post-update weights.
        snap = cache.get((0, 7), store.tree(7))
        assert snap.total_weight == pytest.approx(store.tree(7).total_weight)

    def test_write_hot_tree_never_rebuilds(self):
        store, cache = self._warm_store()
        builds_before = cache.stats.builds
        for i in range(10):  # mutate between every read
            store.update_edge(7, 100 + (i % 20), float(i + 2))
            store.sample_neighbors_many([7], 4, rng=i)
        # The mutate/sample interleave stays on the exact path throughout.
        assert cache.stats.builds == builds_before
        assert cache.stats.exact_fallbacks >= 10

    def test_tree_batch_mutation_invalidates(self):
        store, cache = self._warm_store()
        store.apply_source_batch(
            7, 0, [("delete", 100, 0.0), ("insert", 500, 100.0)]
        )
        rows = store.sample_neighbors_many([7] * 4, 128, rng=5)
        assert cache.stats.invalidations == 1
        drawn = {int(v) for row in rows for v in row}
        assert 100 not in drawn
        assert 500 in drawn  # dominant new neighbor shows up immediately

    def test_uniform_path_shares_coherence(self):
        store, cache = self._warm_store()
        store.remove_edge(7, 129)
        rows = store.sample_neighbors_uniform_many([7] * 4, 64, rng=6)
        drawn = {int(v) for row in rows for v in row}
        assert 129 not in drawn

    def test_cache_disabled_store_still_correct(self):
        store = DynamicGraphStore(
            SamtreeConfig(capacity=8), snapshot_cache=None
        )
        for dst in range(5):
            store.add_edge(1, dst, 1.0)
        rows = store.sample_neighbors_many([1, 2, 1], 4, rng=0)
        assert len(rows) == 3
        assert rows[1] == []
        assert all(0 <= int(v) < 5 for v in rows[0])

    def test_explicit_invalidate_and_clear(self):
        store, cache = self._warm_store()
        assert cache.invalidate((0, 7))
        assert not cache.invalidate((0, 7))
        store.sample_neighbors_many([7], 2, rng=1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.nbytes == 0


# ---------------------------------------------------------------------------
# LRU eviction under a byte budget
# ---------------------------------------------------------------------------
class TestLRUEviction:
    DEG = 16

    def _entry_bytes(self):
        model = DEFAULT_MEMORY_MODEL
        return self.DEG * (model.id_bytes + model.weight_bytes)

    def _store_with_budget(self, n_entries_budget: int):
        cache = SnapshotCache(
            capacity_bytes=n_entries_budget * self._entry_bytes()
        )
        store = DynamicGraphStore(
            SamtreeConfig(capacity=8, alpha=0), snapshot_cache=cache
        )
        for src in range(20):
            for dst in range(self.DEG):
                store.add_edge(src, 1000 + dst, 1.0 + dst)
        return store, cache

    def test_capacity_is_respected_and_lru_evicts(self):
        store, cache = self._store_with_budget(4)
        for src in range(10):
            store.sample_neighbors_many([src], 4, rng=src)
        assert len(cache) == 4
        assert cache.nbytes <= cache.capacity_bytes
        assert cache.stats.evictions == 6
        # The four most recently read sources survive, LRU order.
        assert cache.keys() == [(0, 6), (0, 7), (0, 8), (0, 9)]

    def test_touch_refreshes_recency(self):
        store, cache = self._store_with_budget(3)
        for src in (0, 1, 2):
            store.sample_neighbors_many([src], 4, rng=0)
        store.sample_neighbors_many([0], 4, rng=0)  # touch 0 -> MRU
        store.sample_neighbors_many([3], 4, rng=0)  # evicts 1, not 0
        assert (0, 0) in cache
        assert (0, 1) not in cache
        assert cache.keys() == [(0, 2), (0, 0), (0, 3)]

    def test_oversized_entry_served_uncached(self):
        cache = SnapshotCache(capacity_bytes=8)  # smaller than any entry
        store = DynamicGraphStore(
            SamtreeConfig(capacity=8), snapshot_cache=cache
        )
        for dst in range(12):
            store.add_edge(1, dst, 1.0)
        rows = store.sample_neighbors_many([1] * 3, 5, rng=0)
        assert all(len(r) == 5 for r in rows)
        assert len(cache) == 0 and cache.nbytes == 0

    def test_min_degree_trees_stay_exact(self):
        cache = SnapshotCache(min_degree=10)
        store = DynamicGraphStore(
            SamtreeConfig(capacity=8), snapshot_cache=cache
        )
        for dst in range(5):  # degree 5 < min_degree
            store.add_edge(1, dst, 1.0)
        store.sample_neighbors_many([1] * 3, 4, rng=0)
        assert len(cache) == 0
        assert cache.stats.exact_fallbacks >= 1

    def test_stats_export(self):
        store, cache = self._store_with_budget(2)
        store.sample_neighbors_many([0, 0, 1], 4, rng=0)
        d = cache.stats.to_dict()
        assert d["builds"] == 2
        assert 0.0 <= d["hit_rate"] <= 1.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            SnapshotCache(capacity_bytes=-1)
        with pytest.raises(ConfigurationError):
            SnapshotCache(min_degree=-1)


# ---------------------------------------------------------------------------
# seed reproducibility of the mixed read path
# ---------------------------------------------------------------------------
class TestSeedReproducibility:
    def _build(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=8, alpha=0))
        for src in range(6):
            for dst in range(12):
                store.add_edge(src, 50 + dst, 1.0 + (dst % 4))
        return store

    def test_same_seed_same_batched_samples(self):
        frontier = [0, 1, 0, 2, 3, 3, 4, 5] * 3
        a = self._build().sample_neighbors_many(frontier, 7, rng=1234)
        b = self._build().sample_neighbors_many(frontier, 7, rng=1234)
        assert [[int(v) for v in row] for row in a] == [
            [int(v) for v in row] for row in b
        ]

    def test_same_seed_with_mixed_exact_fallback(self):
        # Mutations put some trees on the exact path; determinism must
        # survive the mix of vectorized and scalar draws.
        def run():
            store = self._build()
            store.sample_neighbors_many([0, 1, 2], 4, rng=7)  # warm
            store.update_edge(1, 50, 9.0)  # tree 1 -> probation
            return store.sample_neighbors_many([0, 1, 1, 2], 5, rng=99)

        a, b = run(), run()
        assert [[int(v) for v in row] for row in a] == [
            [int(v) for v in row] for row in b
        ]

    def test_generator_and_random_seeds_accepted(self):
        store = self._build()
        r1 = store.sample_neighbors_many([0, 1], 4, rng=random.Random(5))
        r2 = store.sample_neighbors_many([0, 1], 4, rng=random.Random(5))
        assert [[int(v) for v in x] for x in r1] == [
            [int(v) for v in x] for x in r2
        ]
        g1 = store.sample_neighbors_many(
            [0, 1], 4, rng=np.random.default_rng(5)
        )
        g2 = store.sample_neighbors_many(
            [0, 1], 4, rng=np.random.default_rng(5)
        )
        assert [[int(v) for v in x] for x in g1] == [
            [int(v) for v in x] for x in g2
        ]
