"""Tests pinning the paper's analytical claims: the complexity rows of
Table II (measured as touched-element counts, not wall time), Theorem 4,
and the Table V leaf-dominance mechanism.
"""

from __future__ import annotations

import random

import pytest

from repro.core.cstable import CSTable
from repro.core.fenwick import FSTable, lsb
from repro.core.samtree import OpStats, Samtree, SamtreeConfig


def fstable_touched_on_add(n: int, i: int) -> int:
    """Number of Fenwick entries an in-place update at ``i`` touches."""
    count = 0
    j = i
    while j < n:
        count += 1
        j += lsb(j + 1)
    return count


class TestTableII:
    """FTS is O(log n) per update; ITS (CSTable) is O(n)."""

    def test_fstable_update_touches_log_entries(self):
        for n in (64, 256, 1024, 4096):
            worst = max(fstable_touched_on_add(n, i) for i in range(n))
            assert worst <= n.bit_length() + 1

    def test_cstable_update_touches_linear_entries(self):
        # Updating index 0 rewrites every entry: the O(n_L) cost.
        for n in (64, 1024):
            table = CSTable([1.0] * n)
            before = list(table._sums)
            table.update(0, 2.0)
            changed = sum(a != b for a, b in zip(before, table._sums))
            assert changed == n

    def test_fstable_append_is_logarithmic(self):
        # Appending at size n reads at most log2(n) children.
        for n in (63, 64, 255, 1023):
            table = FSTable([1.0] * n)
            reads = 0
            k = 0
            while (1 << k) < n + 1:
                x = n - (1 << k)
                if x >= 0 and lsb(x + 1) == (1 << k):
                    reads += 1
                k += 1
            assert reads <= (n + 1).bit_length()
            table.append(1.0)
            assert table.total() == pytest.approx(n + 1.0)

    def test_both_sample_in_logarithmic_probes(self):
        """FTS probes at most ~log2(n) entries (the padded range halves
        every round)."""
        n = 1000
        table = FSTable([1.0] * n)
        m = 1
        while m < n:
            m <<= 1
        assert m.bit_length() <= 11  # 1024 → at most ~10 probes


class TestTheorem4:
    def test_subtree_sum_property(self):
        r = random.Random(0)
        weights = [r.random() for _ in range(130)]
        table = FSTable(weights)
        for k in range(1, 8):
            i = (1 << k) - 1
            if i < len(weights):
                assert table.entry(i) == pytest.approx(sum(weights[: i + 1]))


class TestTableV:
    """>98 % of structural updates hit leaf nodes at every capacity."""

    @pytest.mark.parametrize("capacity", [64, 128, 256])
    def test_leaf_dominance(self, capacity):
        stats = OpStats()
        tree = Samtree(SamtreeConfig(capacity=capacity), stats=stats)
        r = random.Random(capacity)
        for _ in range(20_000):
            tree.insert(r.randrange(1_000_000), r.random())
        assert stats.leaf_fraction > 0.95
        if capacity >= 128:
            assert stats.leaf_fraction > 0.98

    def test_fraction_grows_with_capacity(self):
        fractions = []
        for capacity in (16, 64, 256):
            stats = OpStats()
            tree = Samtree(SamtreeConfig(capacity=capacity), stats=stats)
            r = random.Random(7)
            for _ in range(8_000):
                tree.insert(r.randrange(500_000), 1.0)
            fractions.append(stats.leaf_fraction)
        assert fractions == sorted(fractions)


class TestRemarkOccupancy:
    def test_split_halves_at_least_half_minus_alpha(self):
        """Paper remark: after α-Split each node holds ≥ c/2 − α entries."""
        for alpha in (0, 2, 8):
            config = SamtreeConfig(capacity=16, alpha=alpha)
            tree = Samtree(config)
            r = random.Random(alpha)
            for _ in range(3000):
                tree.insert(r.randrange(100_000), 1.0)
            tree.check_invariants()
            floor = config.leaf_min_fill
            for leaf in tree._leaves():
                # Leaves shrink below the floor only via deletions, and
                # we did none; splits must respect the bound.
                assert leaf.size >= min(floor, tree.degree)
