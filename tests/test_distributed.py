"""Tests for the distributed layer: partitioner, servers, client, cluster."""

from __future__ import annotations

import random

import pytest

from repro.baselines.platogl import PlatoGLStore
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.distributed import (
    GraphClient,
    GraphServer,
    HashBySourcePartitioner,
    LocalCluster,
    NetworkModel,
    splitmix64,
)
from repro.errors import ConfigurationError, PartitionError


class TestPartitioner:
    def test_deterministic(self):
        p = HashBySourcePartitioner(8)
        assert p.shard_for(12345) == p.shard_for(12345)
        assert p.shards_for([1, 2]) == [p.shard_for(1), p.shard_for(2)]

    def test_range(self):
        p = HashBySourcePartitioner(5)
        assert all(0 <= p.shard_for(i) < 5 for i in range(1000))

    def test_roughly_balanced(self):
        p = HashBySourcePartitioner(4)
        counts = [0] * 4
        for i in range(8000):
            counts[p.shard_for(i)] += 1
        assert min(counts) > 1500

    def test_splitmix_mixes(self):
        outs = {splitmix64(i) & 0xFF for i in range(64)}
        assert len(outs) > 40  # consecutive inputs spread widely

    def test_validation(self):
        with pytest.raises(PartitionError):
            HashBySourcePartitioner(0)


class TestNetworkModel:
    def test_cost_accounting(self):
        net = NetworkModel(latency_seconds=1e-3, bandwidth_bytes_per_second=1e6)
        cost = net.send(1000)
        assert cost == pytest.approx(1e-3 + 1e-3)
        assert net.stats.messages == 1
        assert net.stats.payload_bytes == 1000
        net.stats.reset()
        assert net.stats.messages == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(latency_seconds=-1)
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth_bytes_per_second=0)


class TestClientRouting:
    def make(self, shards=4, network=None):
        part = HashBySourcePartitioner(shards)
        servers = [GraphServer(i, config=SamtreeConfig(capacity=8)) for i in range(shards)]
        return GraphClient(servers, part, network), servers, part

    def test_shard_count_must_match(self):
        part = HashBySourcePartitioner(3)
        with pytest.raises(PartitionError):
            GraphClient([GraphServer(0)], part)

    def test_edges_land_on_owner_shard(self):
        client, servers, part = self.make()
        for src in range(40):
            client.add_edge(src, src + 1000, 1.0)
        for src in range(40):
            owner = part.shard_for(src)
            assert servers[owner].store.degree(src) == 1
            for i, s in enumerate(servers):
                if i != owner:
                    assert s.store.degree(src) == 0

    def test_store_api_via_client(self):
        client, _, _ = self.make()
        assert client.add_edge(1, 2, 0.5) is True
        assert client.edge_weight(1, 2) == pytest.approx(0.5)
        assert client.update_edge(1, 2, 0.9) is True
        assert client.degree(1) == 1
        assert client.has_edge(1, 2)
        assert client.remove_edge(1, 2) is True
        assert client.num_edges == 0

    def test_apply_batch_order_and_outcomes(self):
        client, _, _ = self.make()
        ops = [
            EdgeOp.insert(1, 2, 1.0),
            EdgeOp.insert(9, 2, 1.0),
            EdgeOp.insert(1, 2, 2.0),
            EdgeOp.delete(9, 2),
            EdgeOp.delete(9, 3),
        ]
        outcomes = client.apply_batch(ops)
        assert outcomes == [True, True, False, True, False]
        assert client.num_edges == 1

    def test_batch_sampling_preserves_order(self, rng):
        client, _, _ = self.make()
        for src in range(30):
            client.add_edge(src, src * 10, 1.0)
        srcs = [5, 17, 5, 29]
        rows = client.sample_neighbors_batch(srcs, 3, rng)
        assert rows[0] == [50, 50, 50]
        assert rows[1] == [170, 170, 170]
        assert rows[2] == [50, 50, 50]
        assert rows[3] == [290, 290, 290]

    def test_sources_union(self):
        client, _, _ = self.make()
        for src in range(25):
            client.add_edge(src, 1, 1.0)
        assert sorted(client.sources()) == list(range(25))
        assert client.num_sources == 25

    def test_network_accounting(self):
        net = NetworkModel()
        client, _, _ = self.make(network=net)
        client.apply_batch([EdgeOp.insert(i, 0, 1.0) for i in range(100)])
        assert 1 <= net.stats.messages <= 4  # one message per shard
        client.sample_neighbors_batch(list(range(100)), 5)
        assert net.stats.messages <= 8

    def test_attributes_across_shards(self):
        client, _, _ = self.make()
        client.register_attribute("feat", 3)
        for v in range(20):
            client.put_attribute("feat", v, [float(v)] * 3)
        out = client.gather_attributes("feat", [5, 99, 12])
        assert out.shape == (3, 3)
        assert out[0, 0] == 5.0
        assert out[1].tolist() == [0.0, 0.0, 0.0]
        assert out[2, 2] == 12.0
        assert client.gather_attributes("feat", []).shape == (0, 3)


class TestLocalCluster:
    def test_build_and_stats(self):
        cluster = LocalCluster(num_servers=4, config=SamtreeConfig(capacity=16))
        ops = [EdgeOp.insert(i % 50, i, 1.0) for i in range(500)]
        cluster.client.apply_batch(ops)
        infos = cluster.shard_infos()
        assert len(infos) == 4
        assert sum(i.num_edges for i in infos) == 500
        assert cluster.total_nbytes() == sum(i.nbytes for i in infos)
        cluster.reset_stats()
        assert all(s.stats.ops_applied == 0 for s in cluster.servers)

    def test_store_factory_runs_baselines(self):
        cluster = LocalCluster(num_servers=2, store_factory=PlatoGLStore)
        cluster.client.add_edge(1, 2, 1.0)
        assert cluster.client.num_edges == 1
        assert isinstance(cluster.servers[0].store, PlatoGLStore)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LocalCluster(num_servers=0)
        with pytest.raises(ConfigurationError):
            LocalCluster(num_servers=2, partitioner=HashBySourcePartitioner(3))

    def test_distributed_equals_local(self):
        """The cluster and a single local store expose the same graph."""
        r = random.Random(5)
        local = DynamicGraphStore(SamtreeConfig(capacity=8))
        cluster = LocalCluster(num_servers=3, config=SamtreeConfig(capacity=8))
        for _ in range(1500):
            src, dst = r.randrange(40), r.randrange(200)
            if r.random() < 0.75:
                w = round(r.random(), 3)
                local.add_edge(src, dst, w)
                cluster.client.add_edge(src, dst, w)
            else:
                local.remove_edge(src, dst)
                cluster.client.remove_edge(src, dst)
        assert cluster.client.num_edges == local.num_edges
        for src in range(40):
            assert dict(cluster.client.neighbors(src)) == pytest.approx(
                dict(local.neighbors(src))
            )
