"""Tests for the command-line interface (python -m repro)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestStats:
    def test_all(self, capsys):
        assert main(["stats", "all"]) == 0
        out = capsys.readouterr().out
        assert "63.30B" in out

    def test_scaled(self, capsys):
        assert main(["stats", "OGBN", "--scale", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Product-Product" in out
        assert "bi-directed total" in out


class TestBuildAndSnapshotRoundtrip:
    def test_build_without_snapshot(self, capsys):
        assert main(["build", "OGBN", "--scale", "20000"]) == 0
        out = capsys.readouterr().out
        assert "modeled memory" in out

    def test_build_baseline(self, capsys):
        assert main(
            ["build", "OGBN", "--scale", "20000", "--system", "PlatoGL"]
        ) == 0
        assert "PlatoGL" in capsys.readouterr().out

    def test_snapshot_pipeline(self, tmp_path, capsys):
        snap = str(tmp_path / "g.pd2g")
        assert main(["build", "OGBN", "--scale", "20000", "--output", snap]) == 0
        assert main(["inspect", snap]) == 0
        out = capsys.readouterr().out
        assert "capacity=256" in out
        assert main(["sample", snap, "--k", "3"]) == 0
        assert "weighted draws" in capsys.readouterr().out
        assert main(["selftest", snap]) == 0
        assert "OK" in capsys.readouterr().out

    def test_snapshot_rejected_for_baselines(self, tmp_path, capsys):
        snap = str(tmp_path / "g.pd2g")
        rc = main(
            [
                "build", "OGBN", "--scale", "20000",
                "--system", "AliGraph", "--output", snap,
            ]
        )
        assert rc == 2

    def test_sample_specific_vertex(self, tmp_path, capsys):
        snap = str(tmp_path / "g.pd2g")
        main(["build", "OGBN", "--scale", "20000", "--output", snap])
        capsys.readouterr()
        from repro.storage.checkpoint import load_store

        src = next(iter(load_store(snap).sources()))
        assert main(["sample", snap, "--vertex", str(src), "--k", "4"]) == 0
        assert f"vertex {src}" in capsys.readouterr().out
