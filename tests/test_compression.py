"""Tests for CP-IDs dynamic prefix compression (paper §VI-A, Eq. 7)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.compression import (
    ALLOWED_PREFIX_LENGTHS,
    ID_BYTES,
    MAX_ID,
    CompressedIDList,
    PlainIDList,
    common_prefix_length,
    make_id_list,
)
from repro.errors import IndexOutOfRangeError, InvalidWeightError

ids_st = st.lists(
    st.integers(min_value=0, max_value=MAX_ID), min_size=0, max_size=120
)


class TestHelpers:
    def test_common_prefix_length(self):
        a = (0x10).to_bytes(8, "big")
        b = (0x81).to_bytes(8, "big")
        assert common_prefix_length(a, b) == 7  # differ only in last byte
        assert common_prefix_length(a, a) == 8

    def test_allowed_lengths_match_paper(self):
        """m is chosen from {0, 4, 6, 7} bytes (paper §VI-A)."""
        assert set(ALLOWED_PREFIX_LENGTHS) == {0, 4, 6, 7}


class TestCompressedIDList:
    def test_paper_figure_7(self):
        """IDs 0x10, 0x81, 0x2b, 0x5a share 7 zero bytes: z = 7, and the
        compressed size is 1 + 7 + 4*1 = 12 vs 32 uncompressed."""
        ids = [0x10, 0x81, 0x2B, 0x5A]
        comp = CompressedIDList(ids)
        assert comp.prefix_length == 7
        assert comp.to_list() == ids
        assert comp.nbytes() == 1 + 7 + 4 * 1
        assert PlainIDList(ids).nbytes() == 32

    def test_empty(self):
        comp = CompressedIDList()
        assert len(comp) == 0
        assert not comp
        assert comp.to_list() == []
        assert comp.nbytes() == 1

    def test_append_within_prefix(self):
        comp = CompressedIDList([0x1000, 0x1001])
        assert comp.prefix_length == 7  # IDs differ only in the last byte
        comp.append(0x10FF)
        assert comp.prefix_length == 7
        assert comp.to_list() == [0x1000, 0x1001, 0x10FF]

    def test_append_narrows_prefix(self):
        comp = CompressedIDList([0x10000, 0x10001])
        assert comp.prefix_length == 7
        comp.append(0x1FF00)  # shares only 6 leading bytes → repack
        assert comp.prefix_length == 6
        assert comp.to_list() == [0x10000, 0x10001, 0x1FF00]

    def test_append_breaks_prefix(self):
        base = 7 << 40
        comp = CompressedIDList([base + 1, base + 2])
        assert comp.prefix_length >= 4
        comp.append(1)  # shares no high bytes with base
        assert comp.prefix_length == 0
        assert comp.to_list() == [base + 1, base + 2, 1]

    def test_getitem_and_iteration(self):
        ids = [100, 200, 300]
        comp = CompressedIDList(ids)
        assert [comp[i] for i in range(3)] == ids
        assert list(comp) == ids
        with pytest.raises(IndexOutOfRangeError):
            comp[3]

    def test_index_of(self):
        ids = [10, 20, 30, 40]
        comp = CompressedIDList(ids)
        for i, v in enumerate(ids):
            assert comp.index_of(v) == i
        assert comp.index_of(99) is None
        assert 20 in comp
        assert 99 not in comp

    def test_index_of_rejects_unaligned_byte_hits(self):
        """A suffix byte pattern straddling two IDs must not match."""
        # With z = 6 the suffixes are 2 bytes; craft IDs whose adjacent
        # suffix bytes form another ID's suffix at an unaligned offset.
        base = 0xAB << 16
        comp = CompressedIDList([base | 0x0102, base | 0x0304])
        assert comp.prefix_length == 6 or comp.prefix_length == 4
        # 0x0203 spans the boundary between the two stored suffixes.
        assert comp.index_of(base | 0x0203) is None

    def test_set(self):
        comp = CompressedIDList([0x1000, 0x1001])
        comp.set(0, 0x1002)
        assert comp.to_list() == [0x1002, 0x1001]
        comp.set(1, 5)  # prefix break → repack
        assert comp.to_list() == [0x1002, 5]
        with pytest.raises(IndexOutOfRangeError):
            comp.set(9, 1)

    def test_swap_delete(self):
        comp = CompressedIDList([1, 2, 3, 4])
        assert comp.swap_delete(0) == 1
        assert comp.to_list() == [4, 2, 3]
        assert comp.swap_delete(2) == 3
        assert comp.to_list() == [4, 2]
        with pytest.raises(IndexOutOfRangeError):
            comp.swap_delete(5)

    def test_swap_delete_to_empty_resets(self):
        comp = CompressedIDList([42])
        comp.swap_delete(0)
        assert len(comp) == 0
        assert comp.nbytes() == 1

    def test_id_validation(self):
        with pytest.raises(InvalidWeightError):
            CompressedIDList([-1])
        with pytest.raises(InvalidWeightError):
            CompressedIDList([MAX_ID + 1])

    def test_clear(self):
        comp = CompressedIDList([1, 2, 3])
        comp.clear()
        assert len(comp) == 0


class TestPlainIDList:
    def test_same_interface(self):
        plain = PlainIDList([1, 2, 3])
        assert plain.to_list() == [1, 2, 3]
        assert plain.index_of(2) == 1
        assert plain.index_of(9) is None
        assert plain[0] == 1
        plain.set(0, 7)
        assert plain.swap_delete(0) == 7
        assert plain.to_list() == [3, 2]
        assert plain.prefix_length == 0
        assert plain.nbytes() == 2 * ID_BYTES

    def test_factory(self):
        assert isinstance(make_id_list(True), CompressedIDList)
        assert isinstance(make_id_list(False), PlainIDList)


@given(ids_st)
def test_roundtrip_property(ids):
    assert CompressedIDList(ids).to_list() == ids


@given(ids_st)
def test_compression_never_larger(ids):
    """CP-IDs never exceeds the uncompressed footprint (beyond the 1-byte
    header on tiny lists) and matches Equation 7 exactly."""
    comp = CompressedIDList(ids)
    z = comp.prefix_length if ids else 0
    if ids:
        expected = 1 + z + len(ids) * (ID_BYTES - z)
        assert comp.nbytes() == expected
        assert comp.nbytes() <= 1 + ID_BYTES * len(ids)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["append", "set", "delete"]),
            st.integers(min_value=0, max_value=MAX_ID),
            st.integers(min_value=0, max_value=10_000),
        ),
        min_size=1,
        max_size=100,
    )
)
def test_op_sequence_matches_plain(ops):
    """Compressed and plain lists agree under arbitrary op sequences."""
    comp = CompressedIDList()
    plain = PlainIDList()
    for kind, vid, raw in ops:
        if kind == "append" or len(plain) == 0:
            comp.append(vid)
            plain.append(vid)
        elif kind == "set":
            i = raw % len(plain)
            comp.set(i, vid)
            plain.set(i, vid)
        else:
            i = raw % len(plain)
            assert comp.swap_delete(i) == plain.swap_delete(i)
    assert comp.to_list() == plain.to_list()


@given(st.lists(st.integers(min_value=0, max_value=MAX_ID), min_size=1,
                max_size=50, unique=True))
def test_index_of_property(ids):
    comp = CompressedIDList(ids)
    for i, v in enumerate(ids):
        assert comp.index_of(v) == i
