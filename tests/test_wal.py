"""Tests for the per-shard write-ahead log (repro.storage.wal).

Covers the binary record format (roundtrip, torn tails, corruption),
file- and memory-backed logs, and the recovery contract the distributed
tier depends on: replaying a WAL tail over a checkpoint is idempotent —
applying the same tail twice leaves the store byte-for-byte equivalent
to applying it once (last-wins fold semantics of the columnar ingest
path).
"""

from __future__ import annotations

import io
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ingest import OP_DELETE, OP_INSERT, OP_UPDATE, EdgeBatch
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.errors import ConfigurationError, WALCorruptionError
from repro.storage.checkpoint import load_store, save_store
from repro.storage.wal import ShardWAL


def _random_batch(rng: random.Random, n: int, nsrc=40, ndst=100, netype=2):
    src = [rng.randrange(nsrc) for _ in range(n)]
    dst = [rng.randrange(ndst) for _ in range(n)]
    weight = [round(rng.random() * 4 + 0.01, 4) for _ in range(n)]
    etype = [rng.randrange(netype) for _ in range(n)]
    op = [
        rng.choices(
            [OP_INSERT, OP_UPDATE, OP_DELETE], weights=[6, 2, 2]
        )[0]
        for _ in range(n)
    ]
    return EdgeBatch(src, dst, weight, etype, op)


def _adjacency(store: DynamicGraphStore) -> dict:
    out = {}
    for etype in store.etypes():
        for src in store.sources(etype):
            out[(etype, src)] = dict(store.neighbors(src, etype))
    return out


def _assert_adjacency_equal(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for key in a:
        assert b[key] == pytest.approx(a[key]), key


class TestFormatRoundtrip:
    def test_append_replay_roundtrip(self):
        rng = random.Random(3)
        wal = ShardWAL(shard_id=7)
        batches = [_random_batch(rng, n) for n in (1, 17, 230)]
        for b in batches:
            assert wal.append_batch(b) > 0
        replayed = list(wal.replay())
        assert len(replayed) == 3
        for orig, back in zip(batches, replayed):
            np.testing.assert_array_equal(orig.src, back.src)
            np.testing.assert_array_equal(orig.dst, back.dst)
            np.testing.assert_array_equal(orig.weight, back.weight)
            np.testing.assert_array_equal(orig.etype, back.etype)
            np.testing.assert_array_equal(orig.op, back.op)
        assert wal.num_records() == 3
        assert not wal.torn_tail_seen

    def test_empty_batch_appends_nothing(self):
        wal = ShardWAL()
        assert wal.append_batch(EdgeBatch([], [])) == 0
        assert wal.append_ops([]) == 0
        assert wal.num_records() == 0

    def test_append_ops_matches_columnar(self):
        wal = ShardWAL()
        ops = [EdgeOp.insert(1, 2, 0.5), EdgeOp.delete(3, 4, etype=1)]
        wal.append_ops(ops)
        (batch,) = wal.replay()
        assert batch.src.tolist() == [1, 3]
        assert batch.dst.tolist() == [2, 4]
        assert batch.op.tolist() == [OP_INSERT, OP_DELETE]
        assert batch.etype.tolist() == [0, 1]

    def test_truncate_clears(self):
        rng = random.Random(5)
        wal = ShardWAL()
        wal.append_batch(_random_batch(rng, 40))
        wal.truncate()
        assert wal.num_records() == 0
        wal.append_batch(_random_batch(rng, 4))
        assert wal.num_records() == 1

    def test_file_backed_survives_reopen(self, tmp_path):
        rng = random.Random(9)
        path = str(tmp_path / "shard0.wal")
        wal = ShardWAL(path, shard_id=0)
        wal.append_batch(_random_batch(rng, 25))
        wal.append_batch(_random_batch(rng, 12))
        reopened = ShardWAL(path, shard_id=0)
        assert reopened.num_records() == 2

    def test_shard_id_mismatch_refused(self, tmp_path):
        path = str(tmp_path / "shard3.wal")
        wal = ShardWAL(path, shard_id=3)
        wal.append_batch(_random_batch(random.Random(0), 5))
        with pytest.raises(ConfigurationError):
            ShardWAL(path, shard_id=4)

    def test_garbage_header_refused(self, tmp_path):
        path = str(tmp_path / "junk.wal")
        with open(path, "wb") as f:
            f.write(b"definitely not a wal")
        with pytest.raises(ConfigurationError):
            ShardWAL(path, shard_id=0)


class TestTornTailAndCorruption:
    def _wal_with_records(self, k=3, n=50):
        rng = random.Random(21)
        wal = ShardWAL(shard_id=1)
        for _ in range(k):
            wal.append_batch(_random_batch(rng, n))
        return wal

    def test_torn_tail_tolerated(self):
        wal = self._wal_with_records(3)
        data = wal._buf.getvalue()
        torn = ShardWAL(shard_id=1)
        torn._buf = io.BytesIO(data[:-17])  # cut the last record short
        replayed = list(torn.replay())
        assert len(replayed) == 2
        assert torn.torn_tail_seen

    def test_torn_mid_header_tolerated(self):
        wal = self._wal_with_records(1, n=10)
        data = wal._buf.getvalue()
        torn = ShardWAL(shard_id=1)
        torn._buf = io.BytesIO(data + data[16:20])  # header fragment
        assert len(list(torn.replay())) == 1
        assert torn.torn_tail_seen

    def test_mid_file_corruption_raises(self):
        wal = self._wal_with_records(3, n=40)
        data = bytearray(wal._buf.getvalue())
        data[40] ^= 0xFF  # flip a byte inside the first record's payload
        bad = ShardWAL(shard_id=1)
        bad._buf = io.BytesIO(bytes(data))
        with pytest.raises(WALCorruptionError):
            list(bad.replay())


class TestReplayRecovery:
    def test_checkpoint_plus_tail_equals_direct(self):
        """checkpoint + WAL-tail replay reconstructs the live store."""
        rng = random.Random(77)
        config = SamtreeConfig(capacity=8)
        live = DynamicGraphStore(config)
        wal = ShardWAL(shard_id=0)
        checkpoint = None
        for step in range(8):
            batch = _random_batch(rng, 120)
            wal.append_batch(batch)
            live.apply_edge_batch(batch)
            if step == 3:  # mid-stream checkpoint truncates the log
                buf = io.BytesIO()
                save_store(live, buf)
                checkpoint = buf.getvalue()
                wal.truncate()
        recovered = load_store(io.BytesIO(checkpoint))
        for batch in wal.replay():
            recovered.apply_edge_batch(batch)
        _assert_adjacency_equal(_adjacency(live), _adjacency(recovered))
        assert recovered.num_edges == live.num_edges
        recovered.check_invariants()


# ---------------------------------------------------------------------------
# Satellite: WAL replay idempotence (property-based)
# ---------------------------------------------------------------------------

_op_st = st.tuples(
    st.integers(min_value=0, max_value=12),  # src
    st.integers(min_value=0, max_value=30),  # dst
    st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    st.integers(min_value=0, max_value=1),  # etype
    st.sampled_from([OP_INSERT, OP_UPDATE, OP_DELETE]),
)
_batch_st = st.lists(_op_st, min_size=1, max_size=40)
_log_st = st.lists(_batch_st, min_size=1, max_size=5)


def _to_batch(rows):
    src, dst, w, et, op = zip(*rows)
    return EdgeBatch(list(src), list(dst), list(w), list(et), list(op))


@settings(max_examples=60, deadline=None)
@given(_log_st, st.integers(min_value=0, max_value=2**31 - 1))
def test_wal_replay_is_idempotent(log, seed):
    """Replaying the same WAL tail twice over a checkpoint yields a
    store identical to replaying it once (last-wins fold semantics)."""
    rng = random.Random(seed)
    config = SamtreeConfig(capacity=4)
    base = DynamicGraphStore(config)
    base.apply_edge_batch(_random_batch(rng, 60, nsrc=13, ndst=31))
    buf = io.BytesIO()
    save_store(base, buf)
    checkpoint = buf.getvalue()

    wal = ShardWAL(shard_id=0)
    for rows in log:
        wal.append_batch(_to_batch(rows))

    once = load_store(io.BytesIO(checkpoint))
    for batch in wal.replay():
        once.apply_edge_batch(batch)

    twice = load_store(io.BytesIO(checkpoint))
    for _ in range(2):
        for batch in wal.replay():
            twice.apply_edge_batch(batch)

    _assert_adjacency_equal(_adjacency(once), _adjacency(twice))
    assert once.num_edges == twice.num_edges
    once.check_invariants()
    twice.check_invariants()
