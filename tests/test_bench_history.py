"""Tests for the bench-history regression harness (DESIGN.md §12).

The acceptance criteria of the PR: the gate demonstrably **fails** on an
injected 2× slowdown and **passes** on the recorded ``BENCH_*.json``
trajectory (which seeded the checked-in ``BENCH_HISTORY.jsonl``).
"""

from __future__ import annotations

import json
import os
import sys

import pytest

_REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_REPO, "benchmarks"))

from bench_history import (  # noqa: E402  (path bootstrap above)
    DEFAULT_TOLERANCE,
    compare,
    extract_metrics,
    load_history,
    main,
    record,
)


def _sampling_payload(scale=1.0, mode="full"):
    return {
        "mode": mode,
        "fanouts": {
            "5": {"batched_warm_vertices_per_s": 350_000.0 * scale},
            "10": {"batched_warm_vertices_per_s": 320_000.0 * scale},
            "25": {"batched_warm_vertices_per_s": 260_000.0 * scale},
        },
    }


def _ingest_payload(scale=1.0, mode="full"):
    return {
        "mode": mode,
        "build": {"compress_on": {"bulk_edges_per_s": 950_000.0 * scale}},
        "update": {"batched_ops_per_s": 105_000.0 * scale},
    }


class TestExtractMetrics:
    def test_known_benches(self):
        m = extract_metrics("batched_sampling", _sampling_payload())
        assert m["warm_vertices_per_s_k10"] == 320_000.0
        m = extract_metrics("bulk_ingest", _ingest_payload())
        assert set(m) == {"bulk_edges_per_s", "batched_update_ops_per_s"}

    def test_unknown_bench_fails_loudly(self):
        with pytest.raises(KeyError):
            extract_metrics("nope", {})


class TestHistoryRoundTrip:
    def test_record_then_load(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        entry = record(path, "bulk_ingest", _ingest_payload())
        assert entry["mode"] == "full"
        (loaded,) = load_history(path)
        assert loaded["metrics"] == entry["metrics"]
        assert load_history(str(tmp_path / "missing.jsonl")) == []

    def test_corrupt_history_raises(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError):
            load_history(str(path))


class TestGate:
    def _history(self, tmp_path, runs=1, scale=1.0):
        path = str(tmp_path / "hist.jsonl")
        for _ in range(runs):
            record(path, "bulk_ingest", _ingest_payload(scale))
        return load_history(path)

    def test_first_run_establishes_baseline(self):
        results = compare("bulk_ingest", _ingest_payload(), [])
        assert all(r["baseline"] is None for r in results)
        assert not any(r["regressed"] for r in results)

    def test_equal_run_passes(self, tmp_path):
        history = self._history(tmp_path)
        results = compare("bulk_ingest", _ingest_payload(), history)
        assert not any(r["regressed"] for r in results)
        assert all(r["ratio"] == pytest.approx(1.0) for r in results)

    def test_2x_slowdown_fails_gate(self, tmp_path):
        history = self._history(tmp_path)
        results = compare("bulk_ingest", _ingest_payload(0.5), history)
        assert all(r["regressed"] for r in results)

    def test_within_tolerance_jitter_passes(self, tmp_path):
        history = self._history(tmp_path)
        results = compare("bulk_ingest", _ingest_payload(0.9), history)
        assert not any(r["regressed"] for r in results)  # 10% < 15% floor

    def test_noise_widens_tolerance(self, tmp_path):
        # A jittery trajectory (CV ~ 20%) must not flap the gate on a
        # drop that a fixed 15% floor would have flagged.
        path = str(tmp_path / "hist.jsonl")
        for scale in (1.0, 0.65, 1.05, 0.7):
            record(path, "bulk_ingest", _ingest_payload(scale))
        history = load_history(path)
        results = compare("bulk_ingest", _ingest_payload(0.55), history)
        assert all(r["tolerance"] > DEFAULT_TOLERANCE for r in results)
        assert not any(r["regressed"] for r in results)
        # ...but a collapse still fails even with the widened band.
        results = compare("bulk_ingest", _ingest_payload(0.1), history)
        assert all(r["regressed"] for r in results)

    def test_modes_never_cross_compare(self, tmp_path):
        path = str(tmp_path / "hist.jsonl")
        record(path, "bulk_ingest", _ingest_payload(5.0, mode="full"))
        history = load_history(path)
        # A smoke run 10x slower than the full run is a first-of-mode
        # baseline, not a regression.
        results = compare(
            "bulk_ingest", _ingest_payload(0.5, mode="smoke"), history
        )
        assert all(r["baseline"] is None for r in results)
        assert not any(r["regressed"] for r in results)


class TestRecordedTrajectory:
    """The checked-in history must pass against the checked-in benches."""

    @pytest.mark.parametrize(
        "bench", ["batched_sampling", "bulk_ingest"]
    )
    def test_recorded_bench_passes_checked_in_history(self, bench):
        payload_path = os.path.join(_REPO, f"BENCH_{bench}.json")
        history_path = os.path.join(_REPO, "BENCH_HISTORY.jsonl")
        with open(payload_path) as fh:
            payload = json.load(fh)
        history = load_history(history_path)
        assert history, "BENCH_HISTORY.jsonl must ship seeded"
        results = compare(bench, payload, history)
        assert results, "gated metrics must be non-empty"
        assert not any(r["regressed"] for r in results)

    def test_cli_compare_exit_codes(self, tmp_path):
        hist = str(tmp_path / "hist.jsonl")
        payload = str(tmp_path / "payload.json")
        with open(payload, "w") as fh:
            json.dump(_ingest_payload(), fh)
        base = ["--bench", "bulk_ingest", "--input", payload,
                "--history", hist]
        assert main(["record"] + base) == 0
        assert main(["compare"] + base) == 0
        # Inject the 2x slowdown and watch the gate trip.
        with open(payload, "w") as fh:
            json.dump(_ingest_payload(0.5), fh)
        assert main(["compare"] + base) == 1

    def test_cli_compare_record_appends_on_pass(self, tmp_path):
        hist = str(tmp_path / "hist.jsonl")
        payload = str(tmp_path / "payload.json")
        with open(payload, "w") as fh:
            json.dump(_ingest_payload(), fh)
        base = ["--bench", "bulk_ingest", "--input", payload,
                "--history", hist]
        assert main(["compare", "--record"] + base) == 0  # first run
        assert main(["compare", "--record"] + base) == 0
        assert len(load_history(hist)) == 2
