"""Tests for embedding inference, top-k retrieval, and random walks."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError, ShapeError
from repro.gnn.inference import embed_vertices, topk_similar
from repro.gnn.models import GAT, GraphSAGE
from repro.gnn.walks import (
    metapath_walks,
    node2vec_walks,
    random_walks,
    walk_cooccurrence,
)
from repro.storage.attributes import AttributeStore


@pytest.fixture
def small_graph():
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    feats = AttributeStore()
    feats.register("feat", 4)
    nprng = np.random.default_rng(0)
    for v in range(40):
        feats.put("feat", v, nprng.normal(size=4).astype(np.float32))
    rng = random.Random(0)
    for _ in range(300):
        a, b = rng.randrange(40), rng.randrange(40)
        if a != b:
            store.add_edge(a, b, rng.random() + 0.1)
    return store, feats


class TestInference:
    def test_shapes_and_normalisation(self, small_graph, rng, nprng):
        store, feats = small_graph
        encoder = GraphSAGE(4, 8, 6, num_layers=2, rng=nprng)
        emb = embed_vertices(
            store, feats, encoder, list(range(40)), [3, 3], rng=rng,
            batch_size=16,
        )
        assert emb.shape == (40, 6)
        assert emb.dtype == np.float32
        norms = np.linalg.norm(emb, axis=1)
        nonzero = norms > 0
        assert np.allclose(norms[nonzero], 1.0, atol=1e-5)

    def test_no_normalize(self, small_graph, rng, nprng):
        store, feats = small_graph
        encoder = GraphSAGE(4, 8, 6, num_layers=2, rng=nprng)
        emb = embed_vertices(
            store, feats, encoder, [0, 1], [2, 2], rng=rng, normalize=False
        )
        assert emb.shape == (2, 6)

    def test_caches_cleared(self, small_graph, rng, nprng):
        store, feats = small_graph
        encoder = GraphSAGE(4, 8, 6, num_layers=2, rng=nprng)
        embed_vertices(store, feats, encoder, list(range(10)), [2, 2], rng=rng)
        assert all(not layer._cache for layer in encoder.layers)

    def test_empty_vertex_list(self, small_graph, rng, nprng):
        store, feats = small_graph
        encoder = GraphSAGE(4, 8, 6, num_layers=2, rng=nprng)
        assert embed_vertices(store, feats, encoder, [], [2, 2], rng=rng).shape == (0, 6)

    def test_gat_encoder_works(self, small_graph, rng, nprng):
        store, feats = small_graph
        encoder = GAT(4, 8, 6, num_layers=2, rng=nprng)
        emb = embed_vertices(store, feats, encoder, [0, 1, 2], [3, 3], rng=rng)
        assert emb.shape == (3, 6)

    def test_validation(self, small_graph, rng, nprng):
        store, feats = small_graph
        encoder = GraphSAGE(4, 8, 6, num_layers=2, rng=nprng)
        with pytest.raises(ConfigurationError):
            embed_vertices(store, feats, encoder, [0], [2], rng=rng)
        with pytest.raises(ConfigurationError):
            embed_vertices(store, feats, encoder, [0], [2, 2], batch_size=0)


class TestTopK:
    def test_orders_by_score(self):
        emb = np.array([[1.0, 0.0], [0.0, 1.0], [0.7, 0.7]])
        out = topk_similar(emb, np.array([1.0, 0.0]), 2)
        assert [i for i, _ in out] == [0, 2]
        assert out[0][1] == pytest.approx(1.0)

    def test_exclude(self):
        emb = np.eye(3)
        out = topk_similar(emb, emb[1], 2, exclude=1)
        assert 1 not in [i for i, _ in out]

    def test_k_clamped(self):
        emb = np.eye(2)
        assert len(topk_similar(emb, emb[0], 10)) == 2

    def test_validation(self):
        with pytest.raises(ShapeError):
            topk_similar(np.eye(3), np.zeros(2), 1)
        with pytest.raises(ConfigurationError):
            topk_similar(np.eye(3), np.zeros(3), 0)


class TestRandomWalks:
    def test_walks_follow_edges(self, small_graph, rng):
        store, _ = small_graph
        walks = random_walks(store, [0, 1, 2], length=10, rng=rng)
        assert len(walks) == 3
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert store.has_edge(a, b) or a == b

    def test_sink_stops_walk(self, rng):
        store = DynamicGraphStore()
        store.add_edge(1, 2, 1.0)  # 2 is a sink
        walks = random_walks(store, [1], length=5, rng=rng)
        assert walks[0] == [1, 2]

    def test_restart(self, rng):
        store = DynamicGraphStore()
        store.add_edge(1, 2, 1.0)
        store.add_edge(2, 3, 1.0)
        store.add_edge(3, 1, 1.0)
        walks = random_walks(store, [1], length=200, rng=rng, restart_prob=0.5)
        assert walks[0].count(1) > 40  # frequent teleports home

    def test_validation(self, rng):
        store = DynamicGraphStore()
        with pytest.raises(ConfigurationError):
            random_walks(store, [1], length=-1, rng=rng)
        with pytest.raises(ConfigurationError):
            random_walks(store, [1], 1, rng=rng, restart_prob=1.0)


class TestNode2Vec:
    def make_triangle_plus_tail(self):
        store = DynamicGraphStore()
        # triangle 1-2-3 (bi-directed) plus a tail 3->4
        for a, b in [(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1), (3, 4)]:
            store.add_edge(a, b, 1.0)
        return store

    def test_low_p_returns_often(self, rng):
        store = self.make_triangle_plus_tail()
        walks = node2vec_walks(store, [1] * 50, length=6, p=0.05, q=1.0, rng=rng)
        returns = sum(
            sum(1 for i in range(2, len(w)) if w[i] == w[i - 2])
            for w in walks
        )
        walks_q = node2vec_walks(store, [1] * 50, length=6, p=20.0, q=1.0, rng=rng)
        returns_q = sum(
            sum(1 for i in range(2, len(w)) if w[i] == w[i - 2])
            for w in walks_q
        )
        assert returns > returns_q

    def test_edges_respected(self, rng):
        store = self.make_triangle_plus_tail()
        for walk in node2vec_walks(store, [1, 2, 3], 8, 0.5, 2.0, rng=rng):
            for a, b in zip(walk, walk[1:]):
                assert store.has_edge(a, b)

    def test_validation(self, rng):
        store = self.make_triangle_plus_tail()
        with pytest.raises(ConfigurationError):
            node2vec_walks(store, [1], 3, p=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            node2vec_walks(store, [1], -2, rng=rng)


class TestMetapathWalks:
    def test_schema_followed(self, rng):
        store = DynamicGraphStore()
        store.add_edge(1, 10, 1.0, etype=0)   # user -> live
        store.add_edge(10, 11, 1.0, etype=2)  # live -> live
        store.add_edge(11, 2, 1.0, etype=8)   # live -> user (reverse)
        walks = metapath_walks(store, [1], schema=[0, 2, 8], rng=rng)
        assert walks[0] == [1, 10, 11, 2]

    def test_stops_when_type_missing(self, rng):
        store = DynamicGraphStore()
        store.add_edge(1, 10, 1.0, etype=0)
        walks = metapath_walks(store, [1], schema=[0, 2], repetitions=3, rng=rng)
        assert walks[0] == [1, 10]

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            metapath_walks(DynamicGraphStore(), [1], schema=[], rng=rng)
        with pytest.raises(ConfigurationError):
            metapath_walks(DynamicGraphStore(), [1], schema=[0], repetitions=0, rng=rng)


class TestCooccurrence:
    def test_window_pairs(self):
        pairs = walk_cooccurrence([[1, 2, 3]], window=1)
        assert pairs == {
            (1, 2): 1, (2, 1): 1, (2, 3): 1, (3, 2): 1,
        }

    def test_window_two(self):
        pairs = walk_cooccurrence([[1, 2, 3]], window=2)
        assert pairs[(1, 3)] == 1 and pairs[(3, 1)] == 1

    def test_counts_accumulate_across_walks(self):
        pairs = walk_cooccurrence([[1, 2], [1, 2]], window=1)
        assert pairs[(1, 2)] == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            walk_cooccurrence([[1, 2]], window=0)
