"""The columnar bulk ingestion tier: equivalence, routing, coherence.

Covers the PR's acceptance criteria:

* ``apply_edge_batch`` / ``bulk_load`` leave the store in exactly the
  state sequential per-op application does — all etypes, duplicate keys
  folded last-wins, both heuristic paths (rebuild and PALM incremental);
* the distributed write path ships one columnar message per shard with
  array-payload NetworkModel accounting, and the vectorized partitioner
  agrees element-wise with the scalar hash;
* every bulk mutation bumps the samtree version, so the PR-1
  SnapshotCache never serves a stale snapshot across interleaved
  bulk-ingest / sample rounds (chi-square checked at the end).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diff import stores_equal
from repro.core.ingest import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    EdgeBatch,
    IngestStats,
    fold_run,
)
from repro.core.samtree import SamtreeConfig
from repro.core.topology import (
    REBUILD_MIN_OPS,
    DynamicGraphStore,
)
from repro.core.types import GraphStoreAPI
from repro.datasets.io import load_edge_list, write_edge_list
from repro.datasets.presets import ogbn_scaled
from repro.datasets.stream import EdgeStream
from repro.distributed.client import GraphClient
from repro.distributed.partition import (
    HashBySourcePartitioner,
    splitmix64,
    splitmix64_array,
)
from repro.distributed.rpc import NetworkModel
from repro.distributed.server import GraphServer
from repro.errors import ConfigurationError, InvalidWeightError


class _RefStore(DynamicGraphStore):
    """Samtree store forced onto the generic per-row fallback — the
    reference semantics the bulk paths must match."""

    bulk_load = GraphStoreAPI.bulk_load
    apply_edge_batch = GraphStoreAPI.apply_edge_batch


# ---------------------------------------------------------------------------
# EdgeBatch
# ---------------------------------------------------------------------------
def test_edge_batch_broadcast_and_validation():
    b = EdgeBatch([1, 2], [3, 4])
    assert b.weight.tolist() == [1.0, 1.0]
    assert b.etype.tolist() == [0, 0]
    assert b.is_insert_only
    b2 = EdgeBatch([1], [2], 0.5, 3, OP_DELETE)
    assert not b2.is_insert_only
    with pytest.raises(ConfigurationError):
        EdgeBatch([1, 2], [3])  # length mismatch
    with pytest.raises(InvalidWeightError):
        EdgeBatch([-1], [2])
    with pytest.raises(ConfigurationError):
        EdgeBatch([1], [2], op=7)
    with pytest.raises(InvalidWeightError):
        EdgeBatch([1], [2], weight=-0.5)
    # delete rows don't validate weights (they carry none)
    EdgeBatch([1], [2], weight=-0.5, op=OP_DELETE)


def test_edge_batch_roundtrip_edge_ops():
    from repro.core.types import EdgeOp

    ops = [
        EdgeOp.insert(1, 2, 0.5, 3),
        EdgeOp.update(4, 5, 1.5),
        EdgeOp.delete(6, 7, 2),
    ]
    batch = EdgeBatch.from_edge_ops(ops)
    assert batch.to_edge_ops() == ops
    assert batch.payload_nbytes() == 16 + 3 * 23


def test_tree_groups_are_contiguous_and_complete():
    rng = random.Random(3)
    n = 500
    batch = EdgeBatch(
        [rng.randrange(20) for _ in range(n)],
        [rng.randrange(50) for _ in range(n)],
        None,
        [rng.randrange(3) for _ in range(n)],
    ).sorted_by_tree()
    seen = []
    rows = 0
    for etype, src, sub in batch.iter_tree_groups():
        assert (sub.src == src).all() and (sub.etype == etype).all()
        # dst-sorted within the group
        assert (np.diff(sub.dst) >= 0).all()
        seen.append((etype, src))
        rows += len(sub)
    assert rows == n
    assert seen == sorted(seen)  # groups in lexsorted order, no repeats
    assert len(seen) == len(set(seen))


# ---------------------------------------------------------------------------
# fold_run: duplicate-key folding == sequential application
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.sampled_from([OP_INSERT, OP_UPDATE, OP_DELETE]),
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    ),
    st.booleans(),
)
@settings(max_examples=300)
def test_fold_run_equals_sequential_application(run, preexisting):
    """Folding a duplicate-key run to its net op leaves a one-edge store
    in exactly the state sequential application would."""
    codes = [c for c, _ in run]
    weights = [w for _, w in run]

    def replay(store):
        for c, w in run:
            if c == OP_INSERT:
                store.add_edge(0, 1, w)
            elif c == OP_UPDATE:
                store.update_edge(0, 1, w)
            else:
                store.remove_edge(0, 1)
        return store.edge_weight(0, 1)

    seq = DynamicGraphStore(SamtreeConfig(capacity=4))
    folded = DynamicGraphStore(SamtreeConfig(capacity=4))
    if preexisting:
        seq.add_edge(0, 1, 99.0)
        folded.add_edge(0, 1, 99.0)
    expected = replay(seq)

    net = fold_run(codes, weights)
    if net is not None:
        code, w = net
        if code == OP_INSERT:
            folded.add_edge(0, 1, w)
        elif code == OP_UPDATE:
            folded.update_edge(0, 1, w)
        else:
            folded.remove_edge(0, 1)
    got = folded.edge_weight(0, 1)
    if expected is None:
        assert got is None
    else:
        # Sequential upserts mutate the Fenwick table by deltas, so the
        # stored weight can drift by an ulp vs the single folded write.
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)


# ---------------------------------------------------------------------------
# Store-level equivalence
# ---------------------------------------------------------------------------
def _random_batch(rng, n, n_src, n_dst, n_et, weights=(6, 2, 2)):
    return EdgeBatch(
        [rng.randrange(n_src) for _ in range(n)],
        [rng.randrange(n_dst) for _ in range(n)],
        [round(rng.random() * 10, 3) for _ in range(n)],
        [rng.randrange(n_et) for _ in range(n)],
        [
            rng.choices([OP_INSERT, OP_UPDATE, OP_DELETE], weights=weights)[0]
            for _ in range(n)
        ],
    )


def test_apply_edge_batch_equals_per_op_application():
    """Randomized mixed batches across etypes, duplicate keys included:
    bulk and per-op replay converge to identical stores."""
    rng = random.Random(7)
    for trial in range(25):
        cfg = SamtreeConfig(capacity=rng.choice([4, 8, 32]))
        bulk = DynamicGraphStore(cfg)
        ref = _RefStore(cfg)
        for _ in range(rng.randrange(1, 4)):
            batch = _random_batch(
                rng,
                rng.randrange(0, 250),
                rng.choice([3, 10, 40]),
                rng.choice([5, 20, 100]),
                rng.choice([1, 3]),
            )
            sa = bulk.apply_edge_batch(batch)
            sb = ref.apply_edge_batch(batch)
            assert sa.ops == sb.ops == len(batch)
            assert sa.net_edges == sb.net_edges
        bulk.check_invariants()
        assert stores_equal(bulk, ref), trial
        assert bulk.num_edges == ref.num_edges


def test_bulk_load_equals_add_edge_loop():
    rng = random.Random(21)
    cfg = SamtreeConfig(capacity=32)
    a = DynamicGraphStore(cfg)
    b = DynamicGraphStore(cfg)
    n = 4000
    src = np.asarray([rng.randrange(60) for _ in range(n)])
    dst = np.asarray([rng.randrange(500) for _ in range(n)])
    w = np.round(np.random.default_rng(0).random(n) * 4, 3)
    stats = a.bulk_load(src, dst, w)
    for s, d, ww in zip(src, dst, w):
        b.add_edge(int(s), int(d), float(ww))
    a.check_invariants()
    assert stores_equal(a, b)
    assert stats.ops == n
    assert stats.inserted == a.num_edges == b.num_edges


def test_bulk_load_rejects_mixed_batches():
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    mixed = EdgeBatch([1], [2], 1.0, 0, OP_DELETE)
    with pytest.raises(ConfigurationError):
        store.bulk_load(mixed)


def test_heuristic_routes_both_paths():
    """Large groups rebuild bottom-up; small touch-ups on big trees take
    the PALM incremental path — and both stay correct."""
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    s1 = store.bulk_load([1] * 200, list(range(200)))
    assert s1.trees_created == 1
    # Small batch against a degree-200 tree -> incremental.
    s2 = store.apply_edge_batch(
        EdgeBatch([1, 1], [5, 500], [3.0, 1.0])
    )
    assert s2.trees_incremental == 1 and s2.trees_rebuilt == 0
    # Big batch relative to the tree -> rebuild.
    assert 200 >= REBUILD_MIN_OPS  # sanity: trips the rebuild heuristic
    s3 = store.apply_edge_batch(
        EdgeBatch([1] * 200, list(range(200)), 2.0)
    )
    assert s3.trees_rebuilt == 1 and s3.trees_incremental == 0
    store.check_invariants()
    assert store.edge_weight(1, 5) == 2.0
    # dst 500 was not in the rebuild batch: the merge keeps it intact.
    assert store.edge_weight(1, 500) == 1.0


def test_delete_batch_empties_tree_and_directory():
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    store.bulk_load([7] * 50, list(range(50)))
    assert store.num_sources == 1
    stats = store.apply_edge_batch(
        EdgeBatch([7] * 50, list(range(50)), None, None, OP_DELETE)
    )
    assert stats.removed == 50
    assert store.num_sources == 0
    assert store.num_edges == 0
    store.check_invariants()
    # The source is re-creatable afterwards.
    store.add_edge(7, 3, 1.0)
    assert store.degree(7) == 1


def test_ingest_stats_merge():
    a = IngestStats(ops=2, inserted=1, trees_created=1)
    b = IngestStats(ops=3, removed=2, trees_rebuilt=1)
    a.merge_from(b)
    assert a.ops == 5 and a.inserted == 1 and a.removed == 2
    assert a.net_edges == -1
    assert a.to_dict()["trees_rebuilt"] == 1


# ---------------------------------------------------------------------------
# Distributed write path
# ---------------------------------------------------------------------------
def test_vectorized_partitioner_matches_scalar():
    xs = np.array(
        [0, 1, 2, 5, 123456789, 2**62, 2**63 - 1], dtype=np.uint64
    )
    assert [int(v) for v in splitmix64_array(xs)] == [
        splitmix64(int(v)) for v in xs
    ]
    part = HashBySourcePartitioner(7)
    srcs = np.arange(5000)
    assert part.shards_for_array(srcs).tolist() == [
        part.shard_for(int(s)) for s in srcs
    ]


def test_client_bulk_load_one_columnar_message_per_shard():
    from repro.core.ingest import _HEADER_BYTES, _ROW_BYTES

    rng = random.Random(11)
    net = NetworkModel()
    part = HashBySourcePartitioner(4)
    servers = [
        GraphServer(i, config=SamtreeConfig(capacity=16)) for i in range(4)
    ]
    client = GraphClient(servers, part, network=net)
    local = DynamicGraphStore(SamtreeConfig(capacity=16))

    n = 3000
    src = np.asarray([rng.randrange(200) for _ in range(n)])
    dst = np.asarray([rng.randrange(800) for _ in range(n)])
    w = np.round(np.random.default_rng(1).random(n) * 3, 3)
    stats = client.bulk_load(src, dst, w)
    local.bulk_load(src, dst, w)

    # One columnar message per shard, payload accounted from the arrays.
    assert net.stats.messages == 4
    assert net.stats.payload_bytes == 4 * _HEADER_BYTES + n * _ROW_BYTES
    assert stats.ops == n
    assert client.num_edges == local.num_edges
    for s in range(200):
        assert sorted(client.neighbors(s)) == sorted(local.neighbors(s))
    for server in servers:
        server.store.check_invariants()
        # Columnar ingests count separately from scalar op batches.
        assert server.stats.ingest_requests == 1
        assert server.stats.update_requests == 0
    # Every edge landed on its owning shard.
    for server in servers:
        for etype in (0,):
            for s in server.store.sources(etype):
                assert part.shard_for(s) == server.shard_id


def test_client_mixed_batch_matches_local_store():
    rng = random.Random(29)
    part = HashBySourcePartitioner(3)
    servers = [
        GraphServer(i, config=SamtreeConfig(capacity=8)) for i in range(3)
    ]
    client = GraphClient(servers, part)
    local = DynamicGraphStore(SamtreeConfig(capacity=8))
    for _ in range(4):
        batch = _random_batch(rng, 400, 50, 120, 2)
        client.apply_edge_batch(batch)
        local.apply_edge_batch(batch)
    assert client.num_edges == local.num_edges
    for et in (0, 1):
        for s in range(50):
            assert sorted(client.neighbors(s, et)) == sorted(
                local.neighbors(s, et)
            ), (et, s)


# ---------------------------------------------------------------------------
# Dataset layer: columnar streams, io, workloads
# ---------------------------------------------------------------------------
def test_columnar_stream_matches_scalar_stream():
    data = ogbn_scaled(scale=20000.0)
    a = DynamicGraphStore(SamtreeConfig(capacity=64))
    b = DynamicGraphStore(SamtreeConfig(capacity=64))
    sa, sb = EdgeStream(data, seed=3), EdgeStream(data, seed=3)
    for batch in sa.build_batches_columnar(512):
        a.bulk_load(batch)
    for ops in sb.build_batches(512):
        for op in ops:
            b.apply(op)
    assert stores_equal(a, b)
    assert sa.num_live_edges == sb.num_live_edges
    # Same seed -> same churn sequence -> same final stores.
    for cb in sa.churn_batches_columnar(100, 4):
        a.apply_edge_batch(cb)
    for ops in sb.churn_batches(100, 4):
        for op in ops:
            b.apply(op)
    a.check_invariants()
    assert stores_equal(a, b)


def test_edge_columns_cover_all_relations():
    data = ogbn_scaled(scale=20000.0)
    src, dst, w, et = data.edge_columns()
    assert src.size == data.num_edges
    assert set(np.unique(et).tolist()) == {
        r.spec.etype for r in data.relations
    }
    store = DynamicGraphStore(SamtreeConfig(capacity=64))
    store.bulk_load(src, dst, w, et)
    ref = DynamicGraphStore(SamtreeConfig(capacity=64))
    for s, d, ww, e in data.edge_ops():
        ref.add_edge(s, d, ww, e)
    assert stores_equal(store, ref)


def test_load_edge_list_bulk_equals_per_op(tmp_path):
    rng = random.Random(17)
    path = tmp_path / "edges.tsv"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# src dst weight etype\n")
        for _ in range(800):
            fh.write(
                f"{rng.randrange(40)}\t{rng.randrange(99)}"
                f"\t{round(rng.random(), 4)}\t{rng.randrange(2)}\n"
            )
    a = DynamicGraphStore(SamtreeConfig(capacity=16))
    b = DynamicGraphStore(SamtreeConfig(capacity=16))
    na = load_edge_list(a, path, bulk=True, chunk_size=128)
    nb = load_edge_list(b, path, bulk=False)
    assert na == nb == 800
    assert stores_equal(a, b)
    # bidirected round-trips too
    c = DynamicGraphStore(SamtreeConfig(capacity=16))
    d = DynamicGraphStore(SamtreeConfig(capacity=16))
    load_edge_list(c, path, bidirected=True, chunk_size=200)
    load_edge_list(d, path, bidirected=True, bulk=False)
    assert stores_equal(c, d)


def test_build_store_use_bulk_matches_per_op():
    from repro.bench.workloads import build_store, make_store

    data = ogbn_scaled(scale=20000.0)
    r_bulk = build_store(
        make_store("PlatoD2GL", capacity=64), data, 1024, use_bulk=True
    )
    r_ref = build_store(make_store("PlatoD2GL", capacity=64), data, 1024)
    assert r_bulk.num_ops == r_ref.num_ops
    assert stores_equal(r_bulk.store, r_ref.store)


# ---------------------------------------------------------------------------
# SnapshotCache coherence across bulk mutations
# ---------------------------------------------------------------------------
try:
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    from math import erf, sqrt

    return float(0.5 * (1.0 - erf(z / sqrt(2.0))))


def test_bulk_mutations_bump_tree_version():
    """Every bulk entry point advances the samtree epoch — the signal
    the SnapshotCache coherence check relies on."""
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    store.bulk_load([1] * 40, list(range(40)))
    tree = store.tree(1, 0)
    v0 = tree.version
    # rebuild path
    store.apply_edge_batch(EdgeBatch([1] * 40, list(range(40)), 2.0))
    assert tree.version > v0
    v1 = tree.version
    # incremental path
    store.apply_edge_batch(EdgeBatch([1], [7], 5.0))
    assert tree.version > v1


def test_no_stale_snapshot_across_interleaved_bulk_ingest_and_sampling():
    """Interleave bulk ingestion (rebuild + incremental + delete-all)
    with batched sampling: after every mutation the served snapshot
    reflects the *current* weights exactly, and the final distribution
    passes a chi-square test against the live tree's weights."""
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    src = 5
    k = 64
    gen = np.random.default_rng(0)

    # Round 1: bulk create, then warm the cache.
    store.bulk_load([src] * 30, list(range(30)), 1.0)
    store.sample_neighbors_many([src] * 4, k, gen)
    assert store.snapshot_cache.stats.misses >= 1

    # Round 2: bulk rebuild shifts all mass onto dst < 10; a stale
    # snapshot would keep sampling dst >= 10.
    store.apply_edge_batch(
        EdgeBatch(
            [src] * 30,
            list(range(30)),
            [100.0 if d < 10 else 1e-9 for d in range(30)],
        )
    )
    rows = store.sample_neighbors_many([src] * 8, k, gen)
    drawn = {int(v) for row in rows for v in row}
    assert drawn and max(drawn) < 10, drawn

    # Round 3: incremental path rewrites one weight to dominate.
    store.apply_edge_batch(EdgeBatch([src], [3], 1e7, None, OP_UPDATE))
    rows = store.sample_neighbors_many([src] * 8, k, gen)
    frac3 = sum(
        1 for row in rows for v in row if int(v) == 3
    ) / (8 * k)
    assert frac3 > 0.9, frac3

    # Round 4: bulk delete-all then re-create must not resurrect the
    # old tree through the cache's peek fast path.
    store.apply_edge_batch(
        EdgeBatch([src] * 30, list(range(30)), None, None, OP_DELETE)
    )
    assert store.sample_neighbors_many([src], k, gen) == [[]]
    store.bulk_load([src] * 5, [100, 200, 300, 400, 500])
    rows = store.sample_neighbors_many([src] * 4, k, gen)
    assert {int(v) for row in rows for v in row} <= {100, 200, 300, 400, 500}

    # Distributional check on the final state.
    weights = {100: 5.0, 200: 1.0, 300: 1.0, 400: 1.0, 500: 2.0}
    store.apply_edge_batch(
        EdgeBatch(
            [src] * 5,
            list(weights),
            list(weights.values()),
        )
    )
    draws = 40_000
    rows = store.sample_neighbors_many([src] * (draws // k), k, gen)
    counts = {d: 0 for d in weights}
    for row in rows:
        for v in row:
            counts[int(v)] += 1
    total_w = sum(weights.values())
    n_draws = sum(counts.values())
    expected = [weights[d] / total_w * n_draws for d in weights]
    p = _chi2_pvalue([counts[d] for d in weights], expected)
    assert p > 0.01, p
    store.check_invariants()
