"""Tests for the deadline-aware online inference tier (DESIGN.md §15):
admission control (token bucket / queue bound / circuit breaker),
degraded-answer caching, deadline threading through the retry layer,
the partial sampler + batch embedding path, and the chaos scenario
harness with its SLO reports."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.distributed.cluster import LocalCluster
from repro.distributed.retry import RetryPolicy
from repro.distributed.rpc import NetworkModel
from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
    TransientRPCError,
)
from repro.gnn.inference import embed_vertices
from repro.gnn.samplers import sample_blocks_partial
from repro.serving import (
    AdmissionGate,
    CircuitBreaker,
    DegradedAnswerCache,
    InferenceService,
    TokenBucket,
    build_report,
    build_serving_rig,
    run_scenario,
)
from repro.serving.admission import (
    SHED_DEADLINE_HOPELESS,
    SHED_QUEUE_FULL,
)


# ---------------------------------------------------------------------------
# admission primitives
# ---------------------------------------------------------------------------
class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        assert [bucket.take(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refills_at_rate_capped_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=3.0)
        for _ in range(3):
            assert bucket.take(0.0)
        # 0.1s at 10/s refills exactly one token.
        assert not bucket.take(0.05)
        assert bucket.take(0.1)
        # A long idle period refills to burst, never beyond.
        assert bucket.level(100.0) == pytest.approx(3.0)

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        assert bucket.take(1.0)
        level = bucket.level(1.0)
        # An earlier timestamp must not mint tokens (or crash).
        assert bucket.level(0.5) == pytest.approx(level)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=4.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionGate:
    def _gate(self, **kwargs) -> AdmissionGate:
        defaults = dict(rate=100.0, burst=4.0, max_queue=2)
        defaults.update(kwargs)
        return AdmissionGate(**defaults)

    def test_admits_when_nothing_binds(self):
        gate = self._gate()
        assert gate.check(0.0, 0, 1.0, 0.5) is None

    def test_hopeless_deadline_outranks_everything(self):
        # Even with a full queue and a dry bucket the cause must be
        # deadline_hopeless: the request could never win, so it should
        # not be attributed to (or spend) rate/queue capacity.
        gate = self._gate(burst=1.0)
        assert gate.bucket.take(0.0)  # dry the bucket
        cause = gate.check(0.0, 99, deadline=1.0, estimated_completion=2.0)
        assert cause == SHED_DEADLINE_HOPELESS

    def test_queue_bound_before_token_spend(self):
        gate = self._gate(max_queue=1)
        level_before = gate.bucket.level(0.0)
        assert gate.check(0.0, 1, None, 0.0) == SHED_QUEUE_FULL
        # The queue-full shed must not consume a token.
        assert gate.bucket.level(0.0) == pytest.approx(level_before)

    def test_dry_bucket_sheds(self):
        gate = self._gate(rate=1.0, burst=1.0)
        assert gate.check(0.0, 0, None, 0.0) is None
        assert gate.check(0.0, 0, None, 0.0) == SHED_QUEUE_FULL

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self._gate(max_queue=0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=1.0)
        assert breaker.state(0.0) == "closed"
        breaker.record_failure(0.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "closed"
        assert breaker.trips == 0
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "open"
        assert breaker.trips == 1
        assert not breaker.allow(0.5)

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=1.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(0.0)
        assert breaker.state(0.0) == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.state(0.5) == "open"
        assert breaker.state(1.0) == "half_open"
        assert breaker.allow(1.0)       # the probe slot
        assert not breaker.allow(1.0)   # everyone else stays shed
        breaker.record_success()
        assert breaker.state(1.0) == "closed"
        assert breaker.allow(1.0)

    def test_failed_probe_restarts_the_timeout(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0)
        breaker.record_failure(1.2)
        assert breaker.state(1.5) == "open"
        assert breaker.state(2.2) == "half_open"
        # A re-opened breaker is a restarted timeout, not a new trip.
        assert breaker.trips == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout=0.0)


# ---------------------------------------------------------------------------
# degraded-answer cache
# ---------------------------------------------------------------------------
class TestDegradedAnswerCache:
    def test_hit_miss_and_age(self):
        cache = DegradedAnswerCache(staleness_budget_seconds=10.0, capacity=4)
        vec = np.ones(3, dtype=np.float32)
        cache.put(7, vec, now=1.0)
        got = cache.get(7, now=2.0)
        np.testing.assert_array_equal(got, vec)
        assert cache.age(7, now=2.0) == pytest.approx(1.0)
        assert cache.get(8, now=2.0) is None
        assert cache.hits == 1 and cache.misses == 1

    def test_staleness_budget_rejects_old_entries(self):
        cache = DegradedAnswerCache(staleness_budget_seconds=5.0, capacity=4)
        cache.put(1, np.zeros(2, dtype=np.float32), now=0.0)
        assert cache.get(1, now=5.0) is not None
        assert cache.get(1, now=5.1) is None
        assert cache.stale_rejects == 1

    def test_lru_eviction_at_capacity(self):
        cache = DegradedAnswerCache(staleness_budget_seconds=60.0, capacity=2)
        cache.put(1, np.zeros(1, dtype=np.float32), now=0.0)
        cache.put(2, np.zeros(1, dtype=np.float32), now=0.0)
        cache.get(1, now=0.0)  # refresh 1 -> 2 is now the LRU victim
        cache.put(3, np.zeros(1, dtype=np.float32), now=0.0)
        assert cache.get(1, now=0.0) is not None
        assert cache.get(2, now=0.0) is None
        assert cache.evictions == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DegradedAnswerCache(staleness_budget_seconds=0.0)
        with pytest.raises(ConfigurationError):
            DegradedAnswerCache(capacity=0)


# ---------------------------------------------------------------------------
# absolute deadlines in the retry layer
# ---------------------------------------------------------------------------
class TestRetryDeadlines:
    def test_remaining_helper(self):
        assert RetryPolicy.remaining(None) == float("inf")
        assert RetryPolicy.remaining(5.0, lambda: 2.0) == pytest.approx(3.0)
        # Never negative: an expired deadline reads as zero budget.
        assert RetryPolicy.remaining(1.0, lambda: 2.0) == 0.0
        # Without a clock the helper measures from t=0.
        assert RetryPolicy.remaining(5.0) == pytest.approx(5.0)

    def test_expired_deadline_burns_no_attempt(self):
        policy = RetryPolicy(max_attempts=4, seed=0)
        calls = []
        with pytest.raises(DeadlineExceededError):
            policy.run(lambda: calls.append(1), now=lambda: 10.0, deadline=5.0)
        # Shed, not retried: zero attempts, one deadline_exceeded.
        assert calls == []
        assert policy.stats.attempts == 0
        assert policy.stats.retries == 0
        assert policy.stats.deadline_exceeded == 1

    def test_backoff_that_would_blow_the_deadline_aborts(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_seconds=1e-3, jitter=0.0, seed=0
        )

        def fail():
            raise TransientRPCError("transient")

        with pytest.raises(DeadlineExceededError):
            policy.run(fail, now=lambda: 0.0, deadline=0.5e-3)
        # Exactly one attempt was made; the 1ms backoff exceeded the
        # 0.5ms budget so no retry (and no backoff sleep) happened.
        assert policy.stats.attempts == 1
        assert policy.stats.transient_failures == 1
        assert policy.stats.retries == 0
        assert policy.stats.backoff_seconds == 0.0
        assert policy.stats.deadline_exceeded == 1

    def test_deadline_checked_against_advancing_clock(self):
        clock = {"t": 0.0}

        def fail_slowly():
            clock["t"] += 1.0  # the attempt itself eats the budget
            raise TransientRPCError("slow shard")

        policy = RetryPolicy(max_attempts=4, seed=0)
        with pytest.raises(DeadlineExceededError):
            policy.run(fail_slowly, now=lambda: clock["t"], deadline=0.5)
        assert policy.stats.attempts == 1
        assert policy.stats.deadline_exceeded == 1

    def test_generous_deadline_still_retries_to_recovery(self):
        state = {"left": 2}

        def flaky():
            if state["left"] > 0:
                state["left"] -= 1
                raise TransientRPCError("flaky")
            return "ok"

        policy = RetryPolicy(
            max_attempts=4, base_backoff_seconds=1e-3, jitter=0.0, seed=0
        )
        assert policy.run(flaky, now=lambda: 0.0, deadline=10.0) == "ok"
        assert policy.stats.attempts == 3
        assert policy.stats.retries == 2
        assert policy.stats.recoveries == 1
        assert policy.stats.deadline_exceeded == 0

    def test_exhaustion_still_wins_without_deadline_pressure(self):
        def fail():
            raise TransientRPCError("transient")

        policy = RetryPolicy(
            max_attempts=2, base_backoff_seconds=1e-6, jitter=0.0, seed=0
        )
        with pytest.raises(RetryExhaustedError):
            policy.run(fail, now=lambda: 0.0, deadline=1e9)
        assert policy.stats.exhausted == 1


class TestDeadlineScope:
    def test_scopes_nest_and_restore(self):
        cluster = LocalCluster(num_servers=2, network=NetworkModel())
        client = cluster.client
        assert client._request_deadline is None
        with client.deadline_scope(5.0):
            assert client._request_deadline == 5.0
            with client.deadline_scope(2.0):
                assert client._request_deadline == 2.0
            assert client._request_deadline == 5.0
        assert client._request_deadline is None

    def test_generous_deadline_leaves_reads_untouched(self):
        cluster = LocalCluster(num_servers=2, network=NetworkModel())
        cluster.client.add_edge(1, 2, 1.0)
        with cluster.client.deadline_scope(cluster.network.now() + 60.0):
            assert cluster.client.neighbors(1) == [(2, 1.0)]


# ---------------------------------------------------------------------------
# partial sampling + batch embedding (satellite 1)
# ---------------------------------------------------------------------------
def _degraded_cluster(num_sources: int = 40, degree: int = 4):
    cluster = LocalCluster(
        num_servers=2, network=NetworkModel(), degraded_reads=True
    )
    rng = np.random.default_rng(3)
    srcs = np.repeat(np.arange(num_sources, dtype=np.int64), degree)
    dsts = rng.integers(0, num_sources, srcs.size).astype(np.int64)
    cluster.client.bulk_load(srcs, dsts, 1.0)
    return cluster


def _features_for(num_sources: int, dim: int = 8):
    from repro.storage.attributes import AttributeStore

    features = AttributeStore()
    features.register("feat", dim)
    rng = np.random.default_rng(4)
    features.put_many(
        "feat",
        list(range(num_sources)),
        rng.standard_normal((num_sources, dim)).astype(np.float32),
    )
    return features


class TestPartialSampling:
    def test_partitions_served_and_unavailable(self):
        cluster = _degraded_cluster()
        shard_for = cluster.client.partitioner.shard_for
        seeds = list(range(12))
        cluster.crash_shard(0)
        blocks, served, unavailable = sample_blocks_partial(
            cluster.client, seeds, (2, 2), np.random.default_rng(0)
        )
        assert sorted(served + unavailable) == list(range(len(seeds)))
        assert unavailable, "crashing a shard must mark some seeds"
        for i in unavailable:
            assert shard_for(seeds[i]) == 0
        for i in served:
            assert shard_for(seeds[i]) == 1
        assert blocks is not None
        assert len(blocks.levels[0]) == len(served)

    def test_all_unavailable_returns_no_blocks(self):
        cluster = _degraded_cluster()
        shard_for = cluster.client.partitioner.shard_for
        on_zero = [v for v in range(40) if shard_for(v) == 0][:4]
        cluster.crash_shard(0)
        blocks, served, unavailable = sample_blocks_partial(
            cluster.client, on_zero, (2, 2), np.random.default_rng(0)
        )
        assert blocks is None
        assert served == []
        assert sorted(unavailable) == list(range(len(on_zero)))


class TestEmbedVertices:
    def _embed(self, cluster, features, encoder, rng, **kwargs):
        return embed_vertices(
            cluster.client, features, encoder, list(range(20)), (2, 2),
            rng=rng, **kwargs
        )

    def test_seed_conventions_accepted_and_deterministic(self):
        from repro.gnn.models import GraphSAGE

        cluster = _degraded_cluster()
        features = _features_for(40)
        encoder = GraphSAGE(8, 8, 4, num_layers=2,
                            rng=np.random.default_rng(1))
        a = self._embed(cluster, features, encoder, rng=7)
        b = self._embed(cluster, features, encoder, rng=7)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (20, 4)
        np.testing.assert_allclose(
            np.linalg.norm(a, axis=1), 1.0, atol=1e-5
        )
        # The other two RNGLike conventions must be accepted as-is.
        c = self._embed(cluster, features, encoder,
                        rng=random.Random(7))
        d = self._embed(cluster, features, encoder,
                        rng=np.random.default_rng(7))
        assert c.shape == d.shape == (20, 4)

    def test_skip_unavailable_zero_fills_and_reports(self):
        from repro.gnn.models import GraphSAGE

        cluster = _degraded_cluster()
        features = _features_for(40)
        encoder = GraphSAGE(8, 8, 4, num_layers=2,
                            rng=np.random.default_rng(1))
        shard_for = cluster.client.partitioner.shard_for
        cluster.crash_shard(0)
        matrix, skipped = self._embed(
            cluster, features, encoder, rng=7, skip_unavailable=True
        )
        assert skipped
        assert skipped == [v for v in range(20) if shard_for(v) == 0]
        for i in skipped:
            np.testing.assert_array_equal(
                matrix[i], np.zeros(4, dtype=np.float32)
            )
        live = [i for i in range(20) if i not in set(skipped)]
        np.testing.assert_allclose(
            np.linalg.norm(matrix[live], axis=1), 1.0, atol=1e-5
        )


# ---------------------------------------------------------------------------
# the inference service
# ---------------------------------------------------------------------------
def _small_rig(**kwargs):
    defaults = dict(num_shards=2, num_sources=64, degree=6)
    defaults.update(kwargs)
    return build_serving_rig(**defaults)


class TestInferenceService:
    def test_submit_validation(self):
        rig = _small_rig()
        with pytest.raises(ConfigurationError):
            rig.service.submit([], kind="embed")
        with pytest.raises(ConfigurationError):
            rig.service.submit([1], kind="link")
        with pytest.raises(ConfigurationError):
            rig.service.submit([1], kind="rank")

    def test_constructor_validation(self):
        rig = _small_rig()
        for bad in (
            dict(batch_window=0.0),
            dict(max_batch=0),
            dict(default_deadline=0.0),
            dict(fanouts=(3,)),  # depth mismatch vs the 2-layer encoder
        ):
            kwargs = dict(fanouts=(3, 2))
            kwargs.update(bad)
            fanouts = kwargs.pop("fanouts")
            with pytest.raises(ConfigurationError):
                InferenceService(
                    rig.cluster, rig.features, rig.encoder, fanouts, **kwargs
                )

    def test_batch_window_flush_answers_fresh(self):
        rig = _small_rig()
        service, network = rig.service, rig.cluster.network
        request = service.submit([1], kind="embed")
        assert request.answer is None
        assert service.next_flush_at() == pytest.approx(
            request.submitted_at + service.batch_window
        )
        network.sleep(service.batch_window)
        assert service.poll() == 1
        answer = request.answer
        assert answer is not None and answer.ok
        assert answer.status == "fresh" and not answer.degraded
        assert answer.embeddings.shape == (1, rig.encoder.layers[-1].out_dim)
        assert answer.latency >= service.batch_window

    def test_full_queue_flushes_immediately(self):
        rig = _small_rig(max_batch=4)
        service = rig.service
        requests = [service.submit([v]) for v in range(4)]
        assert all(r.answer is not None for r in requests)
        assert service.stats.batches == 1
        assert service.stats.batched_requests == 4

    def test_link_requests_score_a_pair(self):
        rig = _small_rig()
        request = rig.service.submit([3, 5], kind="link")
        rig.service.flush()
        answer = request.answer
        assert answer.ok
        assert answer.score is not None
        assert answer.embeddings.shape[0] == 2
        # Normalised rows make the score a cosine similarity.
        assert -1.0 - 1e-5 <= answer.score <= 1.0 + 1e-5

    def test_hopeless_deadline_sheds_before_sampling(self):
        rig = _small_rig()
        service = rig.service
        request = service.submit([1], deadline=1e-4)  # < batch_window
        assert service.stats.shed_deadline_hopeless == 1
        assert service.stats.batches == 0
        # Pre-warmed cache rescues the shed request with a stale answer.
        assert request.answer.status == "degraded"
        assert request.answer.shed_cause == SHED_DEADLINE_HOPELESS

    def test_queue_full_sheds_with_cause(self):
        rig = _small_rig(
            max_queue=2, max_batch=64, admission_rate=1e6,
            admission_burst=1e6,
        )
        service = rig.service
        for v in range(2):
            service.submit([v])
        shed = service.submit([2])
        assert service.stats.shed_queue_full == 1
        assert shed.answer is not None
        assert shed.answer.shed_cause == SHED_QUEUE_FULL
        service.flush()

    def test_shedding_disabled_admits_everything(self):
        rig = _small_rig(shedding=False, max_queue=1, admission_rate=1.0)
        service = rig.service
        for v in range(8):
            service.submit([v])
        assert service.stats.shed_total == 0
        service.flush()
        assert service.stats.answered_fresh == 8

    def test_outage_serves_degraded_without_exceptions(self):
        rig = _small_rig()
        service = rig.service
        shard_for = rig.cluster.client.partitioner.shard_for
        on_zero = [v for v in range(64) if shard_for(v) == 0]
        rig.cluster.crash_shard(0)
        requests = [service.submit([v]) for v in on_zero[:4]]
        service.flush()
        for request in requests:
            assert request.answer is not None
            assert request.answer.status == "degraded"
            assert request.answer.embeddings is not None
        assert service.stats.answered_degraded == 4
        assert service.stats.failed == 0
        assert service.stats.cache_fallbacks == 4

    def test_breaker_opens_then_probes_closed_after_recovery(self):
        rig = _small_rig(breaker_threshold=3, breaker_reset=0.25)
        service, network = rig.service, rig.cluster.network
        shard_for = rig.cluster.client.partitioner.shard_for
        on_zero = [v for v in range(64) if shard_for(v) == 0]
        rig.cluster.crash_shard(0)

        # Three unavailable seeds in one batch trip the shard-0 breaker.
        for v in on_zero[:3]:
            service.submit([v])
        service.flush()
        assert service.breakers[0].state(network.now()) == "open"
        assert service.breakers[0].trips == 1

        # While open, shard-0 requests shed at submit (still rescued).
        shed = service.submit([on_zero[3]])
        assert service.stats.shed_breaker_open >= 1
        assert shed.answer.status == "degraded"
        # Other shards are unaffected.
        on_one = [v for v in range(64) if shard_for(v) == 1]
        fresh = service.submit([on_one[0]])
        service.flush()
        assert fresh.answer.status == "fresh"

        # After the reset timeout a recovered shard closes via one probe.
        rig.cluster.recover_all(sync=True)
        network.sleep(0.3)
        probe = service.submit([on_zero[4]])
        service.flush()
        assert probe.answer.status == "fresh"
        assert service.breakers[0].state(network.now()) == "closed"

    def test_terminal_accounting_invariant(self):
        rig = _small_rig(max_queue=2, max_batch=64)
        service = rig.service
        rig.cluster.crash_shard(0)
        for v in range(16):
            service.submit([v])
        service.flush()
        stats = service.stats
        assert stats.submitted == 16
        assert (
            stats.answered_fresh + stats.answered_degraded + stats.failed
            == stats.submitted
        )
        assert 0.0 <= stats.availability <= 1.0

    def test_metrics_registered_once_per_cluster(self):
        rig = _small_rig()
        registry = rig.cluster.registry
        assert registry.has("repro_serving_submitted")
        # A replacement service on the same cluster must not trip the
        # duplicate-registration guard.
        InferenceService(
            rig.cluster, rig.features, rig.encoder, (3, 2)
        )

    def test_cluster_reset_stats_reaches_the_service(self):
        rig = _small_rig()
        rig.service.submit([1])
        rig.service.flush()
        assert rig.service.stats.submitted == 1
        rig.cluster.reset_stats()
        assert rig.service.stats.submitted == 0
        assert rig.service.stats.answered_fresh == 0


# ---------------------------------------------------------------------------
# scenarios + SLO reports
# ---------------------------------------------------------------------------
class TestScenarios:
    def test_regional_outage_degrades_instead_of_failing(self):
        _rig, report = run_scenario(
            "regional_outage",
            seed=11,
            rig_kwargs={"num_sources": 400, "num_shards": 4},
        )
        assert report.failed == 0
        assert report.sample_errors == 0
        assert report.answered_degraded > 0
        assert report.availability >= 0.99
        assert report.meets_target

    def test_flash_crowd_shedding_beats_the_control_arm(self):
        shed_rig, shed = run_scenario(
            "flash_crowd",
            seed=11,
            rig_kwargs={"num_sources": 400, "num_shards": 4},
        )
        _noshed_rig, noshed = run_scenario(
            "flash_crowd",
            seed=11,
            shedding=False,
            rig_kwargs={"num_sources": 400, "num_shards": 4},
        )
        assert shed.availability >= 0.99
        assert sum(shed.shed.values()) > 0
        assert noshed.availability < shed.availability
        assert sum(noshed.shed.values()) == 0
        # Every shed is accounted to exactly one cause on the service.
        stats = shed_rig.service.stats
        assert stats.shed_total == sum(shed.shed.values())

    def test_report_shape_and_render(self):
        _rig, report = run_scenario(
            "calm", seed=3, rig_kwargs={"num_sources": 200, "num_shards": 2}
        )
        payload = report.to_dict()
        assert payload["scenario"] == "calm"
        assert payload["submitted"] == report.submitted
        assert set(payload["shed"]) == {
            "queue_full", "deadline_hopeless", "breaker_open",
        }
        assert payload["meets_target"] == report.meets_target
        text = report.render()
        assert "calm" in text and "availability" in text

    def test_build_report_validates_target(self):
        rig = _small_rig()
        with pytest.raises(ConfigurationError):
            build_report(rig.service, target_availability=1.0)
        with pytest.raises(ConfigurationError):
            build_report(rig.service, target_availability=0.0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError):
            run_scenario("tsunami")
