"""Tests for the sliding-window temporal store (paper §II-A's G^(t))."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samtree import SamtreeConfig
from repro.core.temporal import TemporalGraphStore
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError


@pytest.fixture
def temporal() -> TemporalGraphStore:
    return TemporalGraphStore(window=10, config=SamtreeConfig(capacity=8))


class TestClock:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TemporalGraphStore(window=0)

    def test_monotone_clock(self, temporal):
        temporal.observe(5, 1, 2)
        with pytest.raises(ConfigurationError):
            temporal.observe(4, 1, 3)
        with pytest.raises(ConfigurationError):
            temporal.advance(1)
        assert temporal.now == 5

    def test_advance_returns_eviction_count(self, temporal):
        temporal.observe(0, 1, 2)
        temporal.observe(0, 1, 3)
        assert temporal.advance(9) == 0
        assert temporal.advance(10) == 2
        assert temporal.num_evicted == 2


class TestWindowSemantics:
    def test_edges_expire_after_window(self, temporal):
        temporal.observe(0, 1, 2, 1.0)
        temporal.advance(9)
        assert temporal.has_edge(1, 2)
        temporal.advance(10)
        assert not temporal.has_edge(1, 2)
        assert temporal.num_edges == 0
        assert temporal.num_sources == 0

    def test_reobservation_refreshes(self, temporal):
        temporal.observe(0, 1, 2, 1.0)
        temporal.observe(8, 1, 2, 1.0)  # refresh
        temporal.advance(12)             # 0+10 passed, 8+10 has not
        assert temporal.has_edge(1, 2)
        temporal.advance(18)
        assert not temporal.has_edge(1, 2)

    def test_accumulation(self, temporal):
        assert temporal.observe(0, 1, 2, 1.0) is True
        assert temporal.observe(3, 1, 2, 2.5) is False
        assert temporal.edge_weight(1, 2) == pytest.approx(3.5)

    def test_replace_mode(self):
        store = TemporalGraphStore(window=10, accumulate=False)
        store.observe(0, 1, 2, 1.0)
        store.observe(1, 1, 2, 2.5)
        assert store.edge_weight(1, 2) == pytest.approx(2.5)

    def test_staggered_expiry(self, temporal):
        for t in range(5):
            temporal.observe(t, 1, 100 + t, 1.0)
        assert temporal.degree(1) == 5
        temporal.advance(12)  # t=0,1,2 expired; t=3,4 alive
        assert temporal.degree(1) == 2
        assert sorted(d for d, _ in temporal.neighbors(1)) == [103, 104]
        temporal.check_invariants()

    def test_sampling_sees_only_live_edges(self, temporal, rng):
        temporal.observe(0, 1, 2, 100.0)
        temporal.observe(9, 1, 3, 1.0)
        temporal.advance(11)
        out = temporal.sample_neighbors(1, 50, rng)
        assert set(out) == {3}

    def test_manual_remove(self, temporal):
        temporal.observe(0, 1, 2)
        assert temporal.remove_edge(1, 2) is True
        assert temporal.remove_edge(1, 2) is False
        temporal.advance(20)  # stale calendar entry must be a no-op
        temporal.check_invariants()

    def test_update_edge_refreshes_window(self, temporal):
        temporal.observe(0, 1, 2, 1.0)
        temporal.advance(5)
        assert temporal.update_edge(1, 2, 7.0) is True
        temporal.advance(12)  # original deadline passed, refreshed at 5
        assert temporal.edge_weight(1, 2) == pytest.approx(7.0)
        assert temporal.update_edge(1, 9, 1.0) is False

    def test_heterogeneous_windows(self, temporal):
        temporal.observe(0, 1, 2, 1.0, etype=0)
        temporal.observe(5, 1, 2, 1.0, etype=1)
        temporal.advance(10)
        assert not temporal.has_edge(1, 2, etype=0)
        assert temporal.has_edge(1, 2, etype=1)

    def test_wraps_existing_store(self):
        inner = DynamicGraphStore(SamtreeConfig(capacity=8))
        temporal = TemporalGraphStore(window=5, store=inner)
        temporal.observe(0, 1, 2, 1.0)
        assert inner.num_edges == 1
        temporal.advance(5)
        assert inner.num_edges == 0

    def test_add_edge_uses_current_clock(self, temporal):
        temporal.advance(7)
        temporal.add_edge(1, 2, 1.0)
        temporal.advance(16)
        assert temporal.has_edge(1, 2)
        temporal.advance(17)
        assert not temporal.has_edge(1, 2)

    def test_nbytes_includes_metadata(self, temporal):
        empty = temporal.nbytes()
        temporal.observe(0, 1, 2)
        assert temporal.nbytes() > empty


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=60),   # time delta
            st.integers(min_value=0, max_value=5),    # src
            st.integers(min_value=0, max_value=20),   # dst
        ),
        min_size=1,
        max_size=150,
    ),
    st.integers(min_value=1, max_value=15),
)
@settings(max_examples=100, deadline=None)
def test_window_matches_reference(events, window):
    """The live edge set always equals the brute-force window filter."""
    temporal = TemporalGraphStore(window=window, config=SamtreeConfig(capacity=4))
    last_seen = {}
    now = 0
    for delta, src, dst in events:
        now += delta
        temporal.observe(now, src, dst, 1.0)
        last_seen[(src, dst)] = now
    expected = {
        key for key, t in last_seen.items() if t + window > now
    }
    live = {
        (src, dst)
        for src in temporal.sources()
        for dst, _ in temporal.neighbors(src)
    }
    assert live == expected
    temporal.check_invariants()
    # Advancing far beyond every deadline drains the graph.
    temporal.advance(now + window + 1)
    assert temporal.num_edges == 0
