"""Tests for the α-Split algorithm (paper §IV-C, Algorithm 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alpha_split import alpha_split, hoare_partition, split_arrays
from repro.errors import ConfigurationError, IndexOutOfRangeError


def _unique_ids(r: random.Random, n: int) -> list:
    return r.sample(range(n * 10), n)


class TestHoarePartition:
    def test_places_pivot_correctly(self):
        ids = [5, 1, 9, 3, 7]
        pos = hoare_partition(ids, 0, 4, 0)  # pivot value 5
        assert ids[pos] == 5
        assert all(v < 5 for v in ids[:pos])
        assert all(v > 5 for v in ids[pos + 1 :])

    def test_moves_companion_in_lockstep(self):
        ids = [30, 10, 20]
        weights = [3.0, 1.0, 2.0]
        hoare_partition(ids, 0, 2, 0, weights)
        assert [weights[ids.index(v)] for v in (10, 20, 30)] == [1.0, 2.0, 3.0]

    def test_window_partition(self):
        ids = [100, 4, 2, 8, 6, 200]
        pos = hoare_partition(ids, 1, 4, 2)  # pivot value 2 within window
        assert ids[0] == 100 and ids[5] == 200  # outside window untouched
        assert ids[pos] == 2

    def test_bad_pivot_index(self):
        with pytest.raises(IndexOutOfRangeError):
            hoare_partition([1, 2, 3], 0, 2, 5)


class TestAlphaSplit:
    def test_exact_median_when_alpha_zero(self):
        """α = 0 degenerates to QuickSelect (paper remark)."""
        r = random.Random(0)
        for n in (2, 3, 5, 8, 17, 64, 129):
            ids = _unique_ids(r, n)
            pos = alpha_split(ids, alpha=0)
            assert pos == n // 2
            assert max(ids[:pos]) < min(ids[pos:])

    def test_alpha_relaxed_inequality(self):
        """The returned pivot satisfies |p - k| <= α (Equation 3)."""
        r = random.Random(1)
        for alpha in (1, 2, 5, 10):
            for _ in range(20):
                n = r.randrange(8, 200)
                ids = _unique_ids(r, n)
                pos = alpha_split(ids, alpha=alpha)
                assert abs(pos - n // 2) <= alpha
                assert 0 < pos < n
                assert max(ids[:pos]) < min(ids[pos:])

    def test_explicit_target_position(self):
        r = random.Random(2)
        ids = _unique_ids(r, 50)
        pos = alpha_split(ids, k=10, alpha=0)
        assert pos == 10
        assert max(ids[:10]) < min(ids[10:])

    def test_companion_follows(self):
        r = random.Random(3)
        ids = _unique_ids(r, 30)
        weights = [float(v) * 2 for v in ids]
        alpha_split(ids, alpha=0, companion=weights)
        assert weights == [float(v) * 2 for v in ids]

    def test_validation(self):
        with pytest.raises(IndexOutOfRangeError):
            alpha_split([], alpha=0)
        with pytest.raises(ConfigurationError):
            alpha_split([1, 2], alpha=-1)
        with pytest.raises(IndexOutOfRangeError):
            alpha_split([1, 2], k=5)
        with pytest.raises(ConfigurationError):
            alpha_split([1, 2], companion=[1.0])

    def test_two_elements(self):
        ids = [9, 4]
        pos = alpha_split(ids, alpha=0)
        assert pos == 1
        assert ids == [4, 9]

    def test_already_sorted_and_reversed(self):
        for ids in ([1, 2, 3, 4, 5, 6], [6, 5, 4, 3, 2, 1]):
            work = list(ids)
            pos = alpha_split(work, alpha=0)
            assert pos == 3
            assert max(work[:3]) < min(work[3:])


class TestSplitArrays:
    def test_separator_is_right_minimum(self):
        r = random.Random(4)
        ids = _unique_ids(r, 41)
        weights = [r.random() for _ in ids]
        pairs = dict(zip(ids, weights))
        left_ids, left_w, right_ids, right_w, sep = split_arrays(
            ids, weights, alpha=0
        )
        assert sep == min(right_ids)
        assert max(left_ids) < sep
        assert dict(zip(left_ids + right_ids, left_w + right_w)) == pairs
        assert len(left_ids) + len(right_ids) == len(ids)

    def test_both_halves_nonempty(self):
        r = random.Random(5)
        for alpha in (0, 3, 100):
            ids = _unique_ids(r, 9)
            weights = [1.0] * 9
            left_ids, _, right_ids, _, _ = split_arrays(ids, weights, alpha)
            assert left_ids and right_ids


@given(
    st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=2,
             max_size=300, unique=True),
    st.integers(min_value=0, max_value=20),
)
@settings(max_examples=150)
def test_alpha_split_property(ids, alpha):
    """For any unique ID set and slack: bipartition holds, both halves
    are non-empty, and the position honours the α window."""
    work = list(ids)
    n = len(work)
    pos = alpha_split(work, alpha=alpha)
    assert 0 < pos < n
    assert max(work[:pos]) < min(work[pos:])
    assert sorted(work) == sorted(ids)
    if alpha == 0:
        assert pos == n // 2
    else:
        assert max(1, n // 2 - alpha) <= pos <= min(n - 1, n // 2 + alpha)
