"""Tests for the neighbor-sampling strategy layer (repro.core.sampling)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samtree import Samtree, SamtreeConfig
from repro.core.sampling import (
    TopKByWeight,
    UniformWithReplacement,
    WeightedWithReplacement,
    WeightedWithoutReplacement,
    make_strategy,
)
from repro.errors import ConfigurationError


def make_tree(weights: dict, capacity: int = 8) -> Samtree:
    tree = Samtree(SamtreeConfig(capacity=capacity))
    for vid, w in weights.items():
        tree.insert(vid, w)
    return tree


class TestFactory:
    def test_known_names(self):
        for name, cls in [
            ("weighted", WeightedWithReplacement),
            ("weighted_distinct", WeightedWithoutReplacement),
            ("uniform", UniformWithReplacement),
            ("topk", TopKByWeight),
        ]:
            assert isinstance(make_strategy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_strategy("nope")

    def test_kwargs_forwarded(self):
        strategy = make_strategy("weighted_distinct", max_rounds=3)
        assert strategy.max_rounds == 3
        with pytest.raises(ConfigurationError):
            make_strategy("weighted_distinct", max_rounds=0)


class TestWeightedWithReplacement:
    def test_distribution(self, rng):
        tree = make_tree({1: 1.0, 2: 9.0})
        out = WeightedWithReplacement().sample(tree, 10_000, rng)
        assert len(out) == 10_000
        assert out.count(2) / 10_000 == pytest.approx(0.9, abs=0.02)

    def test_empty_and_zero(self, rng):
        strategy = WeightedWithReplacement()
        assert strategy.sample(make_tree({}), 5, rng) == []
        assert strategy.sample(make_tree({1: 1.0}), 0, rng) == []
        with pytest.raises(ConfigurationError):
            strategy.sample(make_tree({1: 1.0}), -1, rng)


class TestWeightedWithoutReplacement:
    def test_distinct(self, rng):
        tree = make_tree({v: 1.0 + v for v in range(50)})
        out = WeightedWithoutReplacement().sample(tree, 20, rng)
        assert len(out) == 20
        assert len(set(out)) == 20

    def test_k_exceeding_degree_returns_all(self, rng):
        tree = make_tree({v: 1.0 for v in range(7)})
        out = WeightedWithoutReplacement().sample(tree, 100, rng)
        assert sorted(out) == list(range(7))

    def test_biased_towards_heavy(self, rng):
        weights = {v: 0.01 for v in range(40)}
        weights[99] = 100.0
        tree = make_tree(weights)
        hits = sum(
            99 in WeightedWithoutReplacement().sample(tree, 5, rng)
            for _ in range(200)
        )
        assert hits > 190  # virtually always selected

    def test_rejection_exhaustion_falls_back(self, rng):
        # One dominant neighbor forces heavy rejection; the fallback must
        # still deliver k distinct IDs.
        weights = {v: 1e-9 for v in range(30)}
        weights[7] = 1e9
        tree = make_tree(weights)
        out = WeightedWithoutReplacement(max_rounds=1).sample(tree, 10, rng)
        assert len(out) == 10
        assert len(set(out)) == 10
        assert 7 in out


class TestUniform:
    def test_ignores_weights(self, rng):
        tree = make_tree({1: 1000.0, 2: 0.001})
        out = UniformWithReplacement().sample(tree, 8000, rng)
        assert out.count(1) / 8000 == pytest.approx(0.5, abs=0.03)


class TestTopK:
    def test_heaviest_selected(self, rng):
        tree = make_tree({v: float(v) for v in range(1, 21)})
        out = TopKByWeight().sample(tree, 5, rng)
        assert sorted(out) == [16, 17, 18, 19, 20]

    def test_deterministic_tie_break(self, rng):
        tree = make_tree({5: 1.0, 3: 1.0, 9: 1.0})
        out1 = TopKByWeight().sample(tree, 2, rng)
        out2 = TopKByWeight().sample(tree, 2, random.Random(99))
        assert out1 == out2  # ties broken by ID, not randomness

    def test_k_larger_than_degree(self, rng):
        tree = make_tree({1: 1.0, 2: 2.0})
        assert sorted(TopKByWeight().sample(tree, 10, rng)) == [1, 2]


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.integers(min_value=0, max_value=80),
    st.sampled_from(["weighted", "weighted_distinct", "uniform", "topk"]),
)
@settings(max_examples=100, deadline=None)
def test_all_strategies_return_valid_neighbors(adj, k, name):
    """Every strategy returns only stored IDs and respects its contract."""
    tree = make_tree(adj)
    out = make_strategy(name).sample(tree, k, random.Random(0))
    assert all(vid in adj for vid in out)
    if name in ("weighted", "uniform"):
        assert len(out) == (k if adj else 0)
    else:
        assert len(out) == min(k, len(adj))
        assert len(set(out)) == len(out)
