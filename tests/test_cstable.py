"""Unit tests for the CSTable / ITS baseline index (paper §II-B)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cstable import CSTable
from repro.errors import (
    EmptyStructureError,
    IndexOutOfRangeError,
    InvalidWeightError,
)


class TestConstruction:
    def test_equation_2_prefix_sums(self):
        """C[i] is the strict prefix sum (paper Equation 2), e.g. the
        Figure 3 example: weights 0.6, 0.7 → C = [0.6, 1.3]."""
        table = CSTable([0.6, 0.7])
        assert table.prefix_sum(0) == pytest.approx(0.6)
        assert table.prefix_sum(1) == pytest.approx(1.3)

    def test_empty(self):
        table = CSTable()
        assert len(table) == 0
        assert table.total() == 0.0
        assert table.to_weights() == []

    def test_rejects_bad_weights(self):
        for bad in (-0.5, float("nan"), float("inf")):
            with pytest.raises(InvalidWeightError):
                CSTable([bad])


class TestQueries:
    def test_weight_recovery(self):
        weights = [0.5, 0.2, 0.4, 1.1]
        table = CSTable(weights)
        for i, w in enumerate(weights):
            assert table.weight(i) == pytest.approx(w)

    def test_iteration(self):
        weights = [1.0, 2.0, 3.0]
        assert list(CSTable(weights)) == pytest.approx(weights)

    def test_bounds(self):
        table = CSTable([1.0])
        with pytest.raises(IndexOutOfRangeError):
            table.weight(1)
        with pytest.raises(IndexOutOfRangeError):
            table.prefix_sum(-1)


class TestUpdates:
    def test_append_is_o1_semantics(self):
        table = CSTable([1.0])
        assert table.append(2.0) == 1
        assert table.prefix_sum(1) == pytest.approx(3.0)

    def test_update_rewrites_suffix(self):
        table = CSTable([1.0, 2.0, 3.0])
        old = table.update(0, 10.0)
        assert old == pytest.approx(1.0)
        assert table.to_weights() == pytest.approx([10.0, 2.0, 3.0])
        assert table.prefix_sum(2) == pytest.approx(15.0)

    def test_delete_shifts(self):
        table = CSTable([1.0, 2.0, 3.0])
        assert table.delete(1) == pytest.approx(2.0)
        assert table.to_weights() == pytest.approx([1.0, 3.0])

    def test_insert_middle(self):
        table = CSTable([1.0, 3.0])
        table.insert(1, 2.0)
        assert table.to_weights() == pytest.approx([1.0, 2.0, 3.0])
        table.insert(0, 0.5)
        assert table.to_weights() == pytest.approx([0.5, 1.0, 2.0, 3.0])
        table.insert(4, 4.0)
        assert table.to_weights() == pytest.approx([0.5, 1.0, 2.0, 3.0, 4.0])
        with pytest.raises(IndexOutOfRangeError):
            table.insert(6, 1.0)

    def test_add_delta(self):
        table = CSTable([1.0, 2.0])
        table.add(0, 0.5)
        assert table.to_weights() == pytest.approx([1.5, 2.0])
        with pytest.raises(InvalidWeightError):
            table.add(0, float("inf"))


class TestSampling:
    def test_search_its_rule(self):
        table = CSTable([0.5, 0.2, 0.3])
        assert table.search(0.0) == 0
        assert table.search(0.49) == 0
        assert table.search(0.5) == 1
        assert table.search(0.69) == 1
        assert table.search(0.7) == 2
        assert table.search(0.999) == 2

    def test_search_clamps_overflow_mass(self):
        table = CSTable([1.0, 1.0])
        assert table.search(2.5) == 1

    def test_search_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            CSTable().search(0.0)
        with pytest.raises(EmptyStructureError):
            CSTable().sample()

    def test_negative_mass_rejected(self):
        with pytest.raises(InvalidWeightError):
            CSTable([1.0]).search(-1e-9)

    def test_sample_distribution(self):
        table = CSTable([2.0, 8.0])
        r = random.Random(0)
        hits = sum(table.sample(r) for _ in range(20000))
        assert hits / 20000 == pytest.approx(0.8, abs=0.02)

    def test_sample_zero_weights_uniform(self):
        table = CSTable([0.0, 0.0])
        r = random.Random(1)
        assert {table.sample(r) for _ in range(50)} == {0, 1}

    def test_sample_many(self):
        out = CSTable([1.0]).sample_many(5)
        assert out == [0] * 5
        with pytest.raises(IndexOutOfRangeError):
            CSTable([1.0]).sample_many(-2)


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        min_size=0,
        max_size=100,
    )
)
def test_roundtrip_property(weights):
    assert CSTable(weights).to_weights() == pytest.approx(
        weights, rel=1e-9, abs=1e-9
    )


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["append", "update", "delete", "insert"]),
            st.floats(min_value=0.0, max_value=9.0, allow_nan=False),
            st.integers(min_value=0, max_value=1000),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_op_sequence_property(ops):
    table = CSTable()
    ref = []
    for kind, w, raw in ops:
        if kind == "append" or not ref:
            table.append(w)
            ref.append(w)
        elif kind == "update":
            i = raw % len(ref)
            table.update(i, w)
            ref[i] = w
        elif kind == "insert":
            i = raw % (len(ref) + 1)
            table.insert(i, w)
            ref.insert(i, w)
        else:
            i = raw % len(ref)
            table.delete(i)
            ref.pop(i)
    assert table.to_weights() == pytest.approx(ref, rel=1e-9, abs=1e-9)
