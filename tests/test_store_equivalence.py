"""Cross-system equivalence: PlatoD2GL, PlatoGL and AliGraph must expose
identical graph state for any dynamic-update sequence (DESIGN.md §7) —
the property that makes the benchmark comparisons meaningful.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.aligraph import AliGraphStore
from repro.baselines.platogl import PlatoGLStore
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore

ops_st = st.lists(
    st.tuples(
        st.sampled_from(["add", "update", "remove"]),
        st.integers(min_value=0, max_value=8),    # src
        st.integers(min_value=0, max_value=60),   # dst
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
    ),
    min_size=1,
    max_size=200,
)


def _stores():
    return [
        DynamicGraphStore(SamtreeConfig(capacity=4)),
        DynamicGraphStore(SamtreeConfig(capacity=8, alpha=2, compress=False)),
        PlatoGLStore(block_size=4),
        AliGraphStore(),
    ]


@given(ops_st)
@settings(max_examples=120, deadline=None)
def test_all_stores_agree(ops):
    stores = _stores()
    ref = {}
    for kind, src, dst, w in ops:
        if kind == "add":
            expected_new = (src, dst) not in ref
            for s in stores:
                assert s.add_edge(src, dst, w) == expected_new
            ref[(src, dst)] = w
        elif kind == "update":
            expected = (src, dst) in ref
            for s in stores:
                assert s.update_edge(src, dst, w) == expected
            if expected:
                ref[(src, dst)] = w
        else:
            expected = (src, dst) in ref
            for s in stores:
                assert s.remove_edge(src, dst) == expected
            ref.pop((src, dst), None)

    srcs = {k[0] for k in ref}
    for s in stores:
        assert s.num_edges == len(ref)
        assert s.num_sources == len(srcs)
        got = {}
        for src in srcs:
            assert s.degree(src) == sum(1 for k in ref if k[0] == src)
            for dst, w in s.neighbors(src):
                got[(src, dst)] = w
        assert got.keys() == ref.keys()
        for k, w in ref.items():
            assert got[k] == pytest.approx(w)
    stores[0].check_invariants()
    stores[1].check_invariants()


@given(ops_st)
@settings(max_examples=40, deadline=None)
def test_total_weights_agree(ops):
    stores = _stores()
    for kind, src, dst, w in ops:
        for s in stores:
            if kind == "add":
                s.add_edge(src, dst, w)
            elif kind == "update":
                s.update_edge(src, dst, w)
            else:
                s.remove_edge(src, dst)
    d2gl = stores[0]
    for src in set(op[1] for op in ops):
        expected = sum(w for _, w in d2gl.neighbors(src))
        for s in stores[1:]:
            assert sum(w for _, w in s.neighbors(src)) == pytest.approx(
                expected, abs=1e-6
            )
