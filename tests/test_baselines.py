"""Tests for the PlatoGL and AliGraph baseline reimplementations."""

from __future__ import annotations

import random

import pytest

from repro.baselines.aligraph import AliasTable, AliGraphStore
from repro.baselines.platogl import PlatoGLStore
from repro.core.memory import DEFAULT_MEMORY_MODEL
from repro.errors import ConfigurationError, EmptyStructureError


class TestPlatoGL:
    def test_block_overflow_creates_new_block(self):
        store = PlatoGLStore(block_size=4)
        for i in range(10):
            store.add_edge(1, i, 1.0)
        assert store.degree(1) == 10
        # 10 neighbors at block size 4 → 3 blocks behind the KV store.
        head = store._head(1, 0)
        assert head.num_blocks == 3

    def test_overwrite_semantics(self):
        store = PlatoGLStore(block_size=4)
        assert store.add_edge(1, 2, 1.0) is True
        assert store.add_edge(1, 2, 5.0) is False
        assert store.edge_weight(1, 2) == pytest.approx(5.0)

    def test_update_and_delete_across_blocks(self):
        store = PlatoGLStore(block_size=3)
        for i in range(9):
            store.add_edge(1, i, float(i + 1))
        assert store.update_edge(1, 7, 99.0) is True
        assert store.edge_weight(1, 7) == pytest.approx(99.0)
        assert store.remove_edge(1, 4) is True
        assert store.edge_weight(1, 4) is None
        assert store.degree(1) == 8
        assert store.update_edge(1, 4, 1.0) is False
        assert store.remove_edge(1, 4) is False

    def test_empty_source_cleanup(self):
        store = PlatoGLStore(block_size=2)
        for i in range(5):
            store.add_edge(3, i)
        for i in range(5):
            store.remove_edge(3, i)
        assert store.num_sources == 0
        assert store.num_edges == 0
        assert store.neighbors(3) == []

    def test_its_distribution_across_blocks(self):
        store = PlatoGLStore(block_size=3)  # force multiple blocks
        weights = {i: float(i % 4 + 1) for i in range(12)}
        for dst, w in weights.items():
            store.add_edge(1, dst, w)
        total = sum(weights.values())
        r = random.Random(0)
        out = store.sample_neighbors(1, 40000, r)
        for klass in range(4):
            expect = sum(w for d, w in weights.items() if d % 4 == klass) / total
            got = sum(1 for d in out if d % 4 == klass) / len(out)
            assert got == pytest.approx(expect, abs=0.02)

    def test_sampling_missing_source(self):
        assert PlatoGLStore().sample_neighbors(9, 5) == []

    def test_zero_weight_source_raises(self):
        store = PlatoGLStore()
        store.add_edge(1, 2, 0.0)
        with pytest.raises(EmptyStructureError):
            store.sample_neighbors(1, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlatoGLStore(block_size=0)

    def test_heterogeneous(self):
        store = PlatoGLStore(block_size=4)
        store.add_edge(1, 2, 1.0, etype=0)
        store.add_edge(1, 2, 2.0, etype=1)
        assert store.edge_weight(1, 2, etype=0) == pytest.approx(1.0)
        assert store.edge_weight(1, 2, etype=1) == pytest.approx(2.0)
        assert sorted(store.sources(etype=1)) == [1]

    def test_preallocated_block_accounting(self):
        """A partially filled block pays its full capacity (Table IV's
        mechanism for PlatoGL's footprint at low density)."""
        sparse = PlatoGLStore(block_size=128)
        sparse.add_edge(1, 2, 1.0)
        dense = PlatoGLStore(block_size=128)
        for i in range(128):
            dense.add_edge(1, i, 1.0)
        # Same block count → the 1-edge source pays most of the dense
        # source's footprint (only the CSTable scales with fill).
        assert sparse.nbytes() >= 0.6 * dense.nbytes()


class TestAliasTable:
    def test_distribution(self):
        table = AliasTable([1.0, 3.0, 6.0])
        r = random.Random(1)
        counts = [0, 0, 0]
        for _ in range(30000):
            counts[table.sample(r)] += 1
        assert counts[0] / 30000 == pytest.approx(0.1, abs=0.02)
        assert counts[2] / 30000 == pytest.approx(0.6, abs=0.02)

    def test_zero_weights_uniform(self):
        table = AliasTable([0.0, 0.0])
        r = random.Random(2)
        assert {table.sample(r) for _ in range(50)} == {0, 1}

    def test_empty_raises(self):
        with pytest.raises(EmptyStructureError):
            AliasTable([]).sample()

    def test_single_element(self):
        assert AliasTable([5.0]).sample(random.Random(3)) == 0


class TestAliGraph:
    def test_crud(self):
        store = AliGraphStore()
        assert store.add_edge(1, 2, 1.0) is True
        assert store.add_edge(1, 2, 3.0) is False
        assert store.edge_weight(1, 2) == pytest.approx(3.0)
        assert store.update_edge(1, 2, 4.0) is True
        assert store.update_edge(1, 9, 4.0) is False
        assert store.remove_edge(1, 2) is True
        assert store.remove_edge(1, 2) is False
        assert store.num_sources == 0

    def test_alias_rebuilt_on_update(self):
        store = AliGraphStore()
        store.add_edge(1, 10, 1.0)
        store.add_edge(1, 20, 1.0)
        store.update_edge(1, 20, 99.0)
        out = store.sample_neighbors(1, 2000, random.Random(4))
        assert out.count(20) / 2000 > 0.95

    def test_swap_delete_keeps_index_consistent(self):
        store = AliGraphStore()
        for i in range(10):
            store.add_edge(1, i, float(i + 1))
        store.remove_edge(1, 0)  # last element swaps into slot 0
        assert store.edge_weight(1, 9) == pytest.approx(10.0)
        assert store.degree(1) == 9
        assert dict(store.neighbors(1)) == pytest.approx(
            {i: float(i + 1) for i in range(1, 10)}
        )

    def test_peak_exceeds_steady(self):
        store = AliGraphStore()
        for i in range(100):
            store.add_edge(i % 5, i, 1.0)
        model = DEFAULT_MEMORY_MODEL
        assert store.peak_nbytes(model) == int(
            store.nbytes(model) * model.aligraph_build_peak_factor
        )
        assert store.peak_nbytes(model) > store.nbytes(model)

    def test_duplication_factor_in_accounting(self):
        store = AliGraphStore()
        for i in range(1000):
            store.add_edge(1, i, 1.0)
        model = DEFAULT_MEMORY_MODEL
        per_edge = store.nbytes(model) / 1000
        floor = model.aligraph_duplication_factor * (
            model.id_bytes + model.weight_bytes
        )
        assert per_edge > floor
