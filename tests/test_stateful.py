"""Hypothesis stateful (rule-based) machines for the store stack.

These machines drive long, adversarial interleavings that example-based
tests cannot enumerate: every rule application cross-checks the samtree
store against a dict-of-dicts model, and the temporal machine checks the
window semantics against a brute-force filter.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.baselines.platogl import PlatoGLStore
from repro.core.samtree import SamtreeConfig
from repro.core.temporal import TemporalGraphStore
from repro.core.topology import DynamicGraphStore

SRC = st.integers(min_value=0, max_value=6)
DST = st.integers(min_value=0, max_value=30)
WEIGHT = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)
ETYPE = st.sampled_from([0, 1])


class StoreMachine(RuleBasedStateMachine):
    """DynamicGraphStore + PlatoGL vs a dict-of-dicts reference model."""

    def __init__(self) -> None:
        super().__init__()
        self.store = DynamicGraphStore(SamtreeConfig(capacity=4, alpha=1))
        self.platogl = PlatoGLStore(block_size=4)
        self.model: dict = {}

    @rule(src=SRC, dst=DST, w=WEIGHT, etype=ETYPE)
    def add(self, src, dst, w, etype):
        expected_new = (etype, src, dst) not in self.model
        assert self.store.add_edge(src, dst, w, etype) == expected_new
        assert self.platogl.add_edge(src, dst, w, etype) == expected_new
        self.model[(etype, src, dst)] = w

    @rule(src=SRC, dst=DST, w=WEIGHT, etype=ETYPE)
    def update(self, src, dst, w, etype):
        expected = (etype, src, dst) in self.model
        assert self.store.update_edge(src, dst, w, etype) == expected
        assert self.platogl.update_edge(src, dst, w, etype) == expected
        if expected:
            self.model[(etype, src, dst)] = w

    @rule(src=SRC, dst=DST, etype=ETYPE)
    def remove(self, src, dst, etype):
        expected = (etype, src, dst) in self.model
        assert self.store.remove_edge(src, dst, etype) == expected
        assert self.platogl.remove_edge(src, dst, etype) == expected
        self.model.pop((etype, src, dst), None)

    @rule(src=SRC, etype=ETYPE)
    def read_neighbors(self, src, etype):
        expected = {
            dst: w
            for (e, s, dst), w in self.model.items()
            if e == etype and s == src
        }
        got = dict(self.store.neighbors(src, etype))
        assert got.keys() == expected.keys()
        for k, w in expected.items():
            assert got[k] == pytest.approx(w)
        assert self.store.degree(src, etype) == len(expected)
        assert self.platogl.degree(src, etype) == len(expected)

    @invariant()
    def counters_match(self):
        assert self.store.num_edges == len(self.model)
        assert self.platogl.num_edges == len(self.model)

    @invariant()
    def structure_valid(self):
        self.store.check_invariants()


class TemporalMachine(RuleBasedStateMachine):
    """TemporalGraphStore vs a brute-force (last_seen, window) filter."""

    WINDOW = 7

    def __init__(self) -> None:
        super().__init__()
        self.temporal = TemporalGraphStore(
            self.WINDOW, config=SamtreeConfig(capacity=4)
        )
        self.last_seen: dict = {}
        self.now = 0

    def _expire(self):
        self.last_seen = {
            k: t
            for k, t in self.last_seen.items()
            if t + self.WINDOW > self.now
        }

    @rule(src=SRC, dst=DST, w=WEIGHT, delta=st.integers(min_value=0, max_value=4))
    def observe(self, src, dst, w, delta):
        self.now += delta
        self.temporal.observe(self.now, src, dst, w)
        self._expire()
        self.last_seen[(src, dst)] = self.now

    @rule(delta=st.integers(min_value=0, max_value=12))
    def advance(self, delta):
        self.now += delta
        self.temporal.advance(self.now)
        self._expire()

    @rule(src=SRC, dst=DST)
    def remove(self, src, dst):
        expected = (src, dst) in self.last_seen
        assert self.temporal.remove_edge(src, dst) == expected
        self.last_seen.pop((src, dst), None)

    @invariant()
    def live_set_matches(self):
        live = {
            (s, d)
            for s in self.temporal.sources()
            for d, _ in self.temporal.neighbors(s)
        }
        assert live == set(self.last_seen)

    @invariant()
    def structure_valid(self):
        self.temporal.check_invariants()


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)

TestTemporalMachine = TemporalMachine.TestCase
TestTemporalMachine.settings = settings(
    max_examples=40, stateful_step_count=60, deadline=None
)
