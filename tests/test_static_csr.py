"""Tests for the static-system baseline (rebuild-on-read semantics)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.static_csr import StaticCSRStore
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore


class TestCRUD:
    def test_basic(self):
        store = StaticCSRStore()
        assert store.add_edge(1, 2, 0.5) is True
        assert store.add_edge(1, 2, 0.7) is False
        assert store.edge_weight(1, 2) == pytest.approx(0.7)
        assert store.update_edge(1, 2, 0.9) is True
        assert store.update_edge(1, 9, 1.0) is False
        assert store.remove_edge(1, 2) is True
        assert store.remove_edge(1, 2) is False
        assert store.num_edges == 0
        assert store.num_sources == 0

    def test_neighbors_sorted_csr(self):
        store = StaticCSRStore()
        for dst in (5, 1, 9, 3):
            store.add_edge(7, dst, float(dst))
        assert store.neighbors(7) == [
            (1, 1.0), (3, 3.0), (5, 5.0), (9, 9.0)
        ]
        assert store.degree(7) == 4
        assert store.degree(8) == 0

    def test_heterogeneous(self):
        store = StaticCSRStore()
        store.add_edge(1, 2, 1.0, etype=0)
        store.add_edge(1, 3, 2.0, etype=5)
        assert store.edge_weight(1, 3, etype=0) is None
        assert store.edge_weight(1, 3, etype=5) == pytest.approx(2.0)
        assert list(store.sources(etype=5)) == [1]


class TestRebuildSemantics:
    def test_reads_trigger_rebuild_once(self):
        store = StaticCSRStore()
        for i in range(100):
            store.add_edge(1, i, 1.0)
        assert store.rebuild_count == 0
        store.degree(1)
        assert store.rebuild_count == 1
        store.neighbors(1)
        store.sample_neighbors(1, 5)
        assert store.rebuild_count == 1  # clean: no further rebuilds

    def test_every_write_read_cycle_rebuilds(self):
        store = StaticCSRStore()
        for i in range(50):
            store.add_edge(1, i, 1.0)
            store.degree(1)  # read after write → rebuild
        assert store.rebuild_count == 50

    def test_rebuild_cost_scales_with_graph(self):
        """The rebuild touches the whole graph, not the changed row —
        the O(E) cost that disqualifies static systems (paper §I)."""
        import time

        def cycle_cost(n):
            store = StaticCSRStore()
            for i in range(n):
                store.add_edge(i % 50, i, 1.0)
            store.degree(0)
            start = time.perf_counter()
            for j in range(20):
                store.add_edge(1, 10**6 + j, 1.0)
                store.degree(1)
            return time.perf_counter() - start

        small, large = cycle_cost(1000), cycle_cost(20000)
        assert large > 4 * small

    def test_sampling_distribution(self):
        store = StaticCSRStore()
        store.add_edge(1, 10, 1.0)
        store.add_edge(1, 20, 9.0)
        out = store.sample_neighbors(1, 10000, random.Random(0))
        assert out.count(20) / 10000 == pytest.approx(0.9, abs=0.02)

    def test_sampling_zero_weights(self):
        store = StaticCSRStore()
        store.add_edge(1, 10, 0.0)
        store.add_edge(1, 20, 0.0)
        assert set(store.sample_neighbors(1, 100, random.Random(1))) == {10, 20}

    def test_sampling_missing(self):
        assert StaticCSRStore().sample_neighbors(1, 5) == []

    def test_nbytes(self):
        store = StaticCSRStore()
        for i in range(100):
            store.add_edge(1, i, 1.0)
        assert store.nbytes() > 100 * 12  # ids + weights at least


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["add", "update", "remove"]),
            st.integers(min_value=0, max_value=6),
            st.integers(min_value=0, max_value=40),
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        ),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=80, deadline=None)
def test_agrees_with_dynamic_store(ops):
    static = StaticCSRStore()
    dynamic = DynamicGraphStore(SamtreeConfig(capacity=4))
    for kind, src, dst, w in ops:
        if kind == "add":
            assert static.add_edge(src, dst, w) == dynamic.add_edge(src, dst, w)
        elif kind == "update":
            assert static.update_edge(src, dst, w) == dynamic.update_edge(
                src, dst, w
            )
        else:
            assert static.remove_edge(src, dst) == dynamic.remove_edge(src, dst)
    assert static.num_edges == dynamic.num_edges
    for src in set(op[1] for op in ops):
        a = dict(static.neighbors(src))
        b = dict(dynamic.neighbors(src))
        assert a.keys() == b.keys()
        for k in a:
            assert a[k] == pytest.approx(b[k])
