"""Tests for the skew-aware serving layer: TinyLFU cache admission,
request coalescing, and hot-replica read spreading / write coherence."""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.snapshot import SnapshotCache
from repro.core.topology import DynamicGraphStore
from repro.distributed import LocalCluster

try:  # scipy is part of the baked toolchain, but degrade gracefully.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    return float(0.5 * (1.0 - np.math.erf(z / np.sqrt(2.0))))


def _store_with_sources(num_sources: int, degree: int) -> DynamicGraphStore:
    store = DynamicGraphStore(config=SamtreeConfig(capacity=16))
    rng = np.random.default_rng(11)
    for src in range(num_sources):
        for dst in rng.integers(0, 1 << 20, degree):
            store.add_edge(src, int(dst), 1.0)
    return store


class TestAdmission:
    def _scan_workload(self, admission: bool) -> SnapshotCache:
        """Warm a small hot set, then scan one-hit wonders through."""
        store = _store_with_sources(120, 8)
        # Budget fits ~6 degree-8 snapshots: the hot set exactly.
        cache = SnapshotCache(
            capacity_bytes=6 * 8 * 16, min_degree=0, admission=admission
        )
        store.snapshot_cache = cache
        rng = np.random.default_rng(5)
        hot = list(range(6))
        for _ in range(10):  # train frequencies + fill the cache
            store.sample_neighbors_many(hot, 4, rng)
        for scan in range(6, 120):  # one access each, never again
            store.sample_neighbors_many([scan], 4, rng)
        return cache

    def test_scan_does_not_evict_hot_entries(self):
        cache = self._scan_workload(admission=True)
        cached = {src for _, src in cache.keys()}
        assert set(range(6)) <= cached
        assert cache.stats.admission_rejects > 0

    def test_plain_lru_loses_hot_entries_to_scan(self):
        # The contrast case: without admission the same scan flushes the
        # hot set (this is the failure mode TinyLFU exists for).
        cache = self._scan_workload(admission=False)
        cached = {src for _, src in cache.keys()}
        assert not (set(range(6)) & cached)
        assert cache.stats.admission_rejects == 0

    def test_admitted_when_hotter_than_victim(self):
        store = _store_with_sources(4, 8)
        cache = SnapshotCache(
            capacity_bytes=1 * 8 * 16, min_degree=0, admission=True
        )
        store.snapshot_cache = cache
        rng = np.random.default_rng(5)
        store.sample_neighbors_many([0], 4, rng)  # cached, frequency 1
        for _ in range(3):  # source 1 becomes clearly hotter
            store.sample_neighbors_many([1], 4, rng)
        assert {src for _, src in cache.keys()} == {1}
        assert cache.stats.evictions == 1


class TestCoalescing:
    def _cluster(self, coalesce: bool) -> LocalCluster:
        cluster = LocalCluster(num_servers=2, coalesce=coalesce)
        # One heavily-skewed source plus a second shard-mate.
        weights = [10.0, 5.0, 2.0, 2.0, 1.0]
        for dst, w in enumerate(weights):
            cluster.client.add_edge(7, 100 + dst, w)
            cluster.client.add_edge(8, 100 + dst, w)
        return cluster

    def test_counters_and_rate(self):
        cluster = self._cluster(coalesce=True)
        stats = cluster.client.serving_stats
        frontier = [7, 8, 7, 7, 8]
        cluster.client.sample_neighbors_many(
            frontier, 2, np.random.default_rng(0)
        )
        assert stats.batches == 1
        assert stats.sources == 5
        assert stats.distinct_sources == 2
        assert stats.coalesced_sources == 3
        assert stats.grouped_rpcs >= 1
        assert stats.coalesce_rate == pytest.approx(3 / 5)

    def test_duplicates_get_independent_draws(self):
        # Every occurrence of a coalesced source must receive its own
        # draws (server-side expansion), not copies of one row.
        cluster = self._cluster(coalesce=True)
        rows = cluster.client.sample_neighbors_many(
            [7] * 400, 1, np.random.default_rng(1)
        )
        counts = Counter(int(r[0]) for r in rows)
        assert len(counts) == 5  # all five neighbors appear
        weights = np.array([10.0, 5.0, 2.0, 2.0, 1.0])
        expected = 400 * weights / weights.sum()
        observed = [counts[100 + i] for i in range(5)]
        assert _chi2_pvalue(observed, expected) > 0.01

    def test_distribution_matches_uncoalesced_path(self):
        weights = np.array([10.0, 5.0, 2.0, 2.0, 1.0])
        expected = 200 * weights / weights.sum()
        for coalesce in (False, True):
            cluster = self._cluster(coalesce=coalesce)
            rows = cluster.client.sample_neighbors_many(
                [7, 8, 7] * 200, 1, np.random.default_rng(2)
            )
            counts = Counter(int(rows[i][0]) for i in range(0, 600, 3))
            observed = [counts.get(100 + i, 0) for i in range(5)]
            assert _chi2_pvalue(observed, expected) > 0.01, coalesce

    def test_uncoalesced_window_has_no_grouped_rpcs(self):
        cluster = self._cluster(coalesce=False)
        stats = cluster.client.serving_stats
        cluster.client.sample_neighbors_many(
            [7, 8, 7, 7], 2, np.random.default_rng(0)
        )
        assert stats.grouped_rpcs == 0
        assert stats.coalesced_sources == 0
        assert stats.shard_rpcs >= 1


def _hot_cluster(num_servers: int = 4) -> LocalCluster:
    cluster = LocalCluster(
        num_servers=num_servers, hot_set_capacity=64, coalesce=True
    )
    rng = np.random.default_rng(3)
    hub = 9
    for dst in rng.integers(0, 1 << 20, 50):
        cluster.client.add_edge(hub, int(dst), 1.0)
    for src in range(40):
        cluster.client.add_edge(src + 100, int(rng.integers(0, 1 << 20)), 1.0)
    # Train the tracker: the hub dominates traffic.
    for _ in range(20):
        cluster.client.sample_neighbors_many(
            [hub] * 8 + [100, 101], 2, np.random.default_rng(4)
        )
    return cluster


class TestHotReplicas:
    def test_replicate_and_spread_reads(self):
        cluster = _hot_cluster()
        installed = cluster.replicate_hot(top_n=2, copies=2, min_count=2)
        assert installed
        src, read_set = installed[0]
        assert src == 9
        assert len(read_set) == 3  # primary + 2 copies
        stats = cluster.client.serving_stats
        stats.reset()
        for _ in range(6):
            cluster.client.sample_neighbors_many(
                [9, 9, 9], 2, np.random.default_rng(5)
            )
        assert stats.hot_reads == 6
        # Round-robin: two thirds of the windows hit a non-primary copy.
        assert stats.spread_reads == 4

    def test_replica_stores_hold_identical_adjacency(self):
        cluster = _hot_cluster()
        (src, read_set), = cluster.replicate_hot(
            top_n=1, copies=2, min_count=2
        )
        reference = sorted(cluster.servers[read_set[0]].store.neighbors(src))
        for shard in read_set[1:]:
            assert sorted(cluster.servers[shard].store.neighbors(src)) == (
                reference
            )

    def test_writes_fan_out_to_all_copies(self):
        cluster = _hot_cluster()
        (src, read_set), = cluster.replicate_hot(
            top_n=1, copies=2, min_count=2
        )
        cluster.client.add_edge(src, 777_777, 3.0)
        for shard in read_set:
            store = cluster.servers[shard].store
            assert store.edge_weight(src, 777_777) == pytest.approx(3.0)
        assert cluster.client.serving_stats.hot_write_ops >= 2

    def test_failed_coherence_write_drops_copy(self):
        cluster = _hot_cluster()
        (src, read_set), = cluster.replicate_hot(
            top_n=1, copies=2, min_count=2
        )
        victim = read_set[1]
        cluster.crash_shard(victim)
        cluster.client.add_edge(src, 888_888, 1.0)
        stats = cluster.client.serving_stats
        assert stats.hot_write_drops >= 1
        remaining = cluster.client.hot_replicas.shards(src)
        assert victim not in remaining
        # Reads keep flowing through the surviving copies.
        rows = cluster.client.sample_neighbors_many(
            [src] * 4, 2, np.random.default_rng(6)
        )
        assert all(len(r) == 2 for r in rows)

    def test_drop_hot_replicas_restores_primary_only_reads(self):
        cluster = _hot_cluster()
        cluster.replicate_hot(top_n=1, copies=2, min_count=2)
        assert cluster.client.hot_replicas
        cluster.drop_hot_replicas()
        assert not cluster.client.hot_replicas
        stats = cluster.client.serving_stats
        stats.reset()
        cluster.client.sample_neighbors_many(
            [9, 9], 2, np.random.default_rng(7)
        )
        assert stats.hot_reads == 0
