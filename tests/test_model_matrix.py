"""Cross-cutting matrix tests: every model family trains end to end, on
local and distributed stores, homogeneous and heterogeneous graphs."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.distributed import LocalCluster
from repro.gnn.models import GAT, GCN, GraphSAGE
from repro.gnn.samplers import sample_blocks, sample_metapath
from repro.gnn.training import Trainer
from repro.storage.attributes import AttributeStore


def make_problem(n=120, dim=6, seed=0, store=None):
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    store = store if store is not None else DynamicGraphStore(
        SamtreeConfig(capacity=16)
    )
    feats = AttributeStore()
    feats.register("feat", dim)
    labels = {}
    for v in range(n):
        c = v % 2
        labels[v] = c
        feats.put("feat", v, nprng.normal(2.0 * c - 1.0, 1.2, dim).astype(np.float32))
    edges = 0
    while edges < n * 6:
        a, b = rng.randrange(n), rng.randrange(n)
        if a != b and a % 2 == b % 2:
            store.add_edge(a, b, 1.0)
            edges += 1
    seeds = [v for v in range(n) if store.degree(v) > 0]
    return store, feats, seeds, [labels[v] for v in seeds]


@pytest.mark.parametrize("model_cls", [GraphSAGE, GCN, GAT])
def test_every_model_family_learns(model_cls, nprng):
    store, feats, seeds, labels = make_problem(seed=11)
    model = model_cls(6, 16, 2, num_layers=2, rng=nprng)
    trainer = Trainer(
        store, feats, model, fanouts=[4, 4], lr=0.01, rng=random.Random(1)
    )
    for epoch in range(6):
        trainer.train_epoch(seeds, labels, batch_size=32, epoch=epoch)
    assert trainer.evaluate(seeds, labels) > 0.85


@pytest.mark.parametrize("depth,fanouts", [(1, [6]), (3, [4, 3, 2])])
def test_non_default_depths(depth, fanouts, nprng):
    store, feats, seeds, labels = make_problem(seed=12)
    model = GraphSAGE(6, 12, 2, num_layers=depth, rng=nprng)
    trainer = Trainer(
        store, feats, model, fanouts=fanouts, lr=0.01, rng=random.Random(2)
    )
    for epoch in range(6):
        trainer.train_epoch(seeds, labels, batch_size=32, epoch=epoch)
    assert trainer.evaluate(seeds, labels) > 0.8


def test_training_against_cluster_client(nprng):
    cluster = LocalCluster(num_servers=3, config=SamtreeConfig(capacity=16))
    store, feats, seeds, labels = make_problem(seed=13, store=cluster.client)
    model = GCN(6, 12, 2, num_layers=2, rng=nprng)
    trainer = Trainer(
        cluster.client, feats, model, fanouts=[4, 4], lr=0.01,
        rng=random.Random(3),
    )
    for epoch in range(6):
        trainer.train_epoch(seeds, labels, batch_size=32, epoch=epoch)
    assert trainer.evaluate(seeds, labels) > 0.8


def test_heterogeneous_metapath_blocks_feed_model(nprng, rng):
    """Meta-path levels slot directly into a model forward."""
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    feats = AttributeStore()
    feats.register("feat", 4)
    nr = np.random.default_rng(0)
    # users 0..9 -> (etype 0) items 100..119 -> (etype 1) tags 200..209
    for u in range(10):
        feats.put("feat", u, nr.normal(size=4).astype(np.float32))
        for it in rng.sample(range(100, 120), 4):
            store.add_edge(u, it, 1.0, etype=0)
    for it in range(100, 120):
        feats.put("feat", it, nr.normal(size=4).astype(np.float32))
        for tag in rng.sample(range(200, 210), 3):
            store.add_edge(it, tag, 1.0, etype=1)
    for tag in range(200, 210):
        feats.put("feat", tag, nr.normal(size=4).astype(np.float32))

    levels = sample_metapath(store, list(range(10)), [(0, 3), (1, 2)], rng)
    model = GraphSAGE(4, 8, 3, num_layers=2, rng=nprng)
    feats_levels = [feats.gather("feat", lvl.tolist()) for lvl in levels]
    logits = model.forward(feats_levels, [3, 2])
    assert logits.shape == (10, 3)


def test_blocks_from_all_store_kinds(rng):
    """sample_blocks is store-agnostic (protocol check)."""
    from repro.baselines import AliGraphStore, PlatoGLStore, StaticCSRStore

    for store in (
        DynamicGraphStore(),
        PlatoGLStore(),
        AliGraphStore(),
        StaticCSRStore(),
    ):
        for s in range(4):
            for d in range(3):
                store.add_edge(s, 10 + d, 1.0)
        blocks = sample_blocks(store, [0, 1], [2, 2], rng)
        assert blocks.levels[2].shape == (8,)
