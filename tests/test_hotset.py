"""Tests for the SpaceSaving hot-set tracker and replica directory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import zipf_probabilities
from repro.distributed.hotset import (
    HotReplicaDirectory,
    HotSetTracker,
)
from repro.errors import ConfigurationError


def _check_invariants(tracker: HotSetTracker) -> None:
    """The count-bucket index must exactly mirror the entry table."""
    seen = set()
    for count, bucket in tracker._buckets.items():
        assert bucket, "empty bucket left behind"
        for src in bucket:
            assert tracker._entries[src].count == count
            seen.add(src)
    assert seen == set(tracker._entries)
    if tracker._entries:
        true_min = min(e.count for e in tracker._entries.values())
        assert tracker._min_count == true_min


class TestTracker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HotSetTracker(capacity=0)
        with pytest.raises(ConfigurationError):
            HotSetTracker(decay_interval=0)
        tracker = HotSetTracker(capacity=4)
        with pytest.raises(ConfigurationError):
            tracker.top(-1)
        with pytest.raises(ConfigurationError):
            tracker.hot_sources(1, min_share=1.5)

    def test_counts_exact_under_capacity(self):
        tracker = HotSetTracker(capacity=16)
        for src, n in ((1, 5), (2, 3), (3, 1)):
            for _ in range(n):
                tracker.observe(src)
        assert tracker.count(1) == 5
        assert tracker.count(2) == 3
        assert tracker.count(99) == 0
        assert [e.src for e in tracker.top(2)] == [1, 2]
        assert len(tracker) == 3
        _check_invariants(tracker)

    def test_spacesaving_guarantee_tracks_heavy_hitters(self):
        # Any key with true frequency > N/capacity must be tracked, no
        # matter how adversarial the tail churn is.
        tracker = HotSetTracker(capacity=32)
        rng = np.random.default_rng(7)
        heavy = {10_001: 400, 10_002: 250, 10_003: 150}
        stream = []
        for src, n in heavy.items():
            stream += [src] * n
        stream += [int(s) for s in rng.integers(0, 5000, 800)]
        rng.shuffle(stream)  # type: ignore[arg-type]
        tracker.observe_many(stream)
        tracked = {e.src for e in tracker.top(32)}
        for src, n in heavy.items():
            assert src in tracked
            # SpaceSaving may overestimate, never underestimate.
            assert tracker.count(src) >= n
        _check_invariants(tracker)

    def test_replacement_inherits_min_count(self):
        tracker = HotSetTracker(capacity=2)
        tracker.observe(1, 10)
        tracker.observe(2, 4)
        tracker.observe(3)  # replaces src=2 (the minimum)
        assert 2 not in tracker
        entry = [e for e in tracker.top(2) if e.src == 3][0]
        assert entry.count == 5
        assert entry.error == 4
        assert tracker.stats.replacements == 1
        _check_invariants(tracker)

    def test_decay_halves_and_drops(self):
        tracker = HotSetTracker(capacity=8, decay_interval=10)
        tracker.observe(1, 8)
        tracker.observe(2, 1)
        tracker.observe(3, 1)  # hits the interval -> decay
        assert tracker.stats.decays == 1
        assert tracker.count(1) == 4
        # Sources decayed to zero leave the table entirely.
        assert 2 not in tracker
        assert 3 not in tracker
        _check_invariants(tracker)

    def test_observe_counts_and_clear(self):
        tracker = HotSetTracker(capacity=8)
        tracker.observe_counts([(5, 3), (6, 2)])
        assert tracker.count(5) == 3
        tracker.clear()
        assert len(tracker) == 0
        assert tracker.count(5) == 0
        tracker.observe(9)
        assert tracker.count(9) == 1
        _check_invariants(tracker)

    def test_hot_sources_min_share(self):
        tracker = HotSetTracker(capacity=8)
        tracker.observe(1, 90)
        tracker.observe(2, 10)
        assert [e.src for e in tracker.hot_sources(8, min_share=0.5)] == [1]
        assert [e.src for e in tracker.hot_sources(8)] == [1, 2]

    def test_bucket_invariants_fuzz(self):
        # Mixed replacement/decay churn over a zipf stream: the O(1)
        # bucket index must stay consistent with the entry table at
        # every step boundary.
        tracker = HotSetTracker(capacity=24, decay_interval=500)
        rng = np.random.default_rng(3)
        universe = 2000
        p = zipf_probabilities(universe, 1.1)
        for round_ in range(40):
            for src in rng.choice(universe, size=100, p=p):
                tracker.observe(int(src), int(rng.integers(1, 4)))
            _check_invariants(tracker)
        assert tracker.stats.replacements > 0
        assert tracker.stats.decays > 0


class TestDirectory:
    def test_round_robin_rotation(self):
        directory = HotReplicaDirectory()
        directory.set_replicas(7, [2, 0, 3])
        assert [directory.route(7) for _ in range(6)] == [2, 0, 3, 2, 0, 3]
        assert directory.route(8) is None

    def test_set_replicas_validation(self):
        directory = HotReplicaDirectory()
        with pytest.raises(ConfigurationError):
            directory.set_replicas(7, [])
        with pytest.raises(ConfigurationError):
            directory.set_replicas(7, [1, 1])

    def test_extras_excludes_primary(self):
        directory = HotReplicaDirectory()
        directory.set_replicas(7, [2, 0, 3])
        assert directory.extras(7, primary=2) == [0, 3]
        assert directory.extras(99, primary=0) == []

    def test_drop_shard_then_empty(self):
        directory = HotReplicaDirectory()
        directory.set_replicas(7, [2, 0])
        directory.drop_shard(7, 0)
        assert directory.shards(7) == [2]
        directory.drop_shard(7, 2)
        assert 7 not in directory
        assert directory.route(7) is None

    def test_drop(self):
        directory = HotReplicaDirectory()
        directory.set_replicas(1, [0, 1])
        assert directory.drop(1)
        assert not directory.drop(1)
        assert len(directory) == 0
        assert not directory
