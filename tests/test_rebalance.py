"""Tests for shard rebalancing over the local cluster."""

from __future__ import annotations

import random

import pytest

from repro.core.samtree import SamtreeConfig
from repro.distributed import HashBySourcePartitioner, LocalCluster
from repro.distributed.rebalance import (
    Move,
    OverridePartitioner,
    execute_plan,
    plan_rebalance,
)
from repro.errors import ConfigurationError, PartitionError


def skewed_cluster(num_servers=3, hub_edges=600, seed=0) -> LocalCluster:
    """A cluster where one hub source dominates its shard."""
    cluster = LocalCluster(num_servers=num_servers, config=SamtreeConfig(capacity=32))
    rng = random.Random(seed)
    hub = 424242
    for i in range(hub_edges):
        cluster.client.add_edge(hub, i, 1.0)
    for src in range(80):
        for _ in range(4):
            cluster.client.add_edge(src, rng.randrange(10_000), 1.0)
    return cluster


class TestOverridePartitioner:
    def test_override_wins(self):
        base = HashBySourcePartitioner(4)
        part = OverridePartitioner(base)
        src = 12345
        original = base.shard_for(src)
        target = (original + 1) % 4
        part.add_override(src, target)
        assert part.shard_for(src) == target
        assert part.shard_for(src + 1) == base.shard_for(src + 1)

    def test_override_validation(self):
        part = OverridePartitioner(HashBySourcePartitioner(2))
        with pytest.raises(PartitionError):
            part.add_override(1, 5)


class TestPlanning:
    def test_empty_cluster_no_moves(self):
        cluster = LocalCluster(num_servers=2)
        assert plan_rebalance(cluster) == []

    def test_validation(self):
        cluster = LocalCluster(num_servers=2)
        with pytest.raises(ConfigurationError):
            plan_rebalance(cluster, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            plan_rebalance(cluster, max_moves=-1)

    def test_plan_reduces_spread(self):
        cluster = skewed_cluster()
        before = [s.store.num_edges for s in cluster.servers]
        moves = plan_rebalance(cluster, tolerance=0.2)
        assert moves
        # Simulate the plan's accounting.
        loads = list(before)
        for m in moves:
            loads[m.from_shard] -= m.load
            loads[m.to_shard] += m.load
        assert max(loads) - min(loads) < max(before) - min(before)

    def test_plan_respects_max_moves(self):
        cluster = skewed_cluster()
        assert len(plan_rebalance(cluster, tolerance=0.01, max_moves=2)) <= 2

    def test_balanced_cluster_needs_nothing(self):
        cluster = LocalCluster(num_servers=2)
        # Perfectly splittable uniform load.
        for src in range(200):
            cluster.client.add_edge(src, src + 1000, 1.0)
        moves = plan_rebalance(cluster, tolerance=0.3)
        assert moves == []


class TestExecution:
    def test_migration_preserves_graph(self):
        cluster = skewed_cluster()
        snapshot = {}
        for server in cluster.servers:
            for etype in server.store.etypes():
                for src in server.store.sources(etype):
                    for dst, w in server.store.neighbors(src, etype):
                        snapshot[(etype, src, dst)] = w
        moves = plan_rebalance(cluster, tolerance=0.2)
        execute_plan(cluster, moves)
        after = {}
        for server in cluster.servers:
            for etype in server.store.etypes():
                for src in server.store.sources(etype):
                    for dst, w in server.store.neighbors(src, etype):
                        after[(etype, src, dst)] = w
        assert after == snapshot
        # Client reads route correctly through the overrides.
        for (etype, src, dst), w in list(snapshot.items())[:50]:
            assert cluster.client.edge_weight(src, dst, etype) == pytest.approx(w)

    def test_spread_shrinks_after_execution(self):
        cluster = skewed_cluster()
        before = [s.store.num_edges for s in cluster.servers]
        moves = plan_rebalance(cluster, tolerance=0.2)
        execute_plan(cluster, moves)
        after = [s.store.num_edges for s in cluster.servers]
        assert max(after) - min(after) < max(before) - min(before)
        assert sum(after) == sum(before)

    def test_new_traffic_follows_overrides(self):
        cluster = skewed_cluster()
        moves = plan_rebalance(cluster, tolerance=0.2)
        execute_plan(cluster, moves)
        moved = moves[0]
        cluster.client.add_edge(moved.src, 999_999, 2.0)
        owner = cluster.servers[moved.to_shard]
        assert owner.store.edge_weight(moved.src, 999_999) == pytest.approx(2.0)

    def test_idempotent_partitioner_reuse(self):
        cluster = skewed_cluster()
        part = execute_plan(cluster, plan_rebalance(cluster, tolerance=0.2))
        # A second round reuses the same override partitioner.
        part2 = execute_plan(cluster, plan_rebalance(cluster, tolerance=0.2))
        assert part2 is part
