"""Tests for shard rebalancing over the local cluster."""

from __future__ import annotations

import pickle
import random
from collections import Counter

import numpy as np
import pytest

from repro.core.samtree import SamtreeConfig
from repro.distributed import HashBySourcePartitioner, LocalCluster
from repro.distributed.rebalance import (
    MigrationStats,
    Move,
    OverridePartitioner,
    execute_plan,
    plan_rebalance,
)
from repro.errors import ConfigurationError, PartitionError

try:  # scipy is part of the baked toolchain, but degrade gracefully.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None


def _chi2_pvalue(observed, expected):
    observed = np.asarray(observed, dtype=np.float64)
    expected = np.asarray(expected, dtype=np.float64)
    if _scipy_stats is not None:
        return float(_scipy_stats.chisquare(observed, expected).pvalue)
    chi2 = float(((observed - expected) ** 2 / expected).sum())
    k = len(observed) - 1
    z = ((chi2 / k) ** (1.0 / 3.0) - (1 - 2.0 / (9 * k))) / np.sqrt(
        2.0 / (9 * k)
    )
    return float(0.5 * (1.0 - np.math.erf(z / np.sqrt(2.0))))


def skewed_cluster(num_servers=3, hub_edges=600, seed=0) -> LocalCluster:
    """A cluster where one hub source dominates its shard."""
    cluster = LocalCluster(num_servers=num_servers, config=SamtreeConfig(capacity=32))
    rng = random.Random(seed)
    hub = 424242
    for i in range(hub_edges):
        cluster.client.add_edge(hub, i, 1.0)
    for src in range(80):
        for _ in range(4):
            cluster.client.add_edge(src, rng.randrange(10_000), 1.0)
    return cluster


class TestOverridePartitioner:
    def test_override_wins(self):
        base = HashBySourcePartitioner(4)
        part = OverridePartitioner(base)
        src = 12345
        original = base.shard_for(src)
        target = (original + 1) % 4
        part.add_override(src, target)
        assert part.shard_for(src) == target
        assert part.shard_for(src + 1) == base.shard_for(src + 1)

    def test_override_validation(self):
        part = OverridePartitioner(HashBySourcePartitioner(2))
        with pytest.raises(PartitionError):
            part.add_override(1, 5)

    def test_same_shard_override_is_normalized_away(self):
        base = HashBySourcePartitioner(4)
        part = OverridePartitioner(base)
        src = 777
        home = base.shard_for(src)
        part.add_override(src, (home + 1) % 4)
        assert src in part.overrides
        # Moving a source back home must *clear* the override, not
        # store a redundant entry that pins it forever.
        part.add_override(src, home)
        assert src not in part.overrides
        assert part.shard_for(src) == home

    def test_remove_override(self):
        base = HashBySourcePartitioner(4)
        part = OverridePartitioner(base)
        part.add_override(5, (base.shard_for(5) + 1) % 4)
        assert part.remove_override(5)
        assert not part.remove_override(5)
        assert part.shard_for(5) == base.shard_for(5)

    def test_shards_for_array_matches_scalar_path(self):
        base = HashBySourcePartitioner(4)
        part = OverridePartitioner(base)
        rng = np.random.default_rng(0)
        srcs = rng.integers(0, 10_000, 500).astype(np.int64)
        for src in srcs[:40]:
            part.add_override(int(src), int(rng.integers(0, 4)))
        vectorized = part.shards_for_array(srcs)
        scalar = np.array([part.shard_for(int(s)) for s in srcs])
        assert np.array_equal(vectorized, scalar)

    def test_pickles_through_rpc_path(self):
        # The partitioner ships to workers; a lambda/closure in its
        # state would break the RPC path's serialization.
        base = HashBySourcePartitioner(4)
        part = OverridePartitioner(base)
        part.add_override(5, (base.shard_for(5) + 1) % 4)
        clone = pickle.loads(pickle.dumps(part))
        assert clone.overrides == part.overrides
        for src in range(100):
            assert clone.shard_for(src) == part.shard_for(src)


class TestPlanning:
    def test_empty_cluster_no_moves(self):
        cluster = LocalCluster(num_servers=2)
        assert plan_rebalance(cluster) == []

    def test_validation(self):
        cluster = LocalCluster(num_servers=2)
        with pytest.raises(ConfigurationError):
            plan_rebalance(cluster, tolerance=0.0)
        with pytest.raises(ConfigurationError):
            plan_rebalance(cluster, max_moves=-1)

    def test_plan_reduces_spread(self):
        cluster = skewed_cluster()
        before = [s.store.num_edges for s in cluster.servers]
        moves = plan_rebalance(cluster, tolerance=0.2)
        assert moves
        # Simulate the plan's accounting.
        loads = list(before)
        for m in moves:
            loads[m.from_shard] -= m.load
            loads[m.to_shard] += m.load
        assert max(loads) - min(loads) < max(before) - min(before)

    def test_plan_respects_max_moves(self):
        cluster = skewed_cluster()
        assert len(plan_rebalance(cluster, tolerance=0.01, max_moves=2)) <= 2

    def test_balanced_cluster_needs_nothing(self):
        cluster = LocalCluster(num_servers=2)
        # Perfectly splittable uniform load.
        for src in range(200):
            cluster.client.add_edge(src, src + 1000, 1.0)
        moves = plan_rebalance(cluster, tolerance=0.3)
        assert moves == []


class TestExecution:
    def test_migration_preserves_graph(self):
        cluster = skewed_cluster()
        snapshot = {}
        for server in cluster.servers:
            for etype in server.store.etypes():
                for src in server.store.sources(etype):
                    for dst, w in server.store.neighbors(src, etype):
                        snapshot[(etype, src, dst)] = w
        moves = plan_rebalance(cluster, tolerance=0.2)
        execute_plan(cluster, moves)
        after = {}
        for server in cluster.servers:
            for etype in server.store.etypes():
                for src in server.store.sources(etype):
                    for dst, w in server.store.neighbors(src, etype):
                        after[(etype, src, dst)] = w
        assert after == snapshot
        # Client reads route correctly through the overrides.
        for (etype, src, dst), w in list(snapshot.items())[:50]:
            assert cluster.client.edge_weight(src, dst, etype) == pytest.approx(w)

    def test_spread_shrinks_after_execution(self):
        cluster = skewed_cluster()
        before = [s.store.num_edges for s in cluster.servers]
        moves = plan_rebalance(cluster, tolerance=0.2)
        execute_plan(cluster, moves)
        after = [s.store.num_edges for s in cluster.servers]
        assert max(after) - min(after) < max(before) - min(before)
        assert sum(after) == sum(before)

    def test_new_traffic_follows_overrides(self):
        cluster = skewed_cluster()
        moves = plan_rebalance(cluster, tolerance=0.2)
        execute_plan(cluster, moves)
        moved = moves[0]
        cluster.client.add_edge(moved.src, 999_999, 2.0)
        owner = cluster.servers[moved.to_shard]
        assert owner.store.edge_weight(moved.src, 999_999) == pytest.approx(2.0)

    def test_idempotent_partitioner_reuse(self):
        cluster = skewed_cluster()
        part = execute_plan(cluster, plan_rebalance(cluster, tolerance=0.2))
        # A second round reuses the same override partitioner.
        part2 = execute_plan(cluster, plan_rebalance(cluster, tolerance=0.2))
        assert part2 is part

    def test_sampling_distribution_survives_migration(self):
        # Migrating a source must not perturb its sampling distribution:
        # chi-square parity on a skewed adjacency, before vs analytic.
        cluster = LocalCluster(num_servers=3)
        src = 4242
        weights = [8.0, 4.0, 2.0, 1.0, 1.0]
        for dst, w in enumerate(weights):
            cluster.client.add_edge(src, 100 + dst, w)
        from_shard = cluster.partitioner.shard_for(src)
        to_shard = (from_shard + 1) % 3
        execute_plan(
            cluster,
            [Move(src=src, from_shard=from_shard, to_shard=to_shard, load=5)],
        )
        draws = 1200
        rows = cluster.client.sample_neighbors_many(
            [src] * draws, 1, np.random.default_rng(9)
        )
        counts = Counter(int(r[0]) for r in rows)
        w = np.asarray(weights)
        expected = draws * w / w.sum()
        observed = [counts.get(100 + i, 0) for i in range(5)]
        assert _chi2_pvalue(observed, expected) > 0.01

    def test_no_lost_writes_under_concurrent_churn(self):
        # Writes racing the copy (injected between copy and cutover via
        # the before_cutover hook) must trigger a recopy, not vanish.
        cluster = skewed_cluster()
        moves = plan_rebalance(cluster, tolerance=0.2)
        assert moves
        racing = {}

        def churn(move):
            dst = 500_000 + move.src
            cluster.client.add_edge(move.src, dst, 3.5)
            racing[move.src] = dst

        stats = MigrationStats()
        execute_plan(cluster, moves, before_cutover=churn, stats=stats)
        assert stats.recopies >= len(moves)
        for move in moves:
            owner = cluster.servers[move.to_shard].store
            assert owner.edge_weight(move.src, racing[move.src]) == (
                pytest.approx(3.5)
            )
            # The racing edge is also visible through the client route.
            assert cluster.client.edge_weight(
                move.src, racing[move.src]
            ) == pytest.approx(3.5)
        # Source copies were fully retracted: no edge exists twice.
        total = sum(s.store.num_edges for s in cluster.servers)
        assert total == cluster.client.num_edges


class TestTrafficPlanning:
    def test_traffic_mode_requires_tracker(self):
        cluster = LocalCluster(num_servers=2)
        with pytest.raises(ConfigurationError):
            plan_rebalance(cluster, by="traffic")

    @staticmethod
    def _traffic_skewed_cluster():
        """Uniform storage, skewed *traffic*: one shard serves a handful
        of warm sources (an edge-count planner sees nothing to move)."""
        cluster = LocalCluster(num_servers=3, hot_set_capacity=64)
        for src in range(30):
            cluster.client.add_edge(src, 1000 + src, 1.0)
        part = cluster.partitioner
        hot_shard = part.shard_for(0)
        warm = [s for s in range(30) if part.shard_for(s) == hot_shard][:4]
        rng = np.random.default_rng(1)
        frontier = (
            [warm[0]] * 6 + [warm[1]] * 5 + [warm[2]] * 4 + [warm[3]] * 3
        )
        other = [s for s in range(30) if part.shard_for(s) != hot_shard][:2]
        for _ in range(40):
            cluster.client.sample_neighbors_many(frontier + other, 1, rng)
        return cluster, warm

    def test_traffic_loads_come_from_tracker_not_shard_scan(self):
        cluster, warm = self._traffic_skewed_cluster()
        moves = plan_rebalance(cluster, tolerance=0.2, by="traffic")
        assert moves
        for move in moves:
            assert move.src in warm
            # Loads are the tracker's observed read counts, not edge
            # counts (every source holds exactly one edge).
            assert move.load == cluster.hot_tracker.count(move.src)
            assert move.load > 1

    def test_auto_prefers_traffic_when_tracker_active(self):
        cluster, _ = self._traffic_skewed_cluster()
        auto = plan_rebalance(cluster, tolerance=0.2, by="auto")
        traffic = plan_rebalance(cluster, tolerance=0.2, by="traffic")
        assert auto == traffic
        assert auto

    def test_replicated_sources_are_not_planned(self):
        cluster, warm = self._traffic_skewed_cluster()
        cluster.replicate_hot(top_n=1, copies=1, min_count=1)
        replicated = {src for src, _ in cluster.client.hot_replicas.items()}
        assert replicated == {warm[0]}
        moves = plan_rebalance(cluster, tolerance=0.2, by="traffic")
        assert all(m.src != warm[0] for m in moves)
