"""Tests for continuous monitoring (``repro.obs.monitor`` / ``alerts`` /
``critical``).

Covers the time-series store's window math (rate/increase with
counter-reset correction, avg/max/min over time, windowed histogram
quantiles), the monitor's scrape scheduling, the alert lifecycle
(pending → firing → resolved, multi-window burn-rate semantics), the
critical-path partition over span trees, and the cluster/rig wiring.

The acceptance scenario of the issue — the flash-crowd burn-rate alert
transitioning pending → firing within the onset window and resolving
after shedding stabilises, plus the critical-path report attributing
≥90% of traced slow-request time to named layers — lives in
:class:`TestFlashCrowdTimeline`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.distributed import LocalCluster, NetworkModel
from repro.errors import ConfigurationError
from repro.obs import (
    AlertManager,
    BurnRateRule,
    MetricsRegistry,
    Monitor,
    ThresholdRule,
    TimeSeriesStore,
    Tracer,
    analyze_critical_paths,
    critical_path,
    layer_for,
    lint_prometheus,
)
from repro.serving.scenarios import (
    SCENARIOS,
    ScenarioRunner,
    build_serving_rig,
)


class ManualClock:
    """An injectable clock the tests advance by hand."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


# ---------------------------------------------------------------------------
# TimeSeriesStore: scrape + window math
# ---------------------------------------------------------------------------
class TestTimeSeriesStore:
    def _store(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        return reg, clock, TimeSeriesStore(reg, clock=clock)

    def test_rate_and_increase(self):
        reg, clock, store = self._store()
        c = reg.counter("reqs_total")
        store.scrape()
        for _ in range(4):
            c.inc(10)
            clock.advance(1.0)
            store.scrape()
        # 40 increments over 4 seconds.
        assert store.increase("reqs_total", 4.0) == pytest.approx(40.0)
        assert store.rate("reqs_total", 4.0) == pytest.approx(10.0)
        # A 2s window sees only the last two scrapes' growth.
        assert store.increase("reqs_total", 2.0) == pytest.approx(20.0)
        assert store.rate("reqs_total", 2.0) == pytest.approx(10.0)

    def test_rate_covers_partial_window(self):
        """A series younger than the window answers over what it has."""
        reg, clock, store = self._store()
        c = reg.counter("reqs_total")
        store.scrape()
        c.inc(5)
        clock.advance(1.0)
        store.scrape()
        # Window of 10s, but only 1s of history: rate is 5/1, not 5/10.
        assert store.rate("reqs_total", 10.0) == pytest.approx(5.0)

    def test_counter_reset_is_absorbed(self):
        """increase() across a reset equals the true total delivered."""
        reg, clock, store = self._store()
        c = reg.counter("reqs_total")
        c.inc(30)
        store.scrape()
        clock.advance(1.0)
        c.inc(10)
        store.scrape()
        reg.reset_owned()  # the crash / reset_stats event
        clock.advance(1.0)
        c.inc(7)
        store.scrape()
        assert store.resets_total == 1
        assert store.resets["reqs_total"] == 1
        # 10 before the reset + 7 after; the 30 pre-window survives as
        # the baseline because the adjusted series stays monotone.
        assert store.increase("reqs_total", 2.0) == pytest.approx(17.0)
        # The adjusted cumulative never went backwards.
        values = [v for _, v in store.points("reqs_total")]
        assert values == sorted(values)

    def test_gauge_windows(self):
        reg, clock, store = self._store()
        g = reg.gauge("depth")
        for v in (4.0, 8.0, 2.0):
            g.set(v)
            store.scrape()
            clock.advance(1.0)
        assert store.avg_over_time("depth", 10.0) == pytest.approx(14 / 3)
        assert store.max_over_time("depth", 10.0) == 8.0
        assert store.min_over_time("depth", 10.0) == 2.0
        # A window that only reaches the last point.
        assert store.max_over_time("depth", 0.5, at=2.0) == 2.0

    def test_windowed_histogram_quantile(self):
        reg, clock, store = self._store()
        h = reg.histogram("lat_seconds")
        store.scrape()  # empty baseline — windows are deltas between
        # scrapes, so observations need a scrape on each side.
        for v in (1e-3,) * 10:
            h.record(v)
        clock.advance(1.0)
        store.scrape()
        for v in (0.5,) * 10:
            h.record(v)
        clock.advance(1.0)
        store.scrape()
        # Whole history: half fast, half slow.
        assert store.quantile_over_time(0.99, "lat_seconds", 10.0) > 0.1
        # Window covering only the second batch's delta: all slow.
        assert store.quantile_over_time(
            0.50, "lat_seconds", 1.0
        ) > 0.1
        # p50 over everything is still the fast bucket.
        assert store.quantile_over_time(
            0.50, "lat_seconds", 10.0
        ) < 1e-2

    def test_histogram_reset_detected(self):
        reg, clock, store = self._store()
        h = reg.histogram("lat_seconds")
        store.scrape()  # empty baseline
        h.record(1e-3)
        h.record(1e-3)
        clock.advance(1.0)
        store.scrape()
        reg.reset_owned()  # count drops 2 -> 1: a visible reset
        h.record(2e-3)
        clock.advance(1.0)
        store.scrape()
        assert store.resets_total == 1
        # The adjusted series still has all three observations.
        hist = store.window_histogram("lat_seconds", 10.0)
        assert hist.count == 3

    def test_unknown_series_answer_zero(self):
        _, _, store = self._store()
        assert store.rate("nope", 1.0) == 0.0
        assert store.increase("nope", 1.0) == 0.0
        assert store.avg_over_time("nope", 1.0) == 0.0
        assert store.quantile_over_time(0.99, "nope", 1.0) == 0.0

    def test_name_filter_keeps_only_prefixes(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        reg.counter("keep_this_total")
        reg.counter("drop_this_total")
        store = TimeSeriesStore(reg, clock=clock, name_filter=("keep_",))
        store.scrape()
        assert store.series_names() == ["keep_this_total"]

    def test_rings_are_bounded(self):
        reg = MetricsRegistry()
        clock = ManualClock()
        reg.counter("c_total")
        reg.histogram("h_seconds")
        store = TimeSeriesStore(reg, clock=clock, max_points=8)
        for _ in range(50):
            clock.advance(1.0)
            store.scrape()
        assert len(store.points("c_total")) == 8
        # num_points is maintained incrementally; it must agree with
        # the actual ring contents after saturation.
        assert store.num_points == 16
        assert store.scrapes == 50

    def test_max_points_validated(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            TimeSeriesStore(reg, max_points=1)


# ---------------------------------------------------------------------------
# Monitor: scrape scheduling
# ---------------------------------------------------------------------------
class TestMonitorScheduling:
    def test_poll_respects_interval(self):
        reg = MetricsRegistry()
        reg.counter("c_total")
        clock = ManualClock()
        mon = Monitor(reg, clock=clock, interval=0.05)
        assert mon.next_due() == 0.0  # first scrape is immediate
        assert mon.poll() is True
        assert mon.poll() is False  # same instant: not due again
        clock.advance(0.04)
        assert mon.poll() is False
        clock.advance(0.01)
        assert mon.poll() is True
        assert mon.scrapes == 2

    def test_next_due_anchors_at_actual_scrape(self):
        """A driver that fell behind does not trigger a catch-up storm."""
        reg = MetricsRegistry()
        clock = ManualClock()
        mon = Monitor(reg, clock=clock, interval=0.05)
        mon.poll()
        clock.advance(0.37)  # way past several intervals
        assert mon.poll() is True
        assert mon.poll() is False  # one scrape, not seven
        assert mon.next_due() == pytest.approx(0.42)

    def test_interval_validated(self):
        with pytest.raises(ConfigurationError):
            Monitor(MetricsRegistry(), interval=0.0)


# ---------------------------------------------------------------------------
# Alerting
# ---------------------------------------------------------------------------
class TestAlertLifecycle:
    def _driven(self, rule):
        """A registry+store+manager trio driven by a manual clock."""
        reg = MetricsRegistry()
        clock = ManualClock()
        store = TimeSeriesStore(reg, clock=clock)
        manager = AlertManager([rule])
        return reg, clock, store, manager

    def test_threshold_pending_firing_resolved(self):
        rule = ThresholdRule(
            "hot", key="c_total", threshold=5.0, mode="rate",
            window=1.0, for_seconds=0.2,
        )
        reg, clock, store, manager = self._driven(rule)
        c = reg.counter("c_total")
        store.scrape()
        # Quiet: rate 0 -> inactive.
        manager.evaluate(store, clock.t)
        assert manager.state_of("hot") == "inactive"
        # Hot for three scrapes 0.1s apart: pending at the first,
        # firing once for_seconds elapses.
        for _ in range(3):
            c.inc(10)
            clock.advance(0.1)
            store.scrape()
            manager.evaluate(store, clock.t)
        assert manager.state_of("hot") == "firing"
        # Cool down: resolved, back to inactive.
        clock.advance(2.0)
        store.scrape()
        manager.evaluate(store, clock.t)
        assert manager.state_of("hot") == "inactive"
        states = [(e.from_state, e.to_state) for e in manager.timeline()]
        assert states == [
            ("inactive", "pending"),
            ("pending", "firing"),
            ("firing", "resolved"),
        ]

    def test_pending_blip_never_fires(self):
        rule = ThresholdRule(
            "hot", key="c_total", threshold=5.0, mode="rate",
            window=0.5, for_seconds=0.5,
        )
        reg, clock, store, manager = self._driven(rule)
        c = reg.counter("c_total")
        store.scrape()
        c.inc(100)
        clock.advance(0.1)
        store.scrape()
        manager.evaluate(store, clock.t)
        assert manager.state_of("hot") == "pending"
        clock.advance(1.0)  # burst long gone before for_seconds elapsed
        store.scrape()
        manager.evaluate(store, clock.t)
        assert manager.state_of("hot") == "inactive"
        assert [e.to_state for e in manager.timeline()] == [
            "pending",
            "inactive",
        ]

    def test_zero_for_seconds_fires_immediately(self):
        rule = ThresholdRule(
            "now", key="g", threshold=1.0, mode="latest", op=">=",
        )
        reg, clock, store, manager = self._driven(rule)
        reg.gauge("g").set(3.0)
        store.scrape()
        manager.evaluate(store, clock.t)
        assert manager.state_of("now") == "firing"
        # pending and firing are two logged events at the same instant.
        assert [e.to_state for e in manager.timeline()] == [
            "pending",
            "firing",
        ]

    def test_burn_rate_needs_both_windows(self):
        rule = BurnRateRule(
            "burn", good="good_total", total="all_total",
            target=0.9, fast_window=1.0, slow_window=4.0, threshold=2.0,
        )
        reg, clock, store, manager = self._driven(rule)
        good, total = reg.counter("good_total"), reg.counter("all_total")
        # 3s of clean traffic, then 1s of 50% errors: the fast window
        # burns (5.0 > 2.0) but the slow window is still diluted.
        for _ in range(3):
            good.inc(100)
            total.inc(100)
            clock.advance(1.0)
            store.scrape()
        good.inc(50)
        total.inc(100)
        clock.advance(1.0)
        store.scrape()
        fast = rule.burn(store, 1.0, clock.t)
        slow = rule.burn(store, 4.0, clock.t)
        assert fast == pytest.approx(5.0)
        assert slow < 2.0  # 50/400 errors / 0.1 budget = 1.25
        active, value = rule.evaluate(store, clock.t)
        assert not active
        assert value == pytest.approx(slow)  # the binding window
        # Sustain the error rate until the slow window crosses too.
        for _ in range(3):
            good.inc(50)
            total.inc(100)
            clock.advance(1.0)
            store.scrape()
        active, _ = rule.evaluate(store, clock.t)
        assert active

    def test_burn_rate_empty_window_is_quiet(self):
        rule = BurnRateRule(
            "burn", good="good_total", total="all_total", target=0.99,
            fast_window=1.0, slow_window=2.0,
        )
        _, clock, store, manager = self._driven(rule)
        manager.evaluate(store, clock.t)
        assert manager.state_of("burn") == "inactive"

    def test_duplicate_rule_rejected(self):
        manager = AlertManager(
            [ThresholdRule("a", key="x", threshold=1.0)]
        )
        with pytest.raises(ConfigurationError):
            manager.add_rule(ThresholdRule("a", key="y", threshold=2.0))

    def test_rule_validation(self):
        with pytest.raises(ConfigurationError):
            ThresholdRule("bad", key="x", threshold=1.0, mode="median")
        with pytest.raises(ConfigurationError):
            ThresholdRule("bad", key="x", threshold=1.0, op="!=")
        with pytest.raises(ConfigurationError):
            ThresholdRule("bad", key="x", threshold=1.0, mode="quantile")
        with pytest.raises(ConfigurationError):
            BurnRateRule("bad", good="g", total="t", target=1.5)
        with pytest.raises(ConfigurationError):
            BurnRateRule(
                "bad", good="g", total="t",
                fast_window=2.0, slow_window=1.0,
            )

    def test_to_dict_roundtrips_through_json(self):
        rule = ThresholdRule(
            "hot", key="c_total", threshold=5.0, mode="rate",
            labels={"severity": "page"},
        )
        reg, clock, store, manager = self._driven(rule)
        c = reg.counter("c_total")
        store.scrape()
        c.inc(100)
        clock.advance(0.1)
        store.scrape()
        manager.evaluate(store, clock.t)
        payload = json.loads(json.dumps(manager.to_dict()))
        assert payload["alerts"][0]["state"] == "firing"
        assert payload["events"][0]["labels"] == {"severity": "page"}
        assert payload["evaluations"] == 1


# ---------------------------------------------------------------------------
# Critical-path analysis
# ---------------------------------------------------------------------------
class TestCriticalPath:
    def _tree(self):
        """serve.batch [0,10]: sample [1,4] (rpc [2,4]), compute [5,9]."""
        clock = ManualClock()
        tracer = Tracer(clock=clock, sample_rate=1.0, seed=0)
        with tracer.span("serve.batch"):
            clock.advance(1.0)
            with tracer.span("serve.sample"):
                clock.advance(1.0)
                with tracer.span("rpc.read_shard"):
                    clock.advance(2.0)
            clock.advance(1.0)
            with tracer.span("serve.compute"):
                clock.advance(4.0)
            clock.advance(1.0)
        return tracer.traces()[0]

    def test_segments_partition_root_exactly(self):
        root = self._tree()
        segments = critical_path(root)
        assert sum(s.seconds for s in segments) == pytest.approx(
            root.duration
        )
        # Oldest-first, contiguous coverage of [start, end].
        assert segments[0].start == root.start
        assert segments[-1].end == root.end
        for a, b in zip(segments, segments[1:]):
            assert a.end == pytest.approx(b.start)

    def test_attribution_by_layer(self):
        report = analyze_critical_paths([self._tree()])
        by_layer = report.by_layer
        # rpc [2,4] eats the sampler's tail; sample keeps [1,2].
        assert by_layer["rpc"] == pytest.approx(2.0)
        assert by_layer["sample"] == pytest.approx(1.0)
        assert by_layer["compute"] == pytest.approx(4.0)
        # The root's own gaps: [0,1], [4,5], [9,10].
        assert by_layer["serve"] == pytest.approx(3.0)
        assert report.named_fraction == 1.0
        assert report.total_seconds == pytest.approx(10.0)

    def test_overlapping_children_clamped(self):
        """A child overrunning its sibling is clamped, never double
        counted — segments still partition the root."""
        clock = ManualClock()
        tracer = Tracer(clock=clock, sample_rate=1.0, seed=0)
        root = tracer.span("serve.batch")
        a = tracer.span("serve.sample")
        clock.advance(3.0)
        b = tracer.span("serve.compute")  # starts before a closes
        clock.advance(1.0)
        a.__exit__(None, None, None)
        clock.advance(2.0)
        b.__exit__(None, None, None)
        root.__exit__(None, None, None)
        segments = critical_path(tracer.traces()[0])
        assert sum(s.seconds for s in segments) == pytest.approx(6.0)

    def test_unfinished_children_skipped(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock, sample_rate=1.0, seed=0)
        root = tracer.span("serve.batch")
        tracer.span("serve.sample")  # never exits
        clock.advance(5.0)
        root.__exit__(None, None, None)
        segments = critical_path(tracer.traces()[0])
        assert sum(s.seconds for s in segments) == pytest.approx(5.0)
        assert all(s.name == "serve.batch" for s in segments)

    def test_layer_mapping(self):
        assert layer_for("serve.sample") == "sample"
        assert layer_for("serve.batch") == "serve"
        assert layer_for("rpc.backoff") == "backoff"
        assert layer_for("rpc.read_shard") == "rpc"
        assert layer_for("samtree.sample_many") == "samtree"
        assert layer_for("mystery.op") == "other"

    def test_root_name_filter(self):
        clock = ManualClock()
        tracer = Tracer(clock=clock, sample_rate=1.0, seed=0)
        with tracer.span("client.read"):
            clock.advance(1.0)
        with tracer.span("serve.batch"):
            clock.advance(2.0)
        report = analyze_critical_paths(
            tracer.traces(), root_name="serve.batch"
        )
        assert report.traces == 1
        assert report.total_seconds == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Cluster + rig wiring
# ---------------------------------------------------------------------------
class TestClusterWiring:
    def test_attach_monitor_self_metrics(self):
        cluster = LocalCluster(num_servers=2, network=NetworkModel())
        monitor = cluster.attach_monitor(interval=0.05)
        assert cluster.monitor is monitor
        monitor.scrape()
        monitor.scrape()
        snap = cluster.registry.snapshot()
        assert snap.get("repro_monitor_scrapes_total") == 2.0
        assert snap.get("repro_monitor_series") > 0
        assert snap.get("repro_alerts_evaluations_total") == 2.0
        assert snap.get("repro_alerts_firing") == 0.0

    def test_reattach_rebinds_views(self):
        """A second attach_monitor leaves the views reading the live
        monitor, not a stale closure."""
        cluster = LocalCluster(num_servers=1, network=NetworkModel())
        cluster.attach_monitor(interval=0.05)
        cluster.monitor.scrape()
        fresh = cluster.attach_monitor(interval=0.05)
        fresh.scrape()
        snap = cluster.registry.snapshot()
        assert snap.get("repro_monitor_scrapes_total") == 1.0

    def test_rig_monitor_uses_serving_keep_list(self):
        rig = build_serving_rig(
            num_shards=2, num_sources=50, monitor_interval=0.05,
            prewarm=False,
        )
        rig.monitor.scrape()
        names = rig.monitor.store.series_names()
        assert names  # serving + self series present
        assert all(
            n.startswith(("repro_serving_", "repro_monitor_",
                          "repro_alerts_"))
            for n in names
        )


# ---------------------------------------------------------------------------
# The acceptance scenario: flash-crowd alert timeline + critical path
# ---------------------------------------------------------------------------
class TestFlashCrowdTimeline:
    #: flash_crowd: calm until t0+1.0, 8x spike for 0.5s, then recovery.
    ONSET = 1.0
    SPIKE_END = 1.5

    def _run(self, seed: int = 0):
        rig = build_serving_rig(
            num_shards=4,
            num_sources=400,
            seed=seed,
            trace=True,
            monitor_interval=0.02,
        )
        network = rig.cluster.network
        scenario = SCENARIOS["flash_crowd"](rig.num_sources, seed=seed + 7)
        t0 = network.now()
        report = ScenarioRunner(rig, scenario).run()
        return rig, report, t0

    def test_burn_alert_fires_in_onset_window_and_resolves(self):
        rig, report, t0 = self._run()
        timeline = rig.monitor.alerts.timeline("serving_availability_burn")
        firing = [e for e in timeline if e.to_state == "firing"]
        resolved = [e for e in timeline if e.to_state == "resolved"]
        assert len(firing) == 1
        assert len(resolved) == 1
        # Fires within the onset window: after the spike begins, before
        # the fast window + de-flap could possibly have passed twice.
        assert self.ONSET < firing[0].t - t0 <= self.ONSET + 0.2
        # Resolves once shedding + recovery stabilise: soon after the
        # spike ends, well before the scenario closes.
        assert self.SPIKE_END < resolved[0].t - t0 <= 2.0
        assert firing[0].value > 8.0  # burn at fire time beats threshold
        # End state: nothing stuck.
        assert rig.monitor.alerts.state_of(
            "serving_availability_burn"
        ) == "inactive"
        # Shedding kept end-to-end availability at target throughout.
        assert report.meets_target

    def test_no_firing_before_onset(self):
        rig, _, t0 = self._run()
        timeline = rig.monitor.alerts.timeline("serving_availability_burn")
        assert all(
            e.t - t0 > self.ONSET
            for e in timeline
            if e.to_state == "firing"
        )

    def test_timeline_is_deterministic(self):
        rig_a, _, t0_a = self._run()
        rig_b, _, t0_b = self._run()
        ta = [
            (round(e.t - t0_a, 9), e.rule, e.to_state)
            for e in rig_a.monitor.alerts.timeline()
        ]
        tb = [
            (round(e.t - t0_b, 9), e.rule, e.to_state)
            for e in rig_b.monitor.alerts.timeline()
        ]
        assert ta == tb
        assert ta  # the scenario does produce transitions

    def test_critical_path_names_90_percent(self):
        rig, _, _ = self._run()
        report = analyze_critical_paths(
            rig.tracer.traces(), root_name="serve.batch"
        )
        assert report.traces > 0
        assert report.named_fraction >= 0.90
        # The serving pipeline's layers carry the time.
        assert set(report.by_layer) <= {
            "sample", "gather", "compute", "serve", "client", "rpc",
            "backoff", "server", "samtree", "other",
        }

    def test_monitored_run_matches_unmonitored_slo(self):
        """The monitor observes; it must not change what it observes."""
        rig_m, report_m, _ = self._run()
        rig_p = build_serving_rig(
            num_shards=4, num_sources=400, seed=0,
        )
        scenario = SCENARIOS["flash_crowd"](rig_p.num_sources, seed=7)
        report_p = ScenarioRunner(rig_p, scenario).run()
        assert report_m.submitted == report_p.submitted
        assert report_m.answered_fresh == report_p.answered_fresh
        assert report_m.availability == report_p.availability


# ---------------------------------------------------------------------------
# CLI: repro watch / repro alerts
# ---------------------------------------------------------------------------
class TestWatchAlertsCLI:
    def test_watch_json(self, capsys):
        rc = cli_main(
            [
                "watch", "--scenario", "flash_crowd", "--format", "json",
                "--vertices", "200", "--interval", "0.05",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["scenario"] == "flash_crowd"
        assert payload["samples"]  # one row per scrape
        assert payload["alerts"]["events"]
        assert payload["critical_path"]["traces"] > 0
        assert 0.9 <= payload["critical_path"]["named_fraction"] <= 1.0

    def test_watch_human_renders_rows(self, capsys):
        rc = cli_main(
            [
                "watch", "--scenario", "calm", "--vertices", "100",
                "--interval", "0.1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "rps" in out
        assert "alert timeline:" in out
        assert "critical path" in out

    def test_alerts_prometheus_lints_and_has_monitor_series(self, capsys):
        rc = cli_main(
            [
                "alerts", "--scenario", "flash_crowd", "--format",
                "prometheus", "--vertices", "200",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        lint_prometheus(out)
        assert "repro_monitor_scrapes_total" in out
        assert "repro_alerts_transitions_total" in out

    def test_alerts_json(self, capsys):
        rc = cli_main(
            [
                "alerts", "--scenario", "flash_crowd", "--format", "json",
                "--vertices", "200",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["scenario"] == "flash_crowd"
        assert payload["scrapes"] > 0
        rules = {e["rule"] for e in payload["events"]}
        assert "serving_availability_burn" in rules

    def test_alerts_fail_on_firing_passes_when_quiet(self, capsys):
        rc = cli_main(
            [
                "alerts", "--scenario", "calm", "--vertices", "100",
                "--fail-on-firing",
            ]
        )
        capsys.readouterr()
        assert rc == 0
