"""Exception-hierarchy guarantees and cross-module edge cases."""

from __future__ import annotations

import random

import pytest

import repro
from repro.concurrency.palm import PalmExecutor
from repro.core.compression import MAX_ID
from repro.core.metrics import InstrumentedStore
from repro.core.samtree import Samtree, SamtreeConfig
from repro.core.temporal import TemporalGraphStore
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.errors import (
    ConfigurationError,
    EmptyStructureError,
    IndexOutOfRangeError,
    InvalidWeightError,
    InvariantViolationError,
    PartitionError,
    ReproError,
    ShapeError,
    StoreOutOfMemoryError,
    VertexNotFoundError,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            EmptyStructureError,
            IndexOutOfRangeError,
            InvalidWeightError,
            VertexNotFoundError,
            StoreOutOfMemoryError,
            InvariantViolationError,
            PartitionError,
            ShapeError,
            ConfigurationError,
        ):
            assert issubclass(exc, ReproError)

    def test_stdlib_compatibility(self):
        """Each error is also catchable via the natural builtin."""
        assert issubclass(EmptyStructureError, IndexError)
        assert issubclass(IndexOutOfRangeError, IndexError)
        assert issubclass(InvalidWeightError, ValueError)
        assert issubclass(VertexNotFoundError, KeyError)
        assert issubclass(StoreOutOfMemoryError, MemoryError)
        assert issubclass(InvariantViolationError, AssertionError)
        assert issubclass(ShapeError, ValueError)

    def test_one_except_clause_covers_the_library(self):
        try:
            Samtree(SamtreeConfig(capacity=1))
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")

    def test_package_exports_version(self):
        assert repro.__version__


class TestExtremeIDs:
    def test_max_id_roundtrip(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        tree.insert(MAX_ID, 1.0)
        tree.insert(0, 2.0)
        tree.insert(MAX_ID - 1, 3.0)
        assert tree.get_weight(MAX_ID) == pytest.approx(1.0)
        assert tree.get_weight(0) == pytest.approx(2.0)
        tree.check_invariants()

    def test_max_id_splits(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        for i in range(50):
            tree.insert(MAX_ID - i, 1.0)
        tree.check_invariants()
        assert tree.degree == 50

    def test_store_with_full_64bit_ids(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=4))
        ids = [0, 1, 2**32, 2**40 + 7, MAX_ID]
        for i, v in enumerate(ids):
            store.add_edge(v, ids[(i + 1) % len(ids)], 1.0)
        assert store.num_edges == len(ids)
        store.check_invariants()


class TestZeroWeightRegimes:
    def test_all_zero_tree_operations(self, rng):
        tree = Samtree(SamtreeConfig(capacity=4))
        for v in range(20):
            tree.insert(v, 0.0)
        tree.check_invariants()
        assert tree.total_weight == 0.0
        assert tree.sample(rng) in range(20)
        out = tree.sample_many(10, rng)
        assert all(v in range(20) for v in out)

    def test_mixed_zero_and_positive(self, rng):
        tree = Samtree(SamtreeConfig(capacity=4))
        tree.insert(1, 0.0)
        tree.insert(2, 5.0)
        draws = tree.sample_many(500, rng)
        assert set(draws) == {2}

    def test_delete_zero_weight(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        tree.insert(1, 0.0)
        assert tree.delete(1) is True
        assert tree.degree == 0


class TestConfigBoundaries:
    def test_minimum_capacity(self):
        tree = Samtree(SamtreeConfig(capacity=4))
        for v in range(100):
            tree.insert(v, 1.0)
        tree.check_invariants()

    def test_alpha_exceeding_capacity(self):
        """Huge slack degrades gracefully (min fill floors at 1)."""
        config = SamtreeConfig(capacity=4, alpha=1000)
        assert config.leaf_min_fill == 1
        tree = Samtree(config)
        for v in range(60):
            tree.insert(v, 1.0)
        for v in range(0, 60, 2):
            tree.delete(v)
        tree.check_invariants()

    def test_config_is_frozen(self):
        config = SamtreeConfig()
        with pytest.raises(Exception):
            config.capacity = 8  # type: ignore[misc]


class TestWrapperCompositions:
    def test_palm_over_instrumented_store(self, rng):
        """The executor falls back to per-op application on stores
        without the batch hook — and metrics still record everything."""
        store = InstrumentedStore(DynamicGraphStore(SamtreeConfig(capacity=8)))
        executor = PalmExecutor(store, num_threads=2)
        assert executor.tree_batching is False
        ops = [EdgeOp.insert(i % 5, i, 1.0) for i in range(100)]
        result = executor.apply_batch(ops)
        assert all(result.outcomes)
        assert store.metrics.histograms["insert"].count == 100

    def test_palm_over_temporal_store(self):
        temporal = TemporalGraphStore(window=10)
        executor = PalmExecutor(temporal, num_threads=2)
        executor.apply_batch([EdgeOp.insert(1, i, 1.0) for i in range(5)])
        assert temporal.num_edges == 5
        temporal.advance(10)
        assert temporal.num_edges == 0

    def test_temporal_over_instrumented(self):
        inner = InstrumentedStore(DynamicGraphStore())
        temporal = TemporalGraphStore(window=5, store=inner)
        temporal.observe(0, 1, 2, 1.0)
        temporal.advance(5)
        assert inner.metrics.histograms["insert"].count == 1
        assert inner.metrics.histograms["delete"].count == 1


class TestSamtreeDeepStructures:
    def test_three_level_deletion_cascade(self):
        """Deleting from a 3-level tree merges all the way to the root."""
        tree = Samtree(SamtreeConfig(capacity=4))
        n = 400
        for v in range(n):
            tree.insert(v, 1.0)
        assert tree.height >= 4
        r = random.Random(0)
        order = list(range(n))
        r.shuffle(order)
        for i, v in enumerate(order):
            tree.delete(v)
            if i % 97 == 0:
                tree.check_invariants()
        assert tree.degree == 0
        assert tree.height == 1

    def test_alternating_insert_delete_stays_balanced(self):
        tree = Samtree(SamtreeConfig(capacity=8))
        r = random.Random(1)
        live = set()
        for step in range(6000):
            v = r.randrange(512)
            if v in live and r.random() < 0.5:
                tree.delete(v)
                live.discard(v)
            else:
                tree.insert(v, 1.0)
                live.add(v)
        tree.check_invariants()
        # Height bounded by log_{c/2}(n) + 1 with plenty of slack.
        assert tree.height <= 5
        assert set(tree.neighbors()) == live
