"""Property-based tests: FSTable vs a naive flat reference (hypothesis)."""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cstable import CSTable
from repro.core.fenwick import FSTable

# Weights with enough spread to stress float paths but no degenerate inf.
weights_st = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
weight_lists = st.lists(weights_st, min_size=0, max_size=200)


@given(weight_lists)
def test_total_matches_sum(weights: List[float]):
    assert FSTable(weights).total() == pytest.approx(sum(weights), rel=1e-9, abs=1e-9)


@given(weight_lists.filter(lambda w: len(w) > 0))
def test_prefix_sums_match_reference(weights: List[float]):
    table = FSTable(weights)
    tol = 1e-9 * max(1.0, sum(weights))
    running = 0.0
    for i, w in enumerate(weights):
        running += w
        assert table.prefix_sum(i) == pytest.approx(running, rel=1e-9, abs=tol)


@given(weight_lists)
def test_roundtrip_to_weights(weights: List[float]):
    # Reconstruction subtracts partial sums, so the absolute error scales
    # with the table's total mass (standard float cancellation).
    tol = 1e-9 * max(1.0, sum(weights))
    assert FSTable(weights).to_weights() == pytest.approx(
        weights, rel=1e-9, abs=tol
    )


@given(weight_lists)
def test_incremental_build_equals_bulk(weights: List[float]):
    inc = FSTable()
    for w in weights:
        inc.append(w)
    bulk = FSTable(weights)
    tol = 1e-9 * max(1.0, sum(weights))
    for i in range(len(weights)):
        assert inc.entry(i) == pytest.approx(bulk.entry(i), rel=1e-9, abs=tol)


# ---------------------------------------------------------------------------
# Linear O(n) construction (FSTable.from_array, the bulk-build path)
# ---------------------------------------------------------------------------
@given(weight_lists)
@settings(max_examples=200)
def test_from_array_matches_incremental_construction(weights: List[float]):
    """The vectorized linear build agrees with the incremental-update
    construction on every prefix sum, the total, and FTS draws."""
    inc = FSTable()
    for w in weights:
        inc.append(w)
    vec = FSTable.from_array(np.asarray(weights, dtype=np.float64))
    assert len(vec.to_weights()) == len(weights)
    total = sum(weights)
    tol = 1e-9 * max(1.0, total)
    assert vec.total() == pytest.approx(inc.total(), rel=1e-9, abs=tol)
    for i in range(len(weights)):
        assert vec.prefix_sum(i) == pytest.approx(
            inc.prefix_sum(i), rel=1e-9, abs=tol
        )
    # FTS draws: same index at a grid of sampling masses.
    if total > 0:
        for step in range(9):
            mass = (step / 9.0) * total
            assert vec.sample_with(mass) == inc.sample_with(mass)


def test_from_array_exact_across_sizes_0_to_1k():
    """Sizes 0..1k: with integer-valued weights the float addition order
    cannot matter, so the linear build is *exactly* the insert-loop
    table — internal tree array included — and FTS draws coincide."""
    rng = random.Random(42)
    for n in list(range(0, 66)) + [127, 128, 129, 255, 256, 500, 1000]:
        weights = [float(rng.randrange(0, 100)) for _ in range(n)]
        inc = FSTable()
        for w in weights:
            inc.append(w)
        vec = FSTable.from_array(np.asarray(weights))
        assert vec._tree == inc._tree, n
        assert vec.total() == inc.total()
        total = inc.total()
        if total > 0:
            for u in (0.0, 0.123, 0.5, 0.875, 0.999999):
                assert vec.sample_with(u * total) == inc.sample_with(
                    u * total
                ), n


def test_from_array_rejects_bad_weights():
    from repro.errors import InvalidWeightError

    with pytest.raises(InvalidWeightError):
        FSTable.from_array(np.asarray([1.0, -2.0]))
    with pytest.raises(InvalidWeightError):
        FSTable.from_array(np.asarray([1.0, float("nan")]))
    with pytest.raises(InvalidWeightError):
        FSTable.from_array(np.asarray([float("inf")]))


# An op sequence: (kind, value) applied to both FSTable and a flat list.
ops_st = st.lists(
    st.tuples(
        st.sampled_from(["append", "update", "delete"]),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.integers(min_value=0, max_value=10_000),
    ),
    min_size=1,
    max_size=120,
)


@given(ops_st)
@settings(max_examples=200)
def test_op_sequences_match_flat_reference(
    ops: List[Tuple[str, float, int]]
):
    """Arbitrary interleavings of append / in-place update / swap-delete
    keep the FSTable equal to a flat reference list."""
    table = FSTable()
    ref: List[float] = []
    for kind, w, raw_i in ops:
        if kind == "append" or not ref:
            table.append(w)
            ref.append(w)
        elif kind == "update":
            i = raw_i % len(ref)
            table.update(i, w)
            ref[i] = w
        else:
            i = raw_i % len(ref)
            table.delete(i)
            ref[i] = ref[-1]
            ref.pop()
    assert table.to_weights() == pytest.approx(ref, rel=1e-9, abs=1e-9)
    assert table.total() == pytest.approx(sum(ref), rel=1e-9, abs=1e-6)


@given(
    st.lists(
        st.floats(min_value=1e-3, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=150,
    ),
    st.floats(min_value=0.0, max_value=1.0, exclude_max=True),
)
def test_fts_equals_its(weights: List[float], u: float):
    """FTS over soft prefix sums selects the same index as ITS over the
    strict prefix sums for any sampling mass (paper §V-B)."""
    fs = FSTable(weights)
    cs = CSTable(weights)
    mass = u * sum(weights)
    assert fs.sample_with(mass) == cs.search(mass)


@given(
    st.lists(
        st.floats(min_value=1e-3, max_value=10.0, allow_nan=False),
        min_size=2,
        max_size=60,
    ),
    st.integers(min_value=0, max_value=10_000),
)
def test_delete_preserves_fts_its_agreement(weights: List[float], raw: int):
    fs = FSTable(weights)
    i = raw % len(weights)
    fs.delete(i)
    ref = list(weights)
    ref[i] = ref[-1]
    ref.pop()
    cs = CSTable(ref)
    for step in range(7):
        mass = (step / 7.0) * sum(ref)
        assert fs.sample_with(mass) == cs.search(mass)
