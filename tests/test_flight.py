"""Tests for the flight recorder, incident bundles, and replay
(``repro.obs.flight`` / ``incident`` / ``replay``, DESIGN.md §17).

Covers the bounded event rings (wrap, eviction accounting, oldest-first
iteration), the recorder's per-layer hooks (admission, breaker, fault,
retry, WAL, replica, migration, alert, chaos), the RPC error context
satellite, the incident manager's trigger paths (alert with per-rule
cooldown, manual, exception guard), bundle (de)serialization, and the
CLI surfaces.

The acceptance scenario of the issue lives in
:class:`TestIncidentEndToEnd`: a seeded flash crowd fires the
availability burn-rate alert, the manager freezes a bundle at the
firing instant, and :func:`replay_bundle` re-runs the captured window
from the bundle's spec and converges — same alert, same simulated
instant, same event stream — while a tampered bundle diverges and
exits 3 through ``repro replay``.
"""

from __future__ import annotations

import copy
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.core.samtree import SamtreeConfig
from repro.distributed import (
    FaultPolicy,
    LocalCluster,
    NetworkModel,
    RetryPolicy,
)
from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    RPCError,
    TransientRPCError,
)
from repro.obs.alerts import AlertEvent
from repro.obs.flight import DEFAULT_CATEGORIES, EventRing, FlightRecorder
from repro.obs.incident import (
    IncidentManager,
    list_bundles,
    load_bundle,
    write_bundle,
)
from repro.obs.replay import (
    TIME_TOLERANCE,
    build_rig_from_spec,
    make_spec,
    replay_bundle,
    scenario_from_spec,
)
from repro.serving.admission import CircuitBreaker
from repro.serving.scenarios import ScenarioRunner, build_serving_rig


class ManualClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> float:
        self.t += dt
        return self.t


# ---------------------------------------------------------------------------
# rings
# ---------------------------------------------------------------------------
class TestEventRing:
    def test_append_and_order(self):
        ring = EventRing("admission", capacity=4)
        for i in range(3):
            ring.append(float(i), "admit", {"request_id": i})
        assert len(ring) == 3
        assert ring.dropped == 0
        events = ring.events()
        assert [e["request_id"] for e in events] == [0, 1, 2]
        assert events[0] == {"t": 0.0, "kind": "admit", "request_id": 0}

    def test_wrap_evicts_oldest(self):
        ring = EventRing("admission", capacity=4)
        for i in range(10):
            ring.append(float(i), "admit", {"request_id": i})
        assert len(ring) == 4
        assert ring.total == 10
        assert ring.dropped == 6
        assert [e["request_id"] for e in ring.events()] == [6, 7, 8, 9]

    def test_clear(self):
        ring = EventRing("x", capacity=2)
        ring.append(0.0, "k", {})
        ring.clear()
        assert len(ring) == 0
        assert ring.total == 0
        assert ring.events() == []

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            EventRing("x", capacity=0)


class TestFlightRecorder:
    def test_record_uses_bound_clock(self):
        clock = ManualClock(5.0)
        rec = FlightRecorder(clock=clock, capacity=8)
        rec.record("wal", "append", shard=0, ops=3)
        clock.advance(1.0)
        rec.record("wal", "append", t=2.5, shard=1, ops=1)
        events = rec.events("wal")
        assert events[0]["t"] == 5.0  # clock at record time
        assert events[1]["t"] == 2.5  # explicit t wins
        assert rec.events_total == 2

    def test_unknown_category_raises(self):
        rec = FlightRecorder(capacity=4)
        with pytest.raises(ConfigurationError):
            rec.record("nope", "kind")

    def test_per_category_capacities(self):
        rec = FlightRecorder(capacity=4, capacities={"admission": 2})
        assert rec.ring("admission").capacity == 2
        assert rec.ring("wal").capacity == 4

    def test_snapshot_shape(self):
        rec = FlightRecorder(capacity=4)
        rec.record("breaker", "open", t=1.0, shard=2)
        snap = rec.snapshot()
        assert snap["events_total"] == 1
        assert snap["dropped_total"] == 0
        assert set(snap["categories"]) == set(DEFAULT_CATEGORIES)
        breaker = snap["categories"]["breaker"]
        assert breaker["total"] == 1
        assert breaker["events"] == [{"t": 1.0, "kind": "open", "shard": 2}]
        # snapshot round-trips through JSON unchanged
        assert json.loads(json.dumps(snap, sort_keys=True)) == json.loads(
            json.dumps(rec.to_dict(), sort_keys=True)
        )

    def test_observe_alerts_records_transitions(self):
        from repro.obs import AlertManager, MetricsRegistry, ThresholdRule
        from repro.obs.monitor import TimeSeriesStore

        clock = ManualClock()
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        store = TimeSeriesStore(registry, clock=clock)
        manager = AlertManager(
            [ThresholdRule("deep", "depth", threshold=5.0, mode="latest",
                           window=1.0)],
        )
        rec = FlightRecorder(clock=clock, capacity=8)
        rec.observe_alerts(manager)
        rec.observe_alerts(manager)  # idempotent
        gauge.set(9.0)
        clock.advance(1.0)
        store.scrape(clock())
        manager.evaluate(store, clock())
        events = rec.events("alert")
        assert [e["kind"] for e in events] == ["pending", "firing"]
        assert events[-1]["rule"] == "deep"
        assert events[-1]["value"] == 9.0
        assert events[-1]["threshold"] == 5.0


# ---------------------------------------------------------------------------
# satellites: error context + alert event threshold
# ---------------------------------------------------------------------------
class TestRPCErrorContext:
    def test_context_carries_only_set_fields(self):
        err = RPCError("boom", shard=2, attempt=3, timestamp=1.5)
        assert err.context() == {
            "shard": 2, "attempt": 3, "timestamp": 1.5
        }
        assert RPCError("bare").context() == {}

    def test_retry_populates_context_and_records(self):
        clock = ManualClock()
        rec = FlightRecorder(clock=clock, capacity=16)
        policy = RetryPolicy(
            max_attempts=3, base_backoff_seconds=1e-4, seed=1,
            recorder=rec,
        )

        def always_fails():
            raise TransientRPCError("shard flaked", shard=1, endpoint="w")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.run(always_fails, now=clock,
                       sleep=lambda s: clock.advance(s))
        err = excinfo.value
        assert err.shard == 1
        assert err.endpoint == "w"
        assert err.attempt == 3
        assert err.timestamp is not None
        kinds = [e["kind"] for e in rec.events("retry")]
        assert kinds == ["transient", "transient", "transient", "exhausted"]
        exhausted = rec.events("retry")[-1]
        assert exhausted["shard"] == 1
        assert exhausted["attempts"] == 3

    def test_alert_event_to_dict_carries_value_and_threshold(self):
        event = AlertEvent(
            t=1.0, rule="r", from_state="pending", to_state="firing",
            value=42.0, labels={"severity": "page"}, threshold=8.0,
        )
        payload = event.to_dict()
        assert payload["value"] == 42.0
        assert payload["threshold"] == 8.0


# ---------------------------------------------------------------------------
# layer hooks through a real cluster
# ---------------------------------------------------------------------------
class TestClusterHooks:
    def test_wal_fault_and_chaos_paths_record(self, tmp_path):
        import random

        from repro.core.ingest import EdgeBatch

        network = NetworkModel()
        cluster = LocalCluster(
            num_servers=2,
            config=SamtreeConfig(capacity=8),
            network=network,
            durable=True,
            wal_dir=str(tmp_path / "wal"),
            fault_policy=FaultPolicy(),
            fault_seed=3,
            retry=RetryPolicy(max_attempts=4, base_backoff_seconds=1e-4),
        )
        rec = cluster.attach_recorder()
        assert cluster.recorder is rec
        assert cluster.fault_injector.recorder is rec

        rng = random.Random(0)
        srcs = [rng.randrange(40) for _ in range(200)]
        dsts = [rng.randrange(80) for _ in range(200)]
        cluster.client.bulk_load(srcs, dsts, 1.0)
        cluster.client.add_edge(1, 2, 1.0)
        assert any(e["kind"] == "append" for e in rec.events("wal"))

        assert cluster.checkpoint_all() > 0
        checkpoints = [e for e in rec.events("wal")
                       if e["kind"] == "checkpoint"]
        assert checkpoints and all(e["bytes"] > 0 for e in checkpoints)

        # policy swap + crash/recover land in fault
        previous = cluster.fault_injector.set_policy(
            FaultPolicy(transient_error_rate=0.5)
        )
        cluster.fault_injector.set_policy(previous)
        swaps = [e for e in rec.events("fault") if e["kind"] == "policy_swap"]
        assert len(swaps) == 2
        assert swaps[0]["new"]["transient_error_rate"] == 0.5

        cluster.crash_shard(0)
        cluster.recover_all(sync=True)
        kinds = {e["kind"] for e in rec.events("fault")}
        assert "crash" in kinds and "recover" in kinds
        recover = [e for e in rec.events("fault")
                   if e["kind"] == "recover"][0]
        assert recover["shard"] == 0
        assert recover["replayed"] >= 0

        # self-metric views registered on the cluster registry
        snap = cluster.registry.snapshot()
        assert snap.get("repro_recorder_events_total") == float(
            rec.events_total
        )

    def test_replica_drop_and_migration_record(self):
        import numpy as np

        from repro.datasets.stream import RequestStream
        from repro.distributed.rebalance import execute_plan, plan_rebalance

        cluster = LocalCluster(
            num_servers=3,
            config=SamtreeConfig(capacity=8),
            hot_set_capacity=64,
        )
        rec = cluster.attach_recorder()
        rng = np.random.default_rng(1)
        srcs = np.repeat(np.arange(60, dtype=np.int64), 6)
        dsts = rng.integers(0, 60, srcs.size).astype(np.int64)
        cluster.client.bulk_load(srcs, dsts, 1.0)
        requests = RequestStream(60, exponent=1.2, seed=5)
        for _ in range(8):
            cluster.client.sample_neighbors_many(
                requests.batch(32), 4, rng
            )
        installed = cluster.replicate_hot(top_n=4, copies=1, min_count=1)
        assert installed
        assert cluster.drop_hot_replicas() > 0
        drops = rec.events("replica")
        assert drops and drops[0]["kind"] == "drop"
        assert drops[0]["copies"] > 0

        moves = plan_rebalance(cluster, tolerance=0.01, max_moves=4)
        if moves:  # the seeded skew reliably yields at least one move
            execute_plan(cluster, moves, verify=True)
            cuts = rec.events("migration")
            assert cuts and cuts[0]["kind"] == "cutover"
            assert {"src", "from_shard", "to_shard", "edges"} <= set(
                cuts[0]
            )

    def test_breaker_transitions_record(self):
        clock = ManualClock()
        rec = FlightRecorder(clock=clock, capacity=8)
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=0.5, shard=1, recorder=rec
        )
        breaker.record_failure(clock())
        breaker.record_failure(clock())  # trips open
        clock.advance(0.6)
        assert breaker.allow(clock())  # half-open probe
        breaker.record_failure(clock())  # fails while open -> reopen
        clock.advance(0.6)
        assert breaker.allow(clock())
        breaker.record_success()  # closes
        kinds = [e["kind"] for e in rec.events("breaker")]
        assert kinds == ["open", "half_open", "reopen", "half_open",
                         "close"]
        assert all(e["shard"] == 1 for e in rec.events("breaker"))
        # steady-state successes on a closed breaker stay silent
        breaker.record_success()
        assert len(rec.events("breaker")) == 5

    def test_serving_rig_records_admission(self):
        rig = build_serving_rig(
            num_shards=2, num_sources=100, seed=3, recorder=True
        )
        rig.service.submit([5], arrival=rig.cluster.network.now())
        rig.service.flush()
        admits = [e for e in rig.recorder.events("admission")
                  if e["kind"] == "admit"]
        assert admits and admits[0]["request_id"] == 0
        assert "queue_depth" in admits[0]


# ---------------------------------------------------------------------------
# incident manager
# ---------------------------------------------------------------------------
class TestIncidentManager:
    def _cluster(self):
        return LocalCluster(
            num_servers=2, config=SamtreeConfig(capacity=8)
        )

    def test_manual_trigger_and_bundle_roundtrip(self, tmp_path):
        cluster = LocalCluster(
            num_servers=2, config=SamtreeConfig(capacity=8), durable=True
        )
        cluster.attach_recorder()
        cluster.client.add_edge(1, 2, 1.0)
        manager = IncidentManager(cluster, out_dir=str(tmp_path))
        manager.mark_start({"scenario": "calm", "seed": 0})
        bundle = manager.trigger(reason="operator poke")
        assert bundle["meta"]["trigger"] == "manual"
        assert bundle["meta"]["reason"] == "operator poke"
        assert bundle["events"]["events_total"] > 0
        path = os.path.join(tmp_path, bundle["meta"]["id"])
        loaded = load_bundle(path)
        assert loaded["meta"]["id"] == bundle["meta"]["id"]
        assert loaded["spec"] == {"scenario": "calm", "seed": 0}
        metas = list_bundles(str(tmp_path))
        assert [m["id"] for m in metas] == [bundle["meta"]["id"]]
        assert metas[0]["path"] == path

    def test_cooldown_suppresses_refires(self):
        cluster = self._cluster()
        manager = IncidentManager(cluster, cooldown=1.0)
        fire = lambda t: manager._on_alert(AlertEvent(
            t=t, rule="burn", from_state="pending", to_state="firing",
            value=1.0, labels={},
        ))
        fire(0.0)
        fire(0.5)   # within cooldown: suppressed
        fire(0.99)  # still within
        fire(1.5)   # past cooldown: captured
        assert len(manager.incidents) == 2
        assert manager.suppressed == 2
        # non-firing transitions never capture
        manager._on_alert(AlertEvent(
            t=9.0, rule="burn", from_state="firing", to_state="resolved",
            value=0.0, labels={},
        ))
        assert len(manager.incidents) == 2

    def test_guard_captures_exception_bundles(self):
        cluster = self._cluster()
        manager = IncidentManager(cluster)
        with pytest.raises(TransientRPCError):
            with manager.guard():
                raise TransientRPCError("mid-run blowup", shard=4)
        assert len(manager.incidents) == 1
        meta = manager.incidents[0]["meta"]
        assert meta["trigger"] == "exception"
        assert meta["error_context"]["shard"] == 4
        assert "mid-run blowup" in meta["traceback"]

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ConfigurationError):
            IncidentManager(self._cluster(), cooldown=-1.0)

    def test_load_bundle_missing_section_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_bundle(str(tmp_path / "nope"))
        os.makedirs(tmp_path / "incident-x")
        with pytest.raises(ConfigurationError):
            load_bundle(str(tmp_path / "incident-x"))


# ---------------------------------------------------------------------------
# the acceptance scenario: capture -> replay convergence
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def captured_incident(tmp_path_factory):
    """One monitored flash-crowd run with an auto-captured bundle."""
    out_dir = str(tmp_path_factory.mktemp("incidents"))
    spec = make_spec(
        "flash_crowd",
        seed=0,
        rig_kwargs={
            "num_shards": 4,
            "num_sources": 400,
            "trace": True,
            "monitor_interval": 0.05,
        },
    )
    rig = build_rig_from_spec(spec)
    manager = IncidentManager(rig.cluster, out_dir=out_dir)
    manager.watch(rig.monitor.alerts)
    manager.mark_start(spec)
    runner = ScenarioRunner(rig, scenario_from_spec(spec, rig.num_sources))
    report = runner.run()
    return {
        "spec": spec,
        "rig": rig,
        "manager": manager,
        "report": report,
        "out_dir": out_dir,
    }


class TestIncidentEndToEnd:
    def test_flash_crowd_fires_and_captures(self, captured_incident):
        manager = captured_incident["manager"]
        assert manager.incidents, "flash crowd fired no alert"
        meta = manager.incidents[0]["meta"]
        assert meta["trigger"] == "alert"
        assert meta["rule"] == "serving_availability_burn"
        assert meta["value"] > meta["threshold"]
        bundle = manager.incidents[0]
        assert bundle["events"]["events_total"] > 0
        cats = bundle["events"]["categories"]
        assert cats["admission"]["total"] > 0
        assert cats["alert"]["total"] > 0
        assert bundle["metrics"]["window_diff"][
            "repro_serving_submitted"
        ] > 0
        assert bundle["spec"] == captured_incident["spec"]
        # persisted alongside
        assert list_bundles(captured_incident["out_dir"])

    def test_replay_converges_in_memory_and_from_disk(
        self, captured_incident
    ):
        original = captured_incident["manager"].incidents[0]
        result = replay_bundle(original)
        assert result.converged, result.mismatches
        assert result.alert_match and result.events_match
        assert abs(
            result.replay_t_rel - original["meta"]["t_rel"]
        ) <= TIME_TOLERANCE
        # and identically from the serialized bundle directory
        path = os.path.join(
            captured_incident["out_dir"], original["meta"]["id"]
        )
        disk = replay_bundle(path)
        assert disk.converged, disk.mismatches
        payload = disk.to_dict()
        assert payload["converged"] is True
        assert payload["rule"] == "serving_availability_burn"

    def test_tampered_bundle_diverges(self, captured_incident):
        original = captured_incident["manager"].incidents[0]
        tampered = copy.deepcopy(
            json.loads(json.dumps(original, sort_keys=True))
        )
        tampered["events"]["categories"]["admission"]["events"][0][
            "t"
        ] += 1e-3
        result = replay_bundle(tampered)
        assert not result.converged
        assert not result.events_match
        assert result.alert_match  # the alert itself still re-fires
        assert any("admission" in m for m in result.mismatches)

    def test_bundle_without_spec_refuses_replay(self, captured_incident):
        orphan = copy.deepcopy(captured_incident["manager"].incidents[0])
        orphan["spec"] = None
        with pytest.raises(ConfigurationError):
            replay_bundle(orphan)

    def test_chaos_brownout_replays_bit_identically(self):
        """Brownout chaos (fault-policy swaps) lands in the recorder
        with the scenario seed, and two independent runs of the same
        spec produce byte-identical recorder snapshots."""
        spec = make_spec(
            "brownout",
            seed=0,
            rig_kwargs={
                "num_shards": 4,
                "num_sources": 400,
                "monitor_interval": 0.05,
            },
            scenario_kwargs={"spike_rate": 1.0, "spike_seconds": 6e-3},
        )

        def run():
            rig = build_rig_from_spec(spec)
            runner = ScenarioRunner(
                rig, scenario_from_spec(spec, rig.num_sources)
            )
            runner.run()
            return rig.recorder.snapshot()

        first, second = run(), run()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        chaos = first["categories"]["chaos"]["events"]
        assert [e["kind"] for e in chaos] == ["policy", "policy"]
        assert all(e["seed"] == spec["scenario_seed"] for e in chaos)
        assert chaos[0]["policy"]["latency_spike_rate"] == 1.0
        assert chaos[1]["policy"] == "restore"
        assert first["categories"]["fault"]["total"] > 0  # spikes landed


# ---------------------------------------------------------------------------
# CLI surfaces (golden schemas)
# ---------------------------------------------------------------------------
class TestCLI:
    def test_watch_json_schema(self, capsys, tmp_path):
        rc = cli_main([
            "watch", "--scenario", "flash_crowd", "--format", "json",
            "--incidents-dir", str(tmp_path / "b"),
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "scenario", "slo", "samples", "alerts", "critical_path",
            "incidents", "incidents_suppressed",
        }
        assert payload["incidents"], "watch captured no incident"
        meta = payload["incidents"][0]
        assert {"id", "trigger", "rule", "t", "t_rel", "t0",
                "window_seconds", "value", "threshold",
                "labels"} <= set(meta)
        assert list_bundles(str(tmp_path / "b"))

    def test_alerts_json_schema(self, capsys):
        rc = cli_main([
            "alerts", "--scenario", "flash_crowd", "--format", "json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        for key in ("alerts", "events", "scenario", "t0", "scrapes",
                    "incidents"):
            assert key in payload, key
        assert payload["events"], "no alert transitions"
        event = payload["events"][0]
        assert {"t", "rule", "from", "to", "value",
                "threshold"} <= set(event)

    def test_incidents_and_replay_cli(self, capsys, tmp_path):
        bundles = str(tmp_path / "bundles")
        rc = cli_main([
            "watch", "--scenario", "flash_crowd", "--format", "json",
            "--incidents-dir", bundles,
        ])
        assert rc == 0
        capsys.readouterr()

        rc = cli_main(["incidents", "list", "--dir", bundles,
                       "--format", "json"])
        assert rc == 0
        listing = json.loads(capsys.readouterr().out)
        assert set(listing) == {"dir", "incidents"}
        assert listing["incidents"]
        incident_id = listing["incidents"][0]["id"]
        assert "path" in listing["incidents"][0]

        rc = cli_main(["incidents", "show", "--dir", bundles,
                       "--id", incident_id, "--format", "json"])
        assert rc == 0
        shown = json.loads(capsys.readouterr().out)
        assert set(shown) == {"meta", "spec", "events", "metrics",
                              "series", "traces", "doctor"}

        out_file = str(tmp_path / "export.json")
        rc = cli_main(["incidents", "export", "--dir", bundles,
                       "--id", incident_id, "--out", out_file])
        assert rc == 0
        capsys.readouterr()
        with open(out_file) as fh:
            assert json.load(fh)["meta"]["id"] == incident_id

        rc = cli_main(["replay", os.path.join(bundles, incident_id),
                       "--format", "json"])
        out = capsys.readouterr().out
        assert rc == 0
        verdict = json.loads(out)
        assert set(verdict) == {
            "bundle_id", "trigger", "rule", "original_t_rel",
            "replay_t_rel", "alert_match", "events_match", "converged",
            "mismatches", "replay_firings",
        }
        assert verdict["converged"] is True

    def test_replay_cli_exits_3_on_divergence(self, capsys, tmp_path):
        bundles = str(tmp_path / "bundles")
        rc = cli_main([
            "alerts", "--scenario", "flash_crowd", "--format", "json",
            "--incidents-dir", bundles,
        ])
        assert rc == 0
        capsys.readouterr()
        metas = list_bundles(bundles)
        assert metas
        path = metas[0]["path"]
        # tamper with the serialized event stream
        events_path = os.path.join(path, "events.json")
        with open(events_path) as fh:
            events = json.load(fh)
        events["categories"]["admission"]["events"][0]["t"] += 1e-3
        with open(events_path, "w") as fh:
            json.dump(events, fh)
        rc = cli_main(["replay", path])
        out = capsys.readouterr().out
        assert rc == 3
        assert "DIVERGED" in out
