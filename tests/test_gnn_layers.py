"""Gradient-checked tests for the GNN layers and models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.gnn.layers import DenseLayer, GATLayer, GCNLayer, SAGEMeanLayer
from repro.gnn.models import GCN, GraphSAGE, SampledGNN
from repro.gnn.ops import softmax_cross_entropy

EPS = 1e-5
TOL = 1e-4


def numeric_grad(loss_fn, array, index):
    orig = array[index]
    array[index] = orig + EPS
    lp = loss_fn()
    array[index] = orig - EPS
    lm = loss_fn()
    array[index] = orig
    return (lp - lm) / (2 * EPS)


def promote_to_float64(*layers):
    """Run gradient checks in float64 — float32 parameter quantization
    would otherwise dominate the finite-difference error."""
    for layer in layers:
        for name in layer.params:
            layer.params[name] = layer.params[name].astype(np.float64)
        layer.zero_grads()


class TestDenseLayer:
    def test_forward_shape(self, nprng):
        layer = DenseLayer(4, 3, nprng)
        out = layer.forward(np.zeros((7, 4), dtype=np.float32))
        assert out.shape == (7, 3)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((7, 5)))

    def test_gradients(self, nprng):
        layer = DenseLayer(4, 3, nprng, activation=True)
        promote_to_float64(layer)
        x = nprng.normal(size=(6, 4))
        labels = np.array([0, 1, 2, 0, 1, 2])

        def loss_fn():
            out = layer.forward(x)
            loss, _ = softmax_cross_entropy(out, labels)
            layer._cache.pop()
            return loss

        layer.zero_grads()
        out = layer.forward(x)
        loss, grad_out = softmax_cross_entropy(out, labels)
        gx = layer.backward(grad_out)
        for idx in [(0, 0), (2, 1), (3, 2)]:
            assert layer.grads["W"][idx] == pytest.approx(
                numeric_grad(loss_fn, layer.params["W"], idx), abs=TOL
            )
        assert layer.grads["b"][1] == pytest.approx(
            numeric_grad(loss_fn, layer.params["b"], (1,)), abs=TOL
        )
        assert gx[2, 3] == pytest.approx(numeric_grad(loss_fn, x, (2, 3)), abs=TOL)


@pytest.mark.parametrize("conv_cls", [SAGEMeanLayer, GCNLayer, GATLayer])
class TestConvLayers:
    def test_forward_shapes(self, conv_cls, nprng):
        layer = conv_cls(4, 6, nprng)
        out = layer.forward(np.zeros((5, 4), np.float32), np.zeros((5, 3, 4), np.float32))
        assert out.shape == (5, 6)

    def test_shape_validation(self, conv_cls, nprng):
        layer = conv_cls(4, 6, nprng)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((5, 4)), np.zeros((5, 4)))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((5, 4)), np.zeros((6, 3, 4)))

    def test_gradients(self, conv_cls, nprng):
        layer = conv_cls(3, 4, nprng, activation=True)
        promote_to_float64(layer)
        hs = nprng.normal(size=(5, 3))
        hn = nprng.normal(size=(5, 6, 3))
        labels = np.array([0, 1, 2, 3, 0])

        def loss_fn():
            out = layer.forward(hs, hn)
            loss, _ = softmax_cross_entropy(out, labels)
            layer._cache.pop()
            return loss

        layer.zero_grads()
        out = layer.forward(hs, hn)
        loss, grad_out = softmax_cross_entropy(out, labels)
        gs, gn = layer.backward(grad_out)
        for name in layer.params:
            p = layer.params[name]
            idx = (0,) if p.ndim == 1 else (0, 1)
            assert layer.grads[name][idx] == pytest.approx(
                numeric_grad(loss_fn, p, idx), abs=TOL
            )
        assert gs[1, 2] == pytest.approx(numeric_grad(loss_fn, hs, (1, 2)), abs=TOL)
        assert gn[3, 4, 1] == pytest.approx(
            numeric_grad(loss_fn, hn, (3, 4, 1)), abs=TOL
        )


class TestSampledGNN:
    def _feats(self, nprng, batch, fanouts, dim):
        sizes = [batch]
        for f in fanouts:
            sizes.append(sizes[-1] * f)
        return [nprng.normal(size=(n, dim)) for n in sizes]

    def test_forward_shapes(self, nprng):
        model = GraphSAGE(8, 16, 3, num_layers=2, rng=nprng)
        feats = self._feats(nprng, 4, [3, 2], 8)
        out = model.forward(feats, [3, 2])
        assert out.shape == (4, 3)

    def test_shape_validation(self, nprng):
        model = GraphSAGE(8, 16, 3, num_layers=2, rng=nprng)
        feats = self._feats(nprng, 4, [3, 2], 8)
        with pytest.raises(ShapeError):
            model.forward(feats[:2], [3, 2])
        with pytest.raises(ShapeError):
            model.forward(feats, [3])
        bad = list(feats)
        bad[1] = bad[1][:-1]
        with pytest.raises(ShapeError):
            model.forward(bad, [3, 2])

    def test_depth_validation(self, nprng):
        with pytest.raises(ConfigurationError):
            SampledGNN(4, 8, 2, num_layers=0, rng=nprng)

    @pytest.mark.parametrize("model_cls", [GraphSAGE, GCN])
    def test_end_to_end_gradients(self, model_cls, nprng):
        """Full pyramid backward (shared layer applied at two depths)
        matches numeric gradients."""
        model = model_cls(3, 5, 2, num_layers=2, rng=nprng)
        promote_to_float64(*model.layers)
        fanouts = [2, 3]
        feats = self._feats(nprng, 3, fanouts, 3)
        labels = np.array([0, 1, 0])

        def loss_fn():
            out = model.forward(feats, fanouts)
            loss, _ = softmax_cross_entropy(out, labels)
            for layer in model.layers:
                layer._cache.clear()
            return loss

        model.zero_grads()
        out = model.forward(feats, fanouts)
        loss, grad = softmax_cross_entropy(out, labels)
        model.backward(grad)
        checked = 0
        for name, param, grad_arr in model.parameters():
            idx = (0,) if param.ndim == 1 else (0, 0)
            num = numeric_grad(loss_fn, param, idx)
            assert grad_arr[idx] == pytest.approx(num, abs=TOL), name
            checked += 1
        assert checked >= 4

    def test_parameter_count(self, nprng):
        model = GraphSAGE(4, 8, 2, num_layers=2, rng=nprng)
        # layer0: 2*(4*8) + 8; layer1: 2*(8*2) + 2
        assert model.num_parameters() == (2 * 32 + 8) + (2 * 16 + 2)
