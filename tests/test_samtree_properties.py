"""Property-based samtree tests: equivalence with a dict reference under
arbitrary operation sequences, across capacities, α values, and CP-IDs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.samtree import Samtree, SamtreeConfig

ops_st = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "get"]),
        st.integers(min_value=0, max_value=400),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    ),
    min_size=1,
    max_size=250,
)


def apply_ops(tree: Samtree, ops):
    ref = {}
    for kind, vid, w in ops:
        if kind == "insert":
            assert tree.insert(vid, w) == (vid not in ref)
            ref[vid] = w
        elif kind == "update":
            if vid in ref:
                tree.insert(vid, w)
                ref[vid] = w
        elif kind == "delete":
            assert tree.delete(vid) == (vid in ref)
            ref.pop(vid, None)
        else:
            got = tree.get_weight(vid)
            if vid in ref:
                assert got == pytest.approx(ref[vid])
            else:
                assert got is None
    return ref


@given(ops_st, st.sampled_from([4, 5, 8, 16, 64]))
@settings(max_examples=120, deadline=None)
def test_matches_dict_reference(ops, capacity):
    tree = Samtree(SamtreeConfig(capacity=capacity))
    ref = apply_ops(tree, ops)
    tree.check_invariants()
    assert tree.degree == len(ref)
    assert tree.to_dict() == pytest.approx(ref)
    assert tree.total_weight == pytest.approx(sum(ref.values()), abs=1e-6)


@given(ops_st, st.integers(min_value=0, max_value=6))
@settings(max_examples=80, deadline=None)
def test_alpha_slackness_preserves_correctness(ops, alpha):
    tree = Samtree(SamtreeConfig(capacity=8, alpha=alpha))
    ref = apply_ops(tree, ops)
    tree.check_invariants()
    assert tree.to_dict() == pytest.approx(ref)


@given(ops_st)
@settings(max_examples=80, deadline=None)
def test_compression_equivalence(ops):
    """CP-IDs compression never changes observable behaviour."""
    comp = Samtree(SamtreeConfig(capacity=8, compress=True))
    plain = Samtree(SamtreeConfig(capacity=8, compress=False))
    apply_ops(comp, ops)
    apply_ops(plain, ops)
    comp.check_invariants()
    plain.check_invariants()
    assert comp.to_dict() == pytest.approx(plain.to_dict())


@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=10**12),
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=80, deadline=None)
def test_sampling_covers_support_and_respects_its(adj):
    """Every deterministic sampling mass maps to a stored neighbor, and
    the induced index agrees with the strict-prefix-sum ITS answer."""
    tree = Samtree(SamtreeConfig(capacity=8))
    for vid, w in adj.items():
        tree.insert(vid, w)
    tree.check_invariants()
    total = tree.total_weight
    seen = set()
    for step in range(64):
        mass = (step / 64.0) * total
        vid = tree._sample_with(mass)
        assert vid in adj
        seen.add(vid)
    # All mass at 0 maps to some neighbor; heavy sets get decent coverage.
    assert seen
