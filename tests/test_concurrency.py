"""Tests for the PALM-style batch latch-free executor (paper §VI-B)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency.batch import group_batch, partition_groups, sort_batch
from repro.concurrency.palm import PalmExecutor
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp
from repro.errors import ConfigurationError


class TestBatching:
    def test_sort_is_stable_per_key(self):
        ops = [
            EdgeOp.insert(2, 1, 1.0),
            EdgeOp.insert(1, 5, 1.0),
            EdgeOp.delete(1, 5),
            EdgeOp.insert(1, 6, 1.0),
        ]
        ordered = sort_batch(ops)
        assert [op.src for op in ordered] == [1, 1, 1, 2]
        # Same-source ops keep submission order: insert → delete → insert.
        same = [op for op in ordered if op.src == 1]
        assert same == ops[1:]

    def test_group_batch(self):
        ops = [
            EdgeOp.insert(1, 2, 1.0),
            EdgeOp.insert(2, 3, 1.0),
            EdgeOp.insert(1, 4, 1.0),
            EdgeOp.insert(1, 2, 2.0, etype=5),
        ]
        groups = group_batch(ops)
        keys = [g.key for g in groups]
        assert keys == [(0, 1), (0, 2), (5, 1)]
        assert len(groups[0]) == 2

    def test_partition_balances_loads(self):
        ops = []
        for src in range(10):
            ops.extend(EdgeOp.insert(src, d, 1.0) for d in range(src + 1))
        groups = group_batch(ops)
        assignments = partition_groups(groups, 3)
        loads = [sum(len(g) for g in a) for a in assignments]
        assert sum(loads) == len(ops)
        assert max(loads) - min(loads) <= max(len(g) for g in groups)

    def test_partition_never_splits_groups(self):
        ops = [EdgeOp.insert(1, d, 1.0) for d in range(100)]
        assignments = partition_groups(group_batch(ops), 8)
        non_empty = [a for a in assignments if a]
        assert len(non_empty) == 1  # one tree → one thread

    def test_partition_validation(self):
        with pytest.raises(ConfigurationError):
            partition_groups([], 0)

    def test_partition_empty(self):
        assert partition_groups([], 4) == [[], [], [], []]


class TestPalmExecutor:
    def _ops(self, seed, n=1500):
        r = random.Random(seed)
        ops = []
        for _ in range(n):
            src, dst = r.randrange(25), r.randrange(120)
            if r.random() < 0.7:
                ops.append(EdgeOp.insert(src, dst, round(r.random(), 3)))
            else:
                ops.append(EdgeOp.delete(src, dst))
        return ops

    @pytest.mark.parametrize("threads", [1, 2, 4, 8])
    @pytest.mark.parametrize("simulate", [False, True])
    def test_matches_sequential(self, threads, simulate):
        ops = self._ops(42)
        seq = DynamicGraphStore(SamtreeConfig(capacity=8))
        for op in ops:
            seq.apply(op)
        par = DynamicGraphStore(SamtreeConfig(capacity=8))
        executor = PalmExecutor(par, num_threads=threads, simulate=simulate)
        result = executor.apply_batch(ops)
        assert result.num_ops == len(ops)
        assert par.num_edges == seq.num_edges
        for src in range(25):
            assert dict(par.neighbors(src)) == pytest.approx(
                dict(seq.neighbors(src))
            )
        par.check_invariants()

    def test_outcomes_in_submission_order(self):
        store = DynamicGraphStore()
        executor = PalmExecutor(store, num_threads=2)
        ops = [
            EdgeOp.insert(1, 2, 1.0),
            EdgeOp.insert(1, 2, 2.0),  # duplicate → False
            EdgeOp.delete(1, 3),       # missing → False
            EdgeOp.insert(2, 9, 1.0),
        ]
        result = executor.apply_batch(ops)
        assert result.outcomes == [True, False, False, True]

    def test_simulate_reports_thread_times(self):
        store = DynamicGraphStore()
        executor = PalmExecutor(
            store, num_threads=4, simulate=True, sync_overhead=0.001
        )
        result = executor.apply_batch(self._ops(7, n=400))
        assert len(result.thread_times) == 4
        assert result.makespan >= max(result.thread_times)
        assert result.makespan >= 0.001

    def test_makespan_improves_with_threads(self):
        """The partitioned critical path shrinks as threads grow — the
        trend of paper Figure 11(c)."""
        ops = self._ops(3, n=4000)
        times = {}
        for threads in (1, 8):
            store = DynamicGraphStore(SamtreeConfig(capacity=64))
            executor = PalmExecutor(store, num_threads=threads, simulate=True)
            times[threads] = executor.apply_batch(ops).makespan
        assert times[8] < times[1]

    def test_edge_counter_survives_thread_races(self):
        """Regression: `_num_edges += d` from concurrent worker threads
        must not lose updates (the counter is lock-protected)."""
        for trial in range(4):
            store = DynamicGraphStore(SamtreeConfig(capacity=16))
            r = random.Random(trial)
            ops = []
            ref = set()
            for _ in range(8000):
                src, dst = r.randrange(64), r.randrange(200)
                if r.random() < 0.7:
                    ops.append(EdgeOp.insert(src, dst, 1.0))
                    ref.add((src, dst))
                else:
                    ops.append(EdgeOp.delete(src, dst))
                    ref.discard((src, dst))
            PalmExecutor(store, num_threads=8).apply_batch(ops)
            assert store.num_edges == len(ref)
            store.check_invariants()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PalmExecutor(DynamicGraphStore(), num_threads=0)

    def test_empty_batch(self):
        executor = PalmExecutor(DynamicGraphStore(), num_threads=4)
        result = executor.apply_batch([])
        assert result.num_ops == 0
        assert result.outcomes == []


@given(
    st.lists(
        st.tuples(
            st.booleans(),
            st.integers(min_value=0, max_value=10),
            st.integers(min_value=0, max_value=40),
            st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        ),
        min_size=1,
        max_size=150,
    ),
    st.integers(min_value=1, max_value=6),
)
@settings(max_examples=60, deadline=None)
def test_property_batch_equals_sequential(raw_ops, threads):
    ops = [
        EdgeOp.insert(src, dst, w) if is_insert else EdgeOp.delete(src, dst)
        for is_insert, src, dst, w in raw_ops
    ]
    seq = DynamicGraphStore(SamtreeConfig(capacity=4))
    for op in ops:
        seq.apply(op)
    par = DynamicGraphStore(SamtreeConfig(capacity=4))
    PalmExecutor(par, num_threads=threads).apply_batch(ops)
    assert par.num_edges == seq.num_edges
    for src in {op.src for op in ops}:
        assert dict(par.neighbors(src)) == pytest.approx(
            dict(seq.neighbors(src))
        )
