"""Tests for the NumPy tensor kernels (repro.gnn.ops)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gnn.ops import (
    accuracy,
    l2_normalize,
    log_softmax,
    mean_aggregate,
    mean_aggregate_grad,
    relu,
    relu_grad,
    softmax_cross_entropy,
    xavier_init,
)


class TestElementwise:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert relu(x).tolist() == [0.0, 0.0, 2.0]

    def test_relu_grad_masks(self):
        x = np.array([-1.0, 0.0, 2.0])
        g = np.array([1.0, 1.0, 1.0])
        assert relu_grad(x, g).tolist() == [0.0, 0.0, 1.0]

    def test_xavier_bounds(self):
        w = xavier_init(100, 50, np.random.default_rng(0))
        bound = np.sqrt(6.0 / 150)
        assert w.shape == (100, 50)
        assert w.dtype == np.float32
        assert np.abs(w).max() <= bound


class TestAggregation:
    def test_mean_aggregate(self):
        x = np.arange(12, dtype=np.float64).reshape(2, 3, 2)
        out = mean_aggregate(x)
        assert out.shape == (2, 2)
        assert out[0].tolist() == [2.0, 3.0]

    def test_mean_aggregate_shape_check(self):
        with pytest.raises(ShapeError):
            mean_aggregate(np.zeros((2, 3)))
        with pytest.raises(ShapeError):
            mean_aggregate_grad(np.zeros((2, 3, 4)), 3)

    def test_mean_aggregate_grad_is_adjoint(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 5, 3))
        g = rng.normal(size=(4, 3))
        # <grad, x> must equal <g, mean(x)> (linear map adjoint property).
        lhs = float((mean_aggregate_grad(g, 5) * x).sum())
        rhs = float((g * mean_aggregate(x)).sum())
        assert lhs == pytest.approx(rhs)


class TestLosses:
    def test_log_softmax_normalised(self):
        logits = np.random.default_rng(2).normal(size=(6, 4))
        logp = log_softmax(logits)
        assert np.exp(logp).sum(axis=1) == pytest.approx(np.ones(6))

    def test_log_softmax_stable_at_large_values(self):
        logits = np.array([[1e4, 0.0]])
        logp = log_softmax(logits)
        assert np.isfinite(logp).all()

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss == pytest.approx(0.0, abs=1e-6)
        assert np.abs(grad).max() < 1e-6

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(size=(5, 3))
        labels = np.array([0, 2, 1, 1, 0])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(5):
            for j in range(3):
                lp = logits.copy()
                lp[i, j] += eps
                lm = logits.copy()
                lm[i, j] -= eps
                num = (
                    softmax_cross_entropy(lp, labels)[0]
                    - softmax_cross_entropy(lm, labels)[0]
                ) / (2 * eps)
                assert grad[i, j] == pytest.approx(num, abs=1e-5)

    def test_cross_entropy_shape_check(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros(3, dtype=int))

    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)
        assert accuracy(np.zeros((0, 2)), np.array([], dtype=int)) == 0.0

    def test_l2_normalize(self):
        x = np.array([[3.0, 4.0], [0.0, 0.0]])
        out = l2_normalize(x)
        assert out[0].tolist() == [0.6, 0.8]
        assert np.isfinite(out).all()
