"""Tests for the operator layer's three sampling methods (paper §III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.platogl import PlatoGLStore
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.errors import ConfigurationError
from repro.gnn.samplers import (
    MiniBatchBlocks,
    sample_blocks,
    sample_metapath,
    sample_neighbor_matrix,
    sample_seed_nodes,
    sample_subgraph,
)


@pytest.fixture
def chain_store():
    """0 → {1..5} → {10x..10x+4}: a two-hop layered graph."""
    store = DynamicGraphStore(SamtreeConfig(capacity=8))
    for mid in range(1, 6):
        store.add_edge(0, mid, 1.0)
        for leaf in range(5):
            store.add_edge(mid, mid * 10 + leaf, 1.0)
    return store


class TestSeedSampling:
    def test_uses_store_vertex_sampler(self, chain_store, rng):
        seeds = sample_seed_nodes(chain_store, 50, rng)
        assert seeds.shape == (50,)
        assert set(seeds.tolist()) <= set(chain_store.sources())

    def test_fallback_for_plain_stores(self, rng):
        store = PlatoGLStore()
        for s in range(5):
            store.add_edge(s, 100, 1.0)
        seeds = sample_seed_nodes(store, 20, rng)
        assert set(seeds.tolist()) <= set(range(5))

    def test_empty_store(self, rng):
        assert sample_seed_nodes(DynamicGraphStore(), 5, rng).shape == (0,)
        assert sample_seed_nodes(PlatoGLStore(), 5, rng).shape == (0,)


class TestNeighborMatrix:
    def test_shape_and_membership(self, chain_store, rng):
        out = sample_neighbor_matrix(chain_store, [1, 2, 3], 7, rng)
        assert out.shape == (3, 7)
        assert out.dtype == np.int64
        for row, src in zip(out, [1, 2, 3]):
            assert set(row.tolist()) <= {src * 10 + i for i in range(5)}

    def test_self_padding_for_leaf_vertices(self, chain_store, rng):
        out = sample_neighbor_matrix(chain_store, [10, 0], 4, rng)
        assert out[0].tolist() == [10, 10, 10, 10]  # no out-edges → self
        assert set(out[1].tolist()) <= {1, 2, 3, 4, 5}

    def test_fanout_validation(self, chain_store):
        with pytest.raises(ConfigurationError):
            sample_neighbor_matrix(chain_store, [0], 0)

    def test_weighted_bias(self, rng):
        store = DynamicGraphStore()
        store.add_edge(1, 2, 1.0)
        store.add_edge(1, 3, 9.0)
        out = sample_neighbor_matrix(store, [1] * 100, 50, rng)
        frac = (out == 3).mean()
        assert frac == pytest.approx(0.9, abs=0.03)


class TestBlocks:
    def test_levels_telescope(self, chain_store, rng):
        blocks = sample_blocks(chain_store, [0, 0], [3, 2], rng)
        assert isinstance(blocks, MiniBatchBlocks)
        assert blocks.batch_size == 2
        assert blocks.num_hops == 2
        assert [lvl.shape[0] for lvl in blocks.levels] == [2, 6, 12]
        assert blocks.num_sampled() == 20

    def test_level_membership(self, chain_store, rng):
        blocks = sample_blocks(chain_store, [0], [4, 4], rng)
        assert set(blocks.levels[1].tolist()) <= {1, 2, 3, 4, 5}
        mids = set(blocks.levels[1].tolist())
        leaves = set(blocks.levels[2].tolist())
        valid = {m * 10 + i for m in mids for i in range(5)}
        assert leaves <= valid


class TestSubgraph:
    def test_contains_seed_and_edges(self, chain_store, rng):
        nodes, edges = sample_subgraph(chain_store, 0, [3, 3], rng)
        assert 0 in nodes
        assert edges
        for src, dst in edges:
            assert src in nodes and dst in nodes
            assert chain_store.has_edge(src, dst)

    def test_terminates_on_sinks(self, chain_store, rng):
        nodes, edges = sample_subgraph(chain_store, 10, [5, 5], rng)
        assert nodes == {10}
        assert edges == []

    def test_two_hops_reach_leaves(self, chain_store, rng):
        nodes, _ = sample_subgraph(chain_store, 0, [5, 5], rng)
        assert any(n >= 10 for n in nodes)


class TestMetapath:
    def test_heterogeneous_walk(self, rng):
        store = DynamicGraphStore()
        # User --(etype 0)--> Live --(etype 2)--> Live
        store.add_edge(1, 100, 1.0, etype=0)
        store.add_edge(100, 200, 1.0, etype=2)
        store.add_edge(100, 201, 1.0, etype=2)
        levels = sample_metapath(store, [1], [(0, 3), (2, 2)], rng)
        assert levels[0].tolist() == [1]
        assert set(levels[1].tolist()) == {100}
        assert set(levels[2].tolist()) <= {200, 201}
        assert levels[2].shape == (6,)

    def test_wrong_etype_pads_self(self, rng):
        store = DynamicGraphStore()
        store.add_edge(1, 100, 1.0, etype=0)
        levels = sample_metapath(store, [1], [(9, 2)], rng)
        assert levels[1].tolist() == [1, 1]
