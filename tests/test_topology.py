"""Tests for the PlatoD2GL dynamic graph store (paper §IV-B)."""

from __future__ import annotations

import random

import pytest

from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp, OpKind


@pytest.fixture
def store() -> DynamicGraphStore:
    return DynamicGraphStore(SamtreeConfig(capacity=8))


class TestUpdates:
    def test_add_edge(self, store):
        assert store.add_edge(1, 2, 0.5) is True
        assert store.add_edge(1, 2, 0.7) is False  # overwrite
        assert store.edge_weight(1, 2) == pytest.approx(0.7)
        assert store.num_edges == 1
        assert store.num_sources == 1

    def test_accumulate_edge(self, store):
        store.accumulate_edge(1, 2, 1.0)
        store.accumulate_edge(1, 2, 2.0)
        assert store.edge_weight(1, 2) == pytest.approx(3.0)
        assert store.num_edges == 1

    def test_update_edge_requires_existence(self, store):
        assert store.update_edge(1, 2, 1.0) is False
        store.add_edge(1, 2, 1.0)
        assert store.update_edge(1, 2, 9.0) is True
        assert store.edge_weight(1, 2) == pytest.approx(9.0)

    def test_remove_edge(self, store):
        store.add_edge(1, 2)
        assert store.remove_edge(1, 2) is True
        assert store.remove_edge(1, 2) is False
        assert store.num_edges == 0
        # Sources with no out-edges hold no storage (paper Example 1).
        assert store.num_sources == 0

    def test_apply_dispatch(self, store):
        assert store.apply(EdgeOp.insert(1, 2, 1.0)) is True
        assert store.apply(EdgeOp.update(1, 2, 3.0)) is True
        assert store.apply(EdgeOp.delete(1, 2)) is True
        assert store.apply(EdgeOp(OpKind.DELETE, 1, 2)) is False

    def test_add_edges_bulk(self, store):
        added = store.add_edges([(1, 2, 1.0), (1, 3, 1.0), (1, 2, 2.0)])
        assert added == 2
        assert store.num_edges == 2


class TestHeterogeneous:
    def test_relations_are_isolated(self, store):
        store.add_edge(1, 2, 1.0, etype=0)
        store.add_edge(1, 3, 2.0, etype=1)
        assert store.degree(1, etype=0) == 1
        assert store.degree(1, etype=1) == 1
        assert store.edge_weight(1, 2, etype=1) is None
        assert store.etypes() == [0, 1]
        assert sorted(store.sources(etype=1)) == [1]

    def test_same_pair_different_relations(self, store):
        store.add_edge(1, 2, 1.0, etype=0)
        store.add_edge(1, 2, 5.0, etype=3)
        assert store.edge_weight(1, 2, etype=0) == pytest.approx(1.0)
        assert store.edge_weight(1, 2, etype=3) == pytest.approx(5.0)
        assert store.num_edges == 2


class TestQueries:
    def test_neighbors(self, store):
        store.add_edge(1, 2, 0.1)
        store.add_edge(1, 3, 0.4)
        assert dict(store.neighbors(1)) == pytest.approx({2: 0.1, 3: 0.4})
        assert store.neighbors(99) == []

    def test_degree_and_total_weight(self, store):
        for i in range(20):
            store.add_edge(7, i, 0.5)
        assert store.degree(7) == 20
        assert store.total_weight(7) == pytest.approx(10.0)
        assert store.degree(8) == 0
        assert store.total_weight(8) == 0.0

    def test_has_edge(self, store):
        store.add_edge(1, 2)
        assert store.has_edge(1, 2)
        assert not store.has_edge(2, 1)


class TestSampling:
    def test_sample_neighbors(self, store):
        store.add_edge(1, 10, 1.0)
        store.add_edge(1, 20, 9.0)
        out = store.sample_neighbors(1, 5000, random.Random(0))
        assert len(out) == 5000
        assert out.count(20) / 5000 == pytest.approx(0.9, abs=0.02)

    def test_sample_missing_source_is_empty(self, store):
        assert store.sample_neighbors(42, 10) == []

    def test_sample_uniform(self, store):
        store.add_edge(1, 10, 100.0)
        store.add_edge(1, 20, 0.1)
        out = store.sample_neighbors_uniform(1, 4000, random.Random(1))
        assert out.count(10) / 4000 == pytest.approx(0.5, abs=0.03)

    def test_sample_batch_shape(self, store):
        for s in range(5):
            store.add_edge(s, 100 + s, 1.0)
        rows = store.sample_neighbors_batch(range(5), 3, random.Random(2))
        assert [len(r) for r in rows] == [3] * 5

    def test_sample_vertices_degree_weighted(self, store):
        for i in range(30):
            store.add_edge(1, i, 1.0)  # degree 30
        store.add_edge(2, 99, 1.0)  # degree 1
        out = store.sample_vertices(5000, random.Random(3))
        assert out.count(1) / 5000 == pytest.approx(30 / 31, abs=0.02)

    def test_sample_vertices_empty(self, store):
        assert store.sample_vertices(5) == []


class TestLifecycle:
    def test_random_churn_invariants(self, store):
        r = random.Random(4)
        ref = {}
        for _ in range(4000):
            src, dst = r.randrange(15), r.randrange(100)
            roll = r.random()
            if roll < 0.6:
                w = round(r.random(), 4)
                store.add_edge(src, dst, w)
                ref[(src, dst)] = w
            elif ref:
                key = r.choice(list(ref))
                store.remove_edge(*key)
                del ref[key]
        store.check_invariants()
        assert store.num_edges == len(ref)
        for (src, dst), w in ref.items():
            assert store.edge_weight(src, dst) == pytest.approx(w)

    def test_tree_accessor(self, store):
        assert store.tree(1) is None
        store.add_edge(1, 2)
        assert store.tree(1) is not None
        assert store.tree(1).degree == 1

    def test_nbytes_monotone(self, store):
        sizes = [store.nbytes()]
        for i in range(200):
            store.add_edge(i % 10, i, 1.0)
            if i % 50 == 49:
                sizes.append(store.nbytes())
        assert sizes == sorted(sizes)

    def test_shared_stats_across_trees(self, store):
        for s in range(5):
            for d in range(20):
                store.add_edge(s, d, 1.0)
        assert store.stats.leaf_ops == 100
        assert store.stats.leaf_splits > 0
