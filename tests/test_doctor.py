"""Tests for the samtree doctor, exemplars, and the layer profiler.

Pins the structural-health observability contract (DESIGN.md §12):

* the doctor's per-component byte breakdown sums **exactly** to
  ``nbytes()`` — under bulk build, under a 100k-edge churn workload,
  and across cluster crash/recovery;
* fill factors land in ``(0, 1]`` and depth equals the measured tree
  height; node counts match an independent walk;
* the ``--fail-on`` threshold gate (parsing + violations + CLI exit 3);
* histogram exemplars survive the merge path and the Prometheus
  exposition round-trip (``lint_prometheus`` passes with exemplar
  families present);
* the layer profiler attributes time to the samtree layers and its
  per-layer exclusive times sum to the profiled total;
* ``LocalCluster.reset_stats`` clears registered trainers' phase
  telemetry (the PR's satellite).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.samtree import Samtree, SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.distributed import LocalCluster
from repro.errors import ConfigurationError
from repro.gnn.models import GraphSAGE
from repro.gnn.training import PHASES, Trainer
from repro.obs import (
    LatencyHistogram,
    LayerProfiler,
    MetricsRegistry,
    Tracer,
    args_digest,
    check_thresholds,
    diagnose,
    diagnose_cluster,
    diagnose_store,
    lint_prometheus,
    observe,
    parse_fail_on,
    to_prometheus_text,
)
from repro.obs.doctor import FILL_BINS
from repro.storage.attributes import AttributeStore


def _churned_store(
    num_edges=100_000, num_sources=500, capacity=32, seed=7
) -> DynamicGraphStore:
    """Bulk build + trickle churn (inserts, updates, deletes)."""
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=capacity))
    srcs = [rng.randrange(num_sources) for _ in range(num_edges)]
    dsts = [rng.randrange(num_edges) for _ in range(num_edges)]
    store.bulk_load(srcs, dsts, 1.0)
    for _ in range(num_edges // 20):
        store.add_edge(
            rng.randrange(num_sources), rng.randrange(num_edges), rng.random()
        )
        store.remove_edge(
            rng.randrange(num_sources), rng.randrange(num_edges)
        )
    return store


class TestDoctorInvariants:
    def test_breakdown_sums_exactly_to_nbytes_after_bulk_build(self):
        rng = random.Random(0)
        store = DynamicGraphStore(SamtreeConfig(capacity=16))
        store.bulk_load(
            [rng.randrange(50) for _ in range(5000)],
            [rng.randrange(5000) for _ in range(5000)],
            1.0,
        )
        report = diagnose_store(store)
        assert report.total_bytes == store.nbytes()
        assert report.total_bytes == sum(report.components.values())

    def test_breakdown_sums_exactly_on_100k_edge_churned_store(self):
        store = _churned_store()
        report = diagnose_store(store)
        # The acceptance criterion: exact equality, not approximate.
        assert report.total_bytes == store.nbytes()
        assert report.num_edges == store.num_edges
        assert report.num_trees == store.num_sources

    def test_fill_in_unit_interval_and_depth_matches_height(self):
        store = _churned_store(num_edges=20_000, num_sources=100)
        report = diagnose_store(store)
        assert 0.0 < report.fill.min <= report.fill.max <= 1.0
        assert 0.0 < report.fill.mean <= 1.0
        assert sum(report.fill.bins) == report.fill.count == report.num_leaves
        # Depth histogram == independently measured heights.
        heights = {}
        for _, tree in store.iter_trees():
            heights[tree.height] = heights.get(tree.height, 0) + 1
        assert report.depth_hist == heights
        assert report.max_depth == max(heights)

    def test_node_counts_match_independent_walk(self):
        store = _churned_store(num_edges=10_000, num_sources=50)
        report = diagnose_store(store)
        leaves = internals = 0
        for _, tree in store.iter_trees():
            for node, depth in tree.iter_nodes():
                assert 1 <= depth <= tree.height
                if node.is_leaf:
                    leaves += 1
                else:
                    internals += 1
        assert report.num_leaves == leaves
        assert report.num_internal == internals
        # FSTable count == leaves, CSTable count == internal nodes.
        d = report.to_dict()
        assert d["num_fstables"] == leaves
        assert d["num_cstables"] == internals

    def test_split_imbalance_accumulates_and_is_bounded(self):
        tree = Samtree(SamtreeConfig(capacity=8))
        rng = random.Random(3)
        for v in range(500):
            tree.insert(v * 7919 % 100_000, rng.random())
        assert tree.stats.leaf_splits > 0
        assert 0.0 <= tree.stats.mean_split_imbalance < 1.0

    def test_counters_flow_through_report(self):
        store = _churned_store(num_edges=20_000, num_sources=100)
        report = diagnose_store(store)
        assert report.counters["leaf_splits"] == store.stats.leaf_splits
        assert report.counters["merges"] == store.stats.merges
        assert (
            report.counters["trees_created"]
            == store.ingest_stats.trees_created
        )
        assert report.mean_split_imbalance == pytest.approx(
            store.stats.mean_split_imbalance
        )

    def test_diagnose_dispatch_and_bad_target(self):
        store = DynamicGraphStore()
        store.add_edge(1, 2, 1.0)
        assert diagnose(store).scope == "store"
        with pytest.raises(ConfigurationError):
            diagnose(object())


class TestDoctorCluster:
    def _cluster(self, durable=True, replicas=1):
        rng = random.Random(11)
        cluster = LocalCluster(
            num_servers=3,
            config=SamtreeConfig(capacity=16),
            durable=durable,
            replication_factor=replicas,
        )
        n = 200
        cluster.client.bulk_load(
            [rng.randrange(n) for _ in range(20_000)],
            [rng.randrange(20_000) for _ in range(20_000)],
            1.0,
        )
        for _ in range(500):
            cluster.client.add_edge(
                rng.randrange(n), rng.randrange(20_000), rng.random()
            )
            cluster.client.remove_edge(
                rng.randrange(n), rng.randrange(20_000)
            )
        return cluster

    def test_cluster_totals_reconcile_with_total_nbytes(self):
        cluster = self._cluster()
        report = diagnose_cluster(cluster)
        assert report.scope == "cluster"
        assert report.num_shards_seen == 3
        wal_bytes = sum(
            s.wal.nbytes for s in cluster.servers if s.wal is not None
        )
        assert (
            report.total_bytes == cluster.total_nbytes() + wal_bytes
        )
        assert "wal" in report.components
        assert "attributes" in report.components

    def test_chaos_crash_recover_keeps_invariants(self):
        cluster = self._cluster(replicas=2)
        before = diagnose_cluster(cluster)
        # Crash a primary: the doctor walks live primaries only.
        cluster.crash(0)
        degraded = diagnose_cluster(cluster)
        assert degraded.num_shards_seen == 2
        assert degraded.total_bytes == sum(degraded.components.values())
        assert degraded.num_edges < before.num_edges
        # Recover via peer state transfer and re-diagnose: totals and
        # structure are whole again and the breakdown still partitions.
        cluster.recover(0)
        healed = diagnose_cluster(cluster)
        assert healed.num_shards_seen == 3
        assert healed.num_edges == before.num_edges
        assert healed.num_trees == before.num_trees
        assert healed.total_bytes == sum(healed.components.values())
        wal_bytes = sum(
            s.wal.nbytes for s in cluster.servers if s.wal is not None
        )
        assert healed.total_bytes == cluster.total_nbytes() + wal_bytes

    def test_registry_export_lints(self):
        cluster = self._cluster(durable=False)
        report = diagnose_cluster(cluster)
        text = to_prometheus_text(report.to_registry())
        stats = lint_prometheus(text)
        assert stats["samples"] > 20
        assert "repro_doctor_total_bytes" in text
        assert 'repro_doctor_component_bytes{component="leaf_nodes"}' in text


class TestThresholdGate:
    def _healthy_report(self):
        return diagnose_store(_churned_store(num_edges=20_000,
                                             num_sources=100))

    def test_parse_fail_on(self):
        checks = parse_fail_on("fill=0.4, depth=4,imbalance=0.5,bytes=64MB")
        assert ("fill", 0.4) in checks
        assert ("depth", 4.0) in checks
        assert ("imbalance", 0.5) in checks
        assert ("bytes", 64 * (1 << 20)) in checks
        with pytest.raises(ConfigurationError):
            parse_fail_on("fill")
        with pytest.raises(ConfigurationError):
            parse_fail_on("nope=3")
        with pytest.raises(ConfigurationError):
            parse_fail_on("fill=abc")

    def test_healthy_store_passes_and_rotten_bounds_fail(self):
        report = self._healthy_report()
        assert check_thresholds(report, parse_fail_on("fill=0.4")) == []
        assert check_thresholds(report, parse_fail_on("depth=10")) == []
        violations = check_thresholds(
            report, parse_fail_on("fill=0.99,depth=1,bytes=1kb")
        )
        assert len(violations) == 3
        assert any("fill" in v for v in violations)
        assert any("depth" in v for v in violations)
        assert any("bytes" in v for v in violations)

    def test_cli_doctor_json_and_gate(self, capsys):
        args = ["doctor", "--vertices", "50", "--edges", "3000",
                "--capacity", "16", "--shards", "2"]
        assert cli_main(args + ["--format", "json"]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert payload["memory"]["total_bytes"] == sum(
            payload["memory"]["components"].values()
        )
        # Prometheus output lints (the CLI lints internally; exit 0).
        assert cli_main(args + ["--format", "prometheus"]) == 0
        capsys.readouterr()
        # Healthy gate passes; impossible gate exits 3.
        assert cli_main(args + ["--fail-on", "fill=0.3,depth=5"]) == 0
        capsys.readouterr()
        assert cli_main(args + ["--fail-on", "bytes=1b"]) == 3


class TestExemplars:
    def test_record_keeps_slowest_per_bucket(self):
        h = LatencyHistogram().enable_exemplars()
        h.record(3e-6, trace_id=1, detail="a")
        h.record(3.5e-6, trace_id=2, detail="b")  # same bucket, slower
        h.record(100e-6, trace_id=3, detail="c")
        ex = h.exemplars()
        values = {e.detail: e.value for e in ex.values()}
        assert "b" in values and "a" not in values
        assert "c" in values
        # Disabled histograms expose nothing and pay nothing.
        cold = LatencyHistogram()
        cold.record(1e-3)
        assert cold.exemplars() == {}
        assert not cold.exemplars_enabled

    def test_merge_takes_slower_exemplar(self):
        a = LatencyHistogram().enable_exemplars()
        b = LatencyHistogram().enable_exemplars()
        a.record(3e-6, detail="mine")
        b.record(3.9e-6, detail="theirs")
        a.merge(b)
        details = {e.detail for e in a.exemplars().values()}
        assert details == {"theirs"}

    def test_observe_attaches_trace_and_digest(self):
        h = LatencyHistogram().enable_exemplars()
        tracer = Tracer(seed=0)
        with tracer.span("op"):
            observe(h, 0.02, tracer=tracer, srcs=list(range(128)), k=25)
        (ex,) = h.exemplars().values()
        assert ex.trace_id is not None
        assert "srcs=len:128" in ex.detail and "k=25" in ex.detail
        # args_digest is deterministic, sorted, and bounded.
        assert args_digest(b=2, a=1) == "a=1 b=2"
        assert len(args_digest(x="y" * 500)) <= 80

    def test_exemplars_survive_prometheus_lint_round_trip(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_sample_batch_seconds", "batched sampling latency",
            shard=0,
        ).enable_exemplars()
        tracer = Tracer(seed=0)
        with tracer.span("sample"):
            observe(h, 0.004, tracer=tracer, srcs=[1] * 64, k=10)
        h.record(0.5, trace_id=None, detail="cold path")
        text = to_prometheus_text(reg)
        stats = lint_prometheus(text)  # must not raise
        assert stats["families"] >= 2
        assert "repro_sample_batch_seconds_exemplar{" in text
        assert 'detail="cold path"' in text
        # Exemplar value is the recorded latency in seconds.
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("repro_sample_batch_seconds_exemplar")
            and 'detail="cold path"' in ln
        )
        assert float(line.rsplit(" ", 1)[1]) == 0.5

    def test_reset_clears_exemplars(self):
        h = LatencyHistogram().enable_exemplars()
        h.record(1e-3, detail="x")
        h.reset()
        assert h.exemplars() == {}
        assert h.exemplars_enabled  # stays enabled across reset

    def test_instrumented_store_tags_ops_with_active_span(self):
        from repro.core.metrics import InstrumentedStore

        tracer = Tracer(seed=0)
        store = InstrumentedStore(
            DynamicGraphStore(SamtreeConfig(capacity=8)), tracer=tracer
        )
        store.metrics.enable_exemplars()
        with tracer.span("ingest") as span:
            for i in range(20):
                store.add_edge(0, i)
            want = span.trace_id
        exemplars = store.metrics.histograms["insert"].exemplars()
        assert exemplars, "insert ops must leave exemplars behind"
        assert {e.trace_id for e in exemplars.values()} == {want}
        # Without an active span the op still records, untagged.
        store.sample_neighbors(0, 4, rng=random.Random(0))
        sample_ex = store.metrics.histograms["sample"].exemplars()
        assert all(e.trace_id is None for e in sample_ex.values())


class TestLayerProfiler:
    def test_attributes_samtree_layers(self):
        store = DynamicGraphStore(SamtreeConfig(capacity=16))
        rng = random.Random(0)
        prof = LayerProfiler()
        with prof:
            for _ in range(1500):
                store.add_edge(
                    rng.randrange(40), rng.randrange(4000), rng.random()
                )
            store.sample_neighbors_many(
                [rng.randrange(40) for _ in range(64)], 10, rng
            )
        totals = prof.totals()
        assert totals  # something was attributed
        assert totals.get("descent", 0.0) > 0.0
        assert totals.get("fts", 0.0) > 0.0
        assert prof.total_seconds == pytest.approx(
            sum(totals.values())
        )
        report = prof.report()
        assert "descent" in report and "total" in report

    def test_profiler_lifecycle_guards(self):
        prof = LayerProfiler()
        prof.start()
        with pytest.raises(ConfigurationError):
            prof.start()
        with pytest.raises(ConfigurationError):
            prof.reset()
        prof.stop()
        prof.stop()  # idempotent
        prof.reset()
        assert prof.totals() == {}

    def test_duplicate_layer_claim_rejected(self):
        with pytest.raises(ConfigurationError):
            LayerProfiler(layers={"a": ("x.py",), "b": ("x.py",)})


class TestTrainerResetSatellite:
    def _trainer(self, cluster_registry):
        rng = random.Random(0)
        nprng = np.random.default_rng(0)
        store = DynamicGraphStore(SamtreeConfig(capacity=8))
        feats = AttributeStore()
        feats.register("feat", 4)
        for v in range(40):
            feats.put("feat", v, nprng.normal(0, 1, 4).astype(np.float32))
        for _ in range(160):
            store.add_edge(rng.randrange(40), rng.randrange(40), 1.0)
        seeds = [v for v in range(40) if store.degree(v) > 0]
        labels = [v % 2 for v in seeds]
        model = GraphSAGE(4, 8, 2, num_layers=2,
                          rng=np.random.default_rng(0))
        trainer = Trainer(
            store, feats, model, fanouts=[3, 3], registry=cluster_registry
        )
        return trainer, seeds, labels

    def test_cluster_reset_clears_registered_trainer_phases(self):
        cluster = LocalCluster(num_servers=2)
        # The trainer deliberately uses its OWN registry so the only
        # reset path is the cluster->trainer linkage under test.
        own_registry = MetricsRegistry()
        trainer, seeds, labels = self._trainer(own_registry)
        cluster.register_trainer(trainer)
        cluster.register_trainer(trainer)  # idempotent
        trainer.train_epoch(seeds, labels, batch_size=16)
        assert all(
            s["count"] > 0 for s in trainer.phase_summary().values()
        )
        snap = own_registry.snapshot()
        assert snap.get("repro_train_batches") > 0
        cluster.reset_stats()
        assert all(
            s["count"] == 0 for s in trainer.phase_summary().values()
        )
        snap = own_registry.snapshot()
        assert snap.get("repro_train_batches") == 0
        assert snap.get("repro_train_seeds") == 0
        assert set(trainer.phase_summary()) == set(PHASES)

    def test_reset_phase_stats_is_safe_without_registry(self):
        cluster = LocalCluster(num_servers=1)
        trainer, _, _ = self._trainer(None)
        cluster.register_trainer(trainer)
        cluster.reset_stats()  # must not raise
        assert trainer.phase_summary() == {}


def test_fill_bins_cover_unit_interval():
    """Every fill in (0, 1] lands in exactly one of the FILL_BINS bins."""
    from repro.obs.doctor import _FillStats

    fs = _FillStats()
    for i in range(1, 1001):
        fs.add(i / 1000.0)
    assert sum(fs.bins) == 1000
    assert fs.count == 1000
    assert fs.min == pytest.approx(0.001)
    assert fs.max == 1.0
    # Exact boundaries: 0.1 is the top of bin 0, 0.1000...1 starts bin 1.
    edge = _FillStats()
    for f, expected_bin in ((0.1, 0), (0.1001, 1), (1.0, FILL_BINS - 1),
                            (0.0, 0)):
        edge.add(f)
    assert edge.bins[0] == 2  # 0.1 and 0.0
    assert edge.bins[1] == 1
    assert edge.bins[FILL_BINS - 1] == 1
