"""Figure 11: parameter sensitivity of PlatoD2GL on WeChat.

(a) insertion latency vs batch size — grows with batch size, stays low;
(b) insertion latency vs samtree node capacity — 2^8 is the sweet spot;
(c) concurrent-update latency vs thread count for batch ∈ {2^12..2^14}
    — decreases as threads grow (PALM executor, makespan model);
(d) insertion latency vs α-Split slackness — larger α, faster splits.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.report import format_series, format_table
from repro.bench.workloads import make_store
from repro.concurrency.palm import PalmExecutor
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.datasets.stream import EdgeStream

try:
    from conftest import BENCH_DATASETS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS

CAPACITIES = [2**6, 2**7, 2**8, 2**9, 2**10]
ALPHAS = [0, 2, 8, 32, 128]
THREADS = [1, 2, 4, 8, 16]
BATCHES_11C = [2**12, 2**13, 2**14]


def _wechat():
    loader, scale = BENCH_DATASETS["WeChat"]
    return loader(scale=scale)


def _insert_time(data, capacity=256, alpha=0, batch_size=4096) -> float:
    """Mean seconds per insert batch for a full dynamic build."""
    store = make_store("PlatoD2GL", capacity=capacity, alpha=alpha)
    stream = EdgeStream(data)
    batches = list(stream.build_batches(batch_size))
    start = time.perf_counter()
    for batch in batches:
        for op in batch:
            store.apply(op)
    return (time.perf_counter() - start) / len(batches)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("batch_size", [2**10, 2**12, 2**14])
def test_11a_insert_by_batch_size(benchmark, datasets, batch_size):
    benchmark.group = "fig11a-insert-by-batch"
    data = datasets["WeChat"]
    store = make_store("PlatoD2GL")
    stream = EdgeStream(data)
    batches = iter(stream.build_batches(batch_size))

    def run():
        batch = next(batches, None)
        if batch is None:
            return
        for op in batch:
            store.apply(op)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("capacity", [2**6, 2**8, 2**10])
def test_11b_insert_by_capacity(benchmark, datasets, capacity):
    benchmark.group = "fig11b-insert-by-capacity"
    data = datasets["WeChat"]
    benchmark.pedantic(
        lambda: _insert_time(data, capacity=capacity),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("threads", [1, 4, 16])
def test_11c_concurrent_by_threads(benchmark, datasets, threads):
    benchmark.group = "fig11c-concurrent-by-threads"
    data = datasets["WeChat"]
    stream = EdgeStream(data)
    ops = [op for batch in stream.build_batches(2**12) for op in batch][: 2**12]
    store = DynamicGraphStore(SamtreeConfig())
    executor = PalmExecutor(store, num_threads=threads, simulate=True)
    result = benchmark.pedantic(
        lambda: executor.apply_batch(ops), rounds=3, iterations=1
    )
    benchmark.extra_info["makespan"] = result.makespan


@pytest.mark.parametrize("alpha", [0, 8, 128])
def test_11d_insert_by_alpha(benchmark, datasets, alpha):
    benchmark.group = "fig11d-insert-by-alpha"
    data = datasets["WeChat"]
    benchmark.pedantic(
        lambda: _insert_time(data, alpha=alpha), rounds=1, iterations=1
    )


def test_11c_makespan_decreases(datasets):
    """More threads → smaller modeled critical path (Fig 11c's trend)."""
    data = datasets["WeChat"]
    stream = EdgeStream(data)
    ops = [op for batch in stream.build_batches(2**13) for op in batch][: 2**13]
    makespans = []
    for threads in (1, 8):
        store = DynamicGraphStore(SamtreeConfig())
        executor = PalmExecutor(store, num_threads=threads, simulate=True)
        makespans.append(executor.apply_batch(ops).makespan)
    assert makespans[1] < makespans[0]


# ---------------------------------------------------------------------------
# module-main: the full four-panel sweep
# ---------------------------------------------------------------------------
def main() -> str:
    data = _wechat()
    parts = []

    # (a) batch-size sweep
    batch_sizes = [2**10, 2**12, 2**14, 2**16]
    times = [
        _insert_time(data, batch_size=b) * 1e3 for b in batch_sizes
    ]
    parts.append(
        format_series(
            "batch",
            batch_sizes,
            {"PlatoD2GL": times},
            unit="ms",
            title="Figure 11(a): insert latency per batch vs batch size",
        )
    )

    # (b) capacity sweep
    cap_times = [
        _insert_time(data, capacity=c) * 1e3 for c in CAPACITIES
    ]
    parts.append(
        format_series(
            "capacity",
            CAPACITIES,
            {"PlatoD2GL": cap_times},
            unit="ms",
            title="Figure 11(b): insert latency per 4096-batch vs node "
            "capacity",
        )
    )

    # (c) thread sweep for three batch sizes (makespan model)
    stream = EdgeStream(data)
    all_ops = [op for batch in stream.build_batches(2**14) for op in batch]
    rows = []
    for batch_size in BATCHES_11C:
        ops = all_ops[:batch_size]
        row = [f"2^{batch_size.bit_length() - 1}"]
        for threads in THREADS:
            # Best of three runs: simulate-mode makespans are wall-clock
            # measurements and occasionally catch a GC pause.
            best = min(
                PalmExecutor(
                    DynamicGraphStore(SamtreeConfig()),
                    num_threads=threads,
                    simulate=True,
                )
                .apply_batch(ops)
                .makespan
                for _ in range(3)
            )
            row.append(f"{best * 1e3:.2f}ms")
        rows.append(row)
    parts.append(
        format_table(
            ["batch \\ threads"] + [str(t) for t in THREADS],
            rows,
            title="Figure 11(c): concurrent-update makespan vs threads",
        )
    )

    # (d) alpha sweep — end-to-end insert latency plus the split-latency
    # microbench that isolates α's effect (splits are <1 % of build ops,
    # so the end-to-end series is nearly flat at this scale).
    alpha_times = [_insert_time(data, alpha=a) * 1e3 for a in ALPHAS]
    split_times = [_split_time(a) * 1e6 for a in ALPHAS]
    parts.append(
        format_table(
            ["alpha", "insert/4096-batch", "leaf split (n=4096)"],
            [
                [a, f"{t:.3f}ms", f"{s:.1f}us"]
                for a, t, s in zip(ALPHAS, alpha_times, split_times)
            ],
            title="Figure 11(d): slackness α — insert latency and "
            "α-Split latency",
        )
    )
    return "\n\n".join(parts)


def _split_time(alpha: int, n: int = 4096, rounds: int = 300) -> float:
    """Mean seconds of one α-Split of an ``n``-element unordered leaf.

    The input arrays are identical for every α (fixed seed per round) so
    the sweep isolates the effect of the slackness alone.
    """
    import random as _random

    from repro.core.alpha_split import split_arrays

    inputs = []
    for round_no in range(16):
        r = _random.Random(round_no)  # same inputs for every alpha
        inputs.append(
            (r.sample(range(n * 10), n), [r.random() for _ in range(n)])
        )
    start = time.perf_counter()
    for i in range(rounds):
        ids, weights = inputs[i % len(inputs)]
        split_arrays(ids, weights, alpha)
    return (time.perf_counter() - start) / rounds


if __name__ == "__main__":
    print(main())
