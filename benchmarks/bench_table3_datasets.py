"""Table III: dataset statistics.

Prints the published Table III next to the statistics of the scaled
instances this suite actually benchmarks, and times dataset generation
(the workload-generator cost itself).
"""

from __future__ import annotations

import pytest

from repro.datasets.presets import ogbn_scaled, reddit_scaled, wechat_scaled
from repro.datasets.statistics import format_table3, published_table3_rows

try:  # direct execution (`python benchmarks/bench_table3_datasets.py`)
    from conftest import BENCH_DATASETS
except ImportError:  # pytest collection
    from benchmarks.conftest import BENCH_DATASETS


@pytest.mark.parametrize(
    "loader,scale",
    [
        (ogbn_scaled, 5000.0),
        (reddit_scaled, 2500.0),
        (wechat_scaled, 2_000_000.0),
    ],
    ids=["OGBN", "Reddit", "WeChat"],
)
def test_generate_dataset(benchmark, loader, scale):
    benchmark.group = "table3-generate"
    data = benchmark.pedantic(
        lambda: loader(scale=scale), rounds=3, iterations=1
    )
    assert data.num_edges > 0


def test_densities_match_published(datasets):
    """The scaled instances preserve the published Density column."""
    published = {
        (r["dataset"], r["relation"]): r["density"]
        for r in published_table3_rows()
    }
    for name, data in datasets.items():
        for row in data.stats_rows():
            expected = published[(name, row["relation"])]
            assert row["density"] == pytest.approx(expected, rel=0.05)


def main() -> str:
    parts = [
        "Table III (published sizes):",
        format_table3(published_table3_rows()),
        "",
        "Table III (scaled instances benchmarked by this suite):",
    ]
    for name, (loader, scale) in BENCH_DATASETS.items():
        data = loader(scale=scale)
        parts.append(format_table3(data.stats_rows()))
    return "\n".join(parts)


if __name__ == "__main__":
    print(main())
