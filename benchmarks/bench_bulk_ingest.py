"""Per-edge vs columnar bulk ingestion: the write-path engine's win.

Measures the scalar write path (one ``add_edge`` / ``update_edge`` /
``remove_edge`` call per operation, one descent per call) against the
columnar path (``bulk_load`` / ``apply_edge_batch``: one lexsort per
batch, bottom-up O(n) samtree builds, last-wins duplicate folding) on a
zipf-skewed synthetic edge list — a few hub sources own most of the
edges, the long tail owns small adjacencies, like a real power-law
graph.

Two phases:

* ``build``  — cold-start graph construction from an edge list.  The
  acceptance criterion targets >= 5x over the per-edge loop at >= 100k
  edges.
* ``update`` — steady-state dynamic churn: mixed insert/update/delete
  batches against an existing graph, per-op replay vs one
  ``apply_edge_batch`` call per batch.

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_bulk_ingest.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core.ingest import (
    OP_DELETE,
    OP_INSERT,
    OP_UPDATE,
    EdgeBatch,
)
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore

SEED = 0xB0

#: (src, dst, weight) columns of a synthetic zipf-skewed edge list.
Columns = Tuple[np.ndarray, np.ndarray, np.ndarray]


def make_edge_columns(
    num_edges: int, num_sources: int, seed: int = SEED
) -> Columns:
    """Zipf-skewed sources (a=1.6, clipped), uniform dsts, spread weights."""
    rng = np.random.default_rng(seed)
    src = np.minimum(
        rng.zipf(1.6, size=num_edges), num_sources
    ).astype(np.int64) - 1
    dst = rng.integers(
        num_sources, num_sources * 20, size=num_edges, dtype=np.int64
    )
    weight = rng.random(num_edges) * 4.0 + 0.25
    return src, dst, weight


def make_churn_batches(
    src: np.ndarray,
    dst: np.ndarray,
    num_batches: int,
    batch_size: int,
    seed: int = SEED + 1,
) -> List[EdgeBatch]:
    """Mixed churn referencing the built graph: 50% fresh inserts,
    30% weight updates of existing edges, 20% deletes."""
    rng = np.random.default_rng(seed)
    n_src_space = int(src.max()) + 1
    batches = []
    for b in range(num_batches):
        pick = rng.integers(0, src.size, size=batch_size)
        op = rng.choice(
            [OP_INSERT, OP_UPDATE, OP_DELETE],
            size=batch_size,
            p=[0.5, 0.3, 0.2],
        ).astype(np.uint8)
        b_src = src[pick].copy()
        b_dst = dst[pick].copy()
        # Fresh inserts go to a disjoint dst range so they are real
        # insertions, not upserts of existing edges.
        ins = op == OP_INSERT
        b_dst[ins] = rng.integers(
            n_src_space * 100 + b * batch_size,
            n_src_space * 100 + (b + 1) * batch_size,
            size=int(ins.sum()),
            dtype=np.int64,
        )
        w = rng.random(batch_size) * 3.0 + 0.1
        batches.append(EdgeBatch(b_src, b_dst, w, None, op))
    return batches


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_build(
    columns: Columns, config: SamtreeConfig, repeats: int
) -> Dict:
    src, dst, weight = columns
    src_l = src.tolist()
    dst_l = dst.tolist()
    w_l = weight.tolist()

    def per_edge() -> DynamicGraphStore:
        store = DynamicGraphStore(config)
        add = store.add_edge
        for s, d, w in zip(src_l, dst_l, w_l):
            add(s, d, w)
        return store

    def bulk() -> DynamicGraphStore:
        store = DynamicGraphStore(config)
        store.bulk_load(src, dst, weight)
        return store

    t_per_edge = _time(per_edge, repeats)
    t_bulk = _time(bulk, repeats)

    # Sanity: both builds describe the same graph.
    a, b = per_edge(), bulk()
    assert a.num_edges == b.num_edges, (a.num_edges, b.num_edges)

    n = src.size
    return {
        "per_edge_s": t_per_edge,
        "bulk_s": t_bulk,
        "per_edge_edges_per_s": n / t_per_edge,
        "bulk_edges_per_s": n / t_bulk,
        "speedup": t_per_edge / t_bulk,
        "num_edges_after_dedup": a.num_edges,
    }


def bench_update(
    columns: Columns,
    config: SamtreeConfig,
    num_batches: int,
    batch_size: int,
    repeats: int,
) -> Dict:
    src, dst, weight = columns
    batches = make_churn_batches(src, dst, num_batches, batch_size)

    def fresh() -> DynamicGraphStore:
        store = DynamicGraphStore(config)
        store.bulk_load(src, dst, weight)
        return store

    def per_op() -> None:
        store = stores.pop()
        for batch in batches:
            for s, d, w, o in zip(
                batch.src.tolist(),
                batch.dst.tolist(),
                batch.weight.tolist(),
                batch.op.tolist(),
            ):
                if o == OP_INSERT:
                    store.add_edge(s, d, w)
                elif o == OP_UPDATE:
                    store.update_edge(s, d, w)
                else:
                    store.remove_edge(s, d)

    def batched() -> None:
        store = stores.pop()
        for batch in batches:
            store.apply_edge_batch(batch)

    # Each trial mutates, so pre-build one fresh store per trial
    # (construction stays outside the timed region).
    stores = [fresh() for _ in range(repeats)]
    t_per_op = _time(per_op, repeats)
    stores = [fresh() for _ in range(repeats)]
    t_batched = _time(batched, repeats)

    total_ops = num_batches * batch_size
    return {
        "num_batches": num_batches,
        "batch_size": batch_size,
        "per_op_s": t_per_op,
        "batched_s": t_batched,
        "per_op_ops_per_s": total_ops / t_per_op,
        "batched_ops_per_s": total_ops / t_batched,
        "speedup": t_per_op / t_batched,
    }


def run_benchmark(
    num_edges: int,
    num_sources: int,
    num_batches: int,
    batch_size: int,
    repeats: int,
) -> Dict:
    columns = make_edge_columns(num_edges, num_sources)
    results = {
        "config": {
            "num_edges": num_edges,
            "num_sources": num_sources,
            "capacity": 256,
            "repeats": repeats,
            "seed": SEED,
        },
        "build": {},
        "update": {},
    }
    for compress in (True, False):
        config = SamtreeConfig(capacity=256, compress=compress)
        key = "compress_on" if compress else "compress_off"
        results["build"][key] = bench_build(columns, config, repeats)
    results["update"] = bench_update(
        columns,
        SamtreeConfig(capacity=256, compress=True),
        num_batches,
        batch_size,
        repeats,
    )
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: checks the machinery, not the numbers",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_benchmark(
            num_edges=5_000,
            num_sources=200,
            num_batches=2,
            batch_size=500,
            repeats=1,
        )
    else:
        results = run_benchmark(
            num_edges=200_000,
            num_sources=4_000,
            num_batches=8,
            batch_size=10_000,
            repeats=3,
        )
    results["mode"] = "smoke" if args.smoke else "full"

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    build = results["build"]["compress_on"]["speedup"]
    update = results["update"]["speedup"]
    print(
        f"[bench_bulk_ingest] build speedup {build:.1f}x "
        f"(compress on), update speedup {update:.1f}x",
        file=sys.stderr,
    )
    if not args.smoke:
        ok = True
        if build < 5.0:
            print(
                "[bench_bulk_ingest] FAIL: build speedup below the 5x "
                "acceptance bar",
                file=sys.stderr,
            )
            ok = False
        if update <= 1.0:
            print(
                "[bench_bulk_ingest] FAIL: batched updates no faster "
                "than per-op replay",
                file=sys.stderr,
            )
            ok = False
        if not ok:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
