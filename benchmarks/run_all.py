"""Regenerate every table and figure of the paper's evaluation.

Usage::

    python benchmarks/run_all.py            # suite scales (~ minutes)
    python benchmarks/run_all.py --full     # larger scales (~ tens of min)

Each section prints the measured counterpart of one paper table/figure;
EXPERIMENTS.md records a captured run next to the published values.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import bench_ablation_compression
import bench_ablation_concurrency
import bench_ablation_static
import bench_fig8_build
import bench_fig9_updates
import bench_fig10_sampling
import bench_fig11_sensitivity
import bench_table2_complexity
import bench_table3_datasets
import bench_table4_memory
import bench_table5_opdist
import conftest

SECTIONS = [
    ("Table II  — FTS vs ITS complexity", bench_table2_complexity.main),
    ("Table III — dataset statistics", bench_table3_datasets.main),
    ("Figure 8  — graph building", bench_fig8_build.main),
    ("Figure 9  — dynamic updates vs batch size", bench_fig9_updates.main),
    ("Table IV  — memory after build", bench_table4_memory.main),
    ("Table V   — update-op distribution", bench_table5_opdist.main),
    ("Figure 10 — sampling vs batch size", bench_fig10_sampling.main),
    ("Figure 11 — parameter sensitivity", bench_fig11_sensitivity.main),
    ("Ablation  — PALM concurrency", bench_ablation_concurrency.main),
    ("Ablation  — CP-IDs compression", bench_ablation_compression.main),
    ("Ablation  — static-system rebuild cost", bench_ablation_static.main),
]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run at larger dataset scales (higher fidelity, slower)",
    )
    parser.add_argument(
        "--only",
        help="substring filter on section titles (e.g. 'Figure 9')",
    )
    args = parser.parse_args(argv)

    if args.full:
        conftest.BENCH_DATASETS["OGBN"] = (
            conftest.BENCH_DATASETS["OGBN"][0],
            1000.0,
        )
        conftest.BENCH_DATASETS["Reddit"] = (
            conftest.BENCH_DATASETS["Reddit"][0],
            1000.0,
        )
        conftest.BENCH_DATASETS["WeChat"] = (
            conftest.BENCH_DATASETS["WeChat"][0],
            250_000.0,
        )

    for title, section in SECTIONS:
        if args.only and args.only.lower() not in title.lower():
            continue
        print("=" * 78)
        print(title)
        print("=" * 78)
        start = time.perf_counter()
        print(section())
        print(f"[section took {time.perf_counter() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
