"""Figure 8: time cost of dynamic graph building.

The workload inserts every dataset edge into an empty store, in batches,
for AliGraph / PlatoGL / PlatoD2GL on OGBN, Reddit, and WeChat-scaled.
The paper reports PlatoD2GL up to 6.3× faster than the baselines overall
and 2.5× faster than PlatoGL on WeChat, with AliGraph out of memory at
WeChat scale — the shapes this driver reproduces.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table, speedup
from repro.bench.workloads import (
    CLUSTER_BUDGET_BYTES,
    build_store,
    full_scale_bytes,
    make_store,
)

try:
    from conftest import BENCH_DATASETS, SYSTEMS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS, SYSTEMS


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("ds_name", list(BENCH_DATASETS))
def test_build(benchmark, datasets, system, ds_name):
    benchmark.group = f"fig8-build-{ds_name}"
    data = datasets[ds_name]

    def run():
        store = make_store(system)
        return build_store(
            store,
            data,
            batch_size=4096,
            enforce_cluster_budget_for=ds_name,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    if result.out_of_memory:
        # The paper's WeChat "o.o.m" entry: AliGraph cannot complete.
        assert system == "AliGraph"
    else:
        assert result.num_ops == data.num_edges
    benchmark.extra_info["edges_per_second"] = result.ops_per_second
    benchmark.extra_info["out_of_memory"] = result.out_of_memory


def main(scales=None) -> str:
    parts = []
    for ds_name, (loader, scale) in BENCH_DATASETS.items():
        if scales and ds_name in scales:
            scale = scales[ds_name]
        data = loader(scale=scale)
        rows = []
        seconds = {}
        for system in SYSTEMS:
            store = make_store(system)
            result = build_store(
                store,
                data,
                batch_size=4096,
                enforce_cluster_budget_for=ds_name,
            )
            oom = result.out_of_memory
            seconds[system] = float("nan") if oom else result.seconds
            rows.append(
                [
                    system,
                    "o.o.m" if oom else f"{result.seconds:.3f}s",
                    "-" if oom else f"{result.ops_per_second:,.0f} edges/s",
                ]
            )
        d2gl = seconds["PlatoD2GL"]
        baselines = [
            seconds[s]
            for s in ("AliGraph", "PlatoGL")
            if seconds[s] == seconds[s]
        ]
        if baselines and d2gl == d2gl:
            rows.append(
                [
                    "speedup (PlatoD2GL vs best baseline)",
                    f"{speedup(min(baselines), d2gl):.1f}x",
                    f"(vs worst: {speedup(max(baselines), d2gl):.1f}x)",
                ]
            )
        parts.append(
            format_table(
                ["System", "Build time", "Throughput"],
                rows,
                title=f"Figure 8 (measured): graph building on {ds_name} "
                f"({data.num_edges:,} edge inserts)",
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
