"""Flight-recorder tax: event-ring overhead on the serving hot path.

DESIGN.md §17 adds a :class:`~repro.obs.flight.FlightRecorder` whose
hooks sit on the serving tier's hottest branches — every admit, every
shed, every WAL append.  The incident-bundle story only holds if
always-on recording is effectively free, so this bench gates it the
same way ``bench_monitoring`` gates the scrape loop:

* **overhead** — the flash-crowd serving scenario, monitored-plain
  versus monitored-with-recorder.  Both arms run the identical seeded
  simulation (ring appends never advance the simulated clock), so the
  wall-clock delta *is* the recording tax.  Interleaved reps,
  best-of-N per pass, minimum overhead across independent passes;
  ``--check-overhead PCT`` gates it (CI uses 2, the issue's budget).
* **append cost** — steady-state throughput of ``record()`` into a
  wrapped ring (the per-event cost every hook pays) and of
  ``snapshot()`` on full rings (the per-capture serialization cost).
  These land in ``"metrics"`` as higher-is-better figures for the
  ``bench_history`` gate (``--bench flight_recorder``).

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_flight_recorder.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict

from repro.obs.flight import FlightRecorder
from repro.serving.scenarios import (
    SCENARIOS,
    ScenarioRunner,
    build_serving_rig,
)

SEED = 0xD9


# ---------------------------------------------------------------------------
# overhead: the monitored serving scenario, with and without the recorder
# ---------------------------------------------------------------------------
def measure_overhead(
    scenario: str = "flash_crowd",
    num_sources: int = 400,
    num_shards: int = 4,
    interval: float = 0.05,
    reps: int = 3,
    passes: int = 3,
) -> Dict:
    """Wall-clock tax of always-on recording on a serving scenario.

    Each rep builds two identically-seeded monitored rigs and runs the
    scenario through both — one bare, one with the recorder attached to
    every layer via ``attach_recorder``.  The recorder only appends to
    preallocated rings at instants the simulation reaches anyway, so
    both arms execute the same request stream and the wall delta is
    pure recording work: one attribute read per hook site plus a dict
    build and ring store per recorded event.
    """

    def run_once(recorded: bool):
        rig = build_serving_rig(
            num_shards=num_shards,
            num_sources=num_sources,
            seed=SEED,
            monitor_interval=interval,
            recorder=True if recorded else None,
        )
        sc = SCENARIOS[scenario](rig.num_sources, seed=SEED + 7)
        runner = ScenarioRunner(rig, sc)
        start = time.perf_counter()
        report = runner.run()
        return time.perf_counter() - start, rig, report

    last_rig = None
    last_report = None

    def one_pass() -> Dict:
        nonlocal last_rig, last_report
        t_plain = t_rec = float("inf")
        for _ in range(reps):
            elapsed, _, plain_report = run_once(False)
            t_plain = min(t_plain, elapsed)
            elapsed, rig, report = run_once(True)
            t_rec = min(t_rec, elapsed)
            last_rig, last_report = rig, report
            if report.submitted != plain_report.submitted:
                raise AssertionError(
                    "recorded run diverged from plain run "
                    f"({report.submitted} vs {plain_report.submitted} "
                    "submitted) — the recorder must not perturb the "
                    "simulation"
                )
        return {
            "plain_s": t_plain,
            "recorded_s": t_rec,
            "overhead_pct": (t_rec - t_plain) / t_plain * 100.0,
        }

    runs = [one_pass() for _ in range(passes)]
    best = min(runs, key=lambda r: r["overhead_pct"])
    recorder = last_rig.recorder
    return {
        "scenario": scenario,
        "num_sources": num_sources,
        "num_shards": num_shards,
        "interval_s": interval,
        "repeats": reps,
        "submitted": last_report.submitted,
        "events_recorded": recorder.events_total,
        "events_dropped": recorder.dropped_total,
        "passes": runs,
        "plain_s": best["plain_s"],
        "recorded_s": best["recorded_s"],
        "overhead_pct": best["overhead_pct"],
    }


# ---------------------------------------------------------------------------
# append/snapshot cost: the ring micro-figures
# ---------------------------------------------------------------------------
def measure_append_cost(
    capacity: int, appends: int, snapshots: int, reps: int
) -> Dict:
    """Per-event ``record()`` and per-capture ``snapshot()`` cost.

    The append loop runs ``appends`` events through an already-wrapped
    ring (steady state: every append evicts), shaped like the admission
    hook's payload — the hot site.  The snapshot loop serializes all
    rings of a recorder whose every category is full, which is the work
    an incident capture pays before any JSON leaves the process.
    """
    now = [0.0]
    recorder = FlightRecorder(clock=lambda: now[0], capacity=capacity)
    for i in range(capacity):  # pre-wrap: steady-state appends only
        recorder.record("admission", "admit", request_id=i, queue_depth=0)

    def best_of(fn, calls: int) -> float:
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best / calls

    def append_loop():
        record = recorder.record
        for i in range(appends):
            now[0] += 1e-4
            record("admission", "admit", request_id=i, queue_depth=3)

    append_s = best_of(append_loop, appends)

    full = FlightRecorder(clock=lambda: now[0], capacity=capacity)
    for category in full.categories:
        for i in range(capacity):
            full.record(category, "k", a=i, b=float(i))

    def snapshot_loop():
        for _ in range(snapshots):
            full.snapshot()

    snapshot_s = best_of(snapshot_loop, snapshots)

    return {
        "capacity": capacity,
        "appends": appends,
        "snapshot_events": full.events_total - full.dropped_total,
        "append_s": append_s,
        "snapshot_s": snapshot_s,
        "appends_per_s": 1.0 / append_s,
        "snapshots_per_s": 1.0 / snapshot_s,
    }


def run_benchmark(smoke: bool) -> Dict:
    if smoke:
        overhead = measure_overhead(reps=2, passes=3)
        appends = measure_append_cost(
            capacity=512, appends=20_000, snapshots=4, reps=3
        )
    else:
        overhead = measure_overhead(reps=3, passes=3)
        appends = measure_append_cost(
            capacity=1024, appends=200_000, snapshots=8, reps=5
        )
    return {
        "mode": "smoke" if smoke else "full",
        "overhead": overhead,
        "appends": appends,
        # bench_history gates these (higher is better); the overhead
        # percentage is gated separately via --check-overhead because
        # "percent above zero" has no meaningful best-run baseline.
        "metrics": {
            "append_events_per_s": appends["appends_per_s"],
            "snapshots_per_s": appends["snapshots_per_s"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer reps/passes and smaller rings for CI",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    parser.add_argument(
        "--check-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if the recording overhead on the serving scenario "
        "exceeds PCT percent (CI uses 2)",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    overhead = results["overhead"]["overhead_pct"]
    a = results["appends"]
    print(
        f"[bench_flight_recorder] {results['overhead']['scenario']}: "
        f"recording overhead {overhead:+.2f}% "
        f"({results['overhead']['events_recorded']} events); "
        f"{a['appends_per_s']:,.0f} appends/s, "
        f"{a['snapshots_per_s']:,.0f} snapshots/s",
        file=sys.stderr,
    )
    if args.check_overhead is not None and overhead > args.check_overhead:
        print(
            f"[bench_flight_recorder] FAIL: recording overhead "
            f"{overhead:.2f}% exceeds the {args.check_overhead:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
