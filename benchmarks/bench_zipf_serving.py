"""Hot-key-aware serving vs a skew-oblivious baseline under zipf traffic.

Production sampling traffic is power-law: a handful of hub vertices
absorb most requests, so the shard that owns the rank-1 key becomes the
cluster's makespan while the other shards idle.  The graph mirrors the
traffic: degree is rank-aligned power-law
(``repro.datasets.powerlaw_degrees``), so the hottest vertices are also
the highest-degree ones — their flattened snapshots exceed the
per-shard cache budget and every read pays an O(degree) rebuild on the
owning shard (the celebrity-vertex regime hot replicas exist for),
while the mid-tier is cacheable only under eviction pressure (where
TinyLFU admission earns its keep).  This bench drives the same seeded
zipf request trace (``repro.datasets.RequestStream``) at skews
s in {0.6, 0.99, 1.4} through two cluster configurations:

* ``baseline`` — coalescing off, no hot-set tracker, no replicas, and a
  plain-LRU snapshot cache (``admission=False``): the pre-hot-aware
  serving stack;
* ``hot`` — the full skew-aware layer: TinyLFU-style cache admission,
  request coalescing, hot-set tracking, and mid-run hot-replica
  installation (``LocalCluster.replicate_hot``).

Reported per skew and configuration:

* wall-clock throughput (sources/s) and per-batch p50/p99 latency;
* **modeled cluster throughput** — total sources over the *makespan*
  ``max(per-shard busy seconds)``, the parallel-cluster figure the
  serving layer actually moves: replicas shrink the hottest shard's
  busy share, coalescing shrinks every shard's;
* SnapshotCache hit rates (aggregate over shards) and admission rejects;
* coalesce rate and hot/spread read counters.

Full-mode acceptance gates (the recorded claims):

* modeled speedup >= 2x at s=1.4 (hot vs baseline);
* <= 5% modeled *and* wall regression at s=0.6;
* cache hit rate strictly improves at every skew.

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_zipf_serving.json``, appended
to ``BENCH_HISTORY.jsonl`` via ``bench_history.py record``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from repro.core.snapshot import SnapshotCache
from repro.datasets.stream import RequestStream
from repro.datasets.synthetic import powerlaw_degrees
from repro.distributed.cluster import LocalCluster

SEED = 20240808
SKEWS = (0.6, 0.99, 1.4)

#: Destination IDs are drawn from a space much larger than the source
#: universe so hub adjacencies keep distinct neighbors (the samtree
#: merges duplicate (src, dst) edges by weight, which would silently
#: shrink the hubs this workload is about).
DST_SPACE = 1 << 22


def build_cluster(
    num_shards: int,
    num_sources: int,
    hub_degree: int,
    tail_degree: int,
    cache_bytes: int,
    hot: bool,
) -> LocalCluster:
    """One cluster + rank-aligned power-law graph: vertex ``r`` is both
    the rank-``r`` traffic key (``RequestStream(shuffle=False)``) and
    the rank-``r`` degree hub, so the hot head is uncacheable and the
    cache budget is contested by the mid-tier."""
    cluster = LocalCluster(
        num_servers=num_shards,
        hot_set_capacity=512 if hot else 0,
        coalesce=hot,
    )
    for server in cluster.servers:
        server.store.snapshot_cache = SnapshotCache(
            capacity_bytes=cache_bytes, min_degree=0, admission=hot
        )
    rng = np.random.default_rng(SEED)
    degrees = powerlaw_degrees(
        num_sources, hub_degree, min_degree=tail_degree
    )
    srcs = np.repeat(np.arange(num_sources, dtype=np.int64), degrees)
    dsts = rng.integers(0, DST_SPACE, srcs.size).astype(np.int64)
    cluster.client.bulk_load(srcs, dsts, 1.0)
    return cluster


def _reset_measurement(cluster: LocalCluster) -> None:
    cluster.client.serving_stats.reset()
    for server in cluster.servers:
        server.store.snapshot_cache.stats.reset()


def _cache_stats(cluster: LocalCluster) -> Dict[str, float]:
    hits = misses = rejects = 0
    for server in cluster.servers:
        stats = server.store.snapshot_cache.stats
        hits += stats.hits
        misses += stats.misses
        rejects += stats.admission_rejects
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / total if total else 0.0,
        "admission_rejects": rejects,
    }


def run_config(
    skew: float,
    hot: bool,
    num_shards: int,
    num_sources: int,
    hub_degree: int,
    tail_degree: int,
    cache_bytes: int,
    batch_size: int,
    warm_batches: int,
    measure_batches: int,
    k: int,
) -> Dict:
    cluster = build_cluster(
        num_shards, num_sources, hub_degree, tail_degree, cache_bytes, hot
    )
    client = cluster.client
    # shuffle=False keeps traffic rank == degree rank (the correlated
    # celebrity workload build_cluster constructs).
    requests = RequestStream(
        num_sources, exponent=skew, seed=SEED + 1, shuffle=False
    )
    sample_rng = np.random.default_rng(SEED + 2)

    # Warm: trains the tracker + admission frequencies and fills caches.
    for _ in range(warm_batches):
        client.sample_neighbors_many(requests.batch(batch_size), k, sample_rng)
    replicas = 0
    if hot:
        installed = cluster.replicate_hot(
            top_n=8, copies=min(5, num_shards - 1), min_count=2
        )
        replicas = len(installed)
    # Steady state: the replica copies' caches start cold, so warm again
    # before measuring (both configs run the same total warm traffic).
    for _ in range(max(2, warm_batches // 2)):
        client.sample_neighbors_many(requests.batch(batch_size), k, sample_rng)

    _reset_measurement(cluster)
    latencies: List[float] = []
    wall = 0.0
    for _ in range(measure_batches):
        frontier = requests.batch(batch_size)
        start = time.perf_counter()
        client.sample_neighbors_many(frontier, k, sample_rng)
        dt = time.perf_counter() - start
        latencies.append(dt)
        wall += dt

    stats = client.serving_stats
    total_sources = batch_size * measure_batches
    makespan = max(stats.busy_by_shard.values()) if stats.busy_by_shard else wall
    lat_ms = np.asarray(latencies) * 1e3
    return {
        "config": "hot" if hot else "baseline",
        "skew": skew,
        "hot_replicas_installed": replicas,
        "wall_s": wall,
        "wall_sources_per_s": total_sources / wall,
        "modeled_makespan_s": makespan,
        "modeled_sources_per_s": total_sources / makespan,
        "busy_by_shard_s": {
            str(shard): busy
            for shard, busy in sorted(stats.busy_by_shard.items())
        },
        "latency_p50_ms": float(np.percentile(lat_ms, 50)),
        "latency_p99_ms": float(np.percentile(lat_ms, 99)),
        "coalesce_rate": stats.coalesce_rate,
        "hot_reads": stats.hot_reads,
        "spread_reads": stats.spread_reads,
        "cache": _cache_stats(cluster),
    }


def run_benchmark(
    num_shards: int,
    num_sources: int,
    hub_degree: int,
    tail_degree: int,
    cache_bytes: int,
    batch_size: int,
    warm_batches: int,
    measure_batches: int,
    k: int,
) -> Dict:
    results = {
        "config": {
            "num_shards": num_shards,
            "num_sources": num_sources,
            "hub_degree": hub_degree,
            "tail_degree": tail_degree,
            "cache_bytes": cache_bytes,
            "batch_size": batch_size,
            "warm_batches": warm_batches,
            "measure_batches": measure_batches,
            "k": k,
            "skews": list(SKEWS),
        },
        "skews": {},
    }
    for skew in SKEWS:
        base = run_config(
            skew, False, num_shards, num_sources, hub_degree, tail_degree,
            cache_bytes, batch_size, warm_batches, measure_batches, k,
        )
        hot = run_config(
            skew, True, num_shards, num_sources, hub_degree, tail_degree,
            cache_bytes, batch_size, warm_batches, measure_batches, k,
        )
        results["skews"][f"{skew:g}"] = {
            "baseline": base,
            "hot": hot,
            "modeled_speedup": (
                hot["modeled_sources_per_s"] / base["modeled_sources_per_s"]
            ),
            "wall_speedup": (
                hot["wall_sources_per_s"] / base["wall_sources_per_s"]
            ),
            "p99_speedup": base["latency_p99_ms"] / hot["latency_p99_ms"],
            "hit_rate_delta": (
                hot["cache"]["hit_rate"] - base["cache"]["hit_rate"]
            ),
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: checks the machinery, not the numbers",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_benchmark(
            num_shards=4,
            num_sources=400,
            hub_degree=2000,
            tail_degree=8,
            cache_bytes=8 << 10,
            batch_size=64,
            warm_batches=4,
            measure_batches=8,
            k=5,
        )
    else:
        results = run_benchmark(
            num_shards=8,
            num_sources=4000,
            hub_degree=40000,
            tail_degree=16,
            cache_bytes=32 << 10,
            batch_size=256,
            warm_batches=40,
            measure_batches=120,
            k=10,
        )
    results["mode"] = "smoke" if args.smoke else "full"

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    failures: List[str] = []
    for label, entry in results["skews"].items():
        hot = entry["hot"]
        print(
            f"[bench_zipf_serving] s={label}: modeled "
            f"{entry['modeled_speedup']:.2f}x wall "
            f"{entry['wall_speedup']:.2f}x p99 {entry['p99_speedup']:.2f}x "
            f"hit-rate {entry['baseline']['cache']['hit_rate']:.2%} -> "
            f"{hot['cache']['hit_rate']:.2%} "
            f"coalesce {hot['coalesce_rate']:.2%}",
            file=sys.stderr,
        )
        if entry["hit_rate_delta"] <= 0.0:
            failures.append(
                f"s={label}: cache hit rate did not improve "
                f"({entry['hit_rate_delta']:+.4f})"
            )
    high = results["skews"]["1.4"]
    if high["modeled_speedup"] < 2.0:
        failures.append(
            f"s=1.4: modeled speedup {high['modeled_speedup']:.2f}x "
            f"below the 2x acceptance bar"
        )
    low = results["skews"]["0.6"]
    if low["modeled_speedup"] < 0.95:
        failures.append(
            f"s=0.6: modeled regression {low['modeled_speedup']:.2f}x "
            f"(bound 0.95x)"
        )
    if low["wall_speedup"] < 0.95:
        failures.append(
            f"s=0.6: wall regression {low['wall_speedup']:.2f}x "
            f"(bound 0.95x)"
        )
    if not args.smoke and failures:
        for failure in failures:
            print(f"[bench_zipf_serving] FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
