"""Utility benchmark: snapshot save/load throughput.

Not a paper table — production operability: a graph server restart
loads the last snapshot instead of replaying the update stream.  This
bench measures serialisation round-trip rates and compares snapshot size
against the store's modeled in-memory footprint.
"""

from __future__ import annotations

import io

import pytest

from repro.bench.report import format_table
from repro.bench.workloads import build_store, make_store
from repro.core.memory import humanize_bytes
from repro.storage.checkpoint import load_store, save_store

try:
    from conftest import BENCH_DATASETS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS


def _built(ds_name):
    loader, scale = BENCH_DATASETS[ds_name]
    data = loader(scale=scale)
    store = make_store("PlatoD2GL")
    build_store(store, data, batch_size=4096)
    return store


@pytest.mark.parametrize("ds_name", ["OGBN"])
def test_save(benchmark, built_stores, ds_name):
    benchmark.group = "checkpoint-save"
    store = built_stores[("PlatoD2GL", ds_name)]

    def run():
        buf = io.BytesIO()
        save_store(store, buf)
        return buf

    buf = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["snapshot_bytes"] = len(buf.getvalue())


@pytest.mark.parametrize("ds_name", ["OGBN"])
def test_load(benchmark, built_stores, ds_name):
    benchmark.group = "checkpoint-load"
    store = built_stores[("PlatoD2GL", ds_name)]
    buf = io.BytesIO()
    save_store(store, buf)
    data = buf.getvalue()

    def run():
        return load_store(io.BytesIO(data))

    loaded = benchmark.pedantic(run, rounds=3, iterations=1)
    assert loaded.num_edges == store.num_edges


def main() -> str:
    import time

    rows = []
    for ds_name in BENCH_DATASETS:
        store = _built(ds_name)
        buf = io.BytesIO()
        start = time.perf_counter()
        save_store(store, buf)
        save_s = time.perf_counter() - start
        data = buf.getvalue()
        start = time.perf_counter()
        loaded = load_store(io.BytesIO(data))
        load_s = time.perf_counter() - start
        assert loaded.num_edges == store.num_edges
        rows.append(
            [
                ds_name,
                f"{store.num_edges:,}",
                humanize_bytes(len(data)),
                humanize_bytes(store.nbytes()),
                f"{store.num_edges / save_s:,.0f}/s",
                f"{store.num_edges / load_s:,.0f}/s",
            ]
        )
    return format_table(
        ["dataset", "edges", "snapshot", "in-memory", "save rate", "load rate"],
        rows,
        title="Checkpoint: snapshot round-trip throughput (PlatoD2GL)",
    )


if __name__ == "__main__":
    print(main())
