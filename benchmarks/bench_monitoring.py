"""Monitoring tax: scrape + alert-evaluation overhead and query cost.

PR 9 adds a continuous-monitoring loop (DESIGN.md §16): a
:class:`~repro.obs.monitor.TimeSeriesStore` scrapes the metrics
registry on the cluster clock and an
:class:`~repro.obs.alerts.AlertManager` evaluates burn-rate/threshold
rules after every scrape.  That loop rides the same single-threaded
driver as the serving hot path, so its cost is a direct tax on request
throughput.  This bench measures it two ways:

* **overhead** — the flash-crowd serving scenario run end to end,
  plain versus with the default monitor attached (50 ms scrape
  interval, the serving burn-rate/threshold rule set, ~3.6k requests
  and ~60 scrapes per run).  Both sides run the identical seeded
  simulation — the monitor never advances the simulated clock — so the
  wall-clock delta *is* the monitoring tax.  Same noise discipline as
  ``bench_batched_sampling``: interleaved plain/monitored reps,
  best-of-N per pass, and the *minimum* overhead across independent
  passes (a genuine regression lifts every pass, a scheduler spike
  only one).  ``--check-overhead PCT`` gates it (CI uses 5).
* **query cost** — steady-state throughput of ``scrape()``, ``rate()``
  and ``quantile_over_time()`` against a synthetic registry-shaped
  store whose rings are already populated.  These surface in the
  payload under ``"metrics"`` as higher-is-better figures for the
  ``bench_history`` gate (``--bench monitoring``).

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_monitoring.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict

from repro.obs import MetricsRegistry, TimeSeriesStore
from repro.serving.scenarios import (
    SCENARIOS,
    ScenarioRunner,
    build_serving_rig,
)

SEED = 0xD9

#: Simulated seconds between workload ticks in the query-cost section
#: (the monitor's default scrape interval).
TICK_SECONDS = 0.05


# ---------------------------------------------------------------------------
# overhead: the serving scenario, plain vs monitored
# ---------------------------------------------------------------------------
def measure_overhead(
    scenario: str = "flash_crowd",
    num_sources: int = 400,
    num_shards: int = 4,
    interval: float = 0.05,
    reps: int = 3,
    passes: int = 3,
) -> Dict:
    """Wall-clock tax of the default monitor on a serving scenario.

    Each rep builds two identically-seeded rigs and runs the scenario
    through both — one bare, one with ``monitor_interval`` set (which
    attaches the serving keep-list store plus the default burn-rate /
    threshold rules).  Scrapes happen *at* simulated instants without
    advancing the clock, so the two simulations execute the same
    request stream and the wall delta is pure monitoring work: registry
    snapshots, ring appends, and rule evaluation.
    """

    def run_once(monitored: bool):
        rig = build_serving_rig(
            num_shards=num_shards,
            num_sources=num_sources,
            seed=SEED,
            monitor_interval=interval if monitored else None,
        )
        sc = SCENARIOS[scenario](rig.num_sources, seed=SEED + 7)
        runner = ScenarioRunner(rig, sc)
        start = time.perf_counter()
        report = runner.run()
        return time.perf_counter() - start, rig, report

    last_rig = None
    last_report = None

    def one_pass() -> Dict:
        nonlocal last_rig, last_report
        t_plain = t_mon = float("inf")
        for _ in range(reps):
            elapsed, _, plain_report = run_once(False)
            t_plain = min(t_plain, elapsed)
            elapsed, rig, report = run_once(True)
            t_mon = min(t_mon, elapsed)
            last_rig, last_report = rig, report
            if report.submitted != plain_report.submitted:
                raise AssertionError(
                    "monitored run diverged from plain run "
                    f"({report.submitted} vs {plain_report.submitted} "
                    "submitted) — the monitor must not perturb the "
                    "simulation"
                )
        return {
            "plain_s": t_plain,
            "monitored_s": t_mon,
            "overhead_pct": (t_mon - t_plain) / t_plain * 100.0,
        }

    runs = [one_pass() for _ in range(passes)]
    best = min(runs, key=lambda r: r["overhead_pct"])
    monitor = last_rig.monitor
    return {
        "scenario": scenario,
        "num_sources": num_sources,
        "num_shards": num_shards,
        "interval_s": interval,
        "repeats": reps,
        "submitted": last_report.submitted,
        "scrapes": monitor.scrapes,
        "num_series": monitor.store.num_series,
        "alert_transitions": len(monitor.alerts.timeline()),
        "passes": runs,
        "plain_s": best["plain_s"],
        "monitored_s": best["monitored_s"],
        "overhead_pct": best["overhead_pct"],
    }


# ---------------------------------------------------------------------------
# query cost: steady-state scrape / rate / quantile throughput
# ---------------------------------------------------------------------------
class Workload:
    """A registry-shaped mutation loop for the query-cost section.

    ``tick()`` touches every owned metric once — counter incs sized by
    a seeded RNG, gauge sets, a few histogram records — so every scrape
    sees fresh values across the full series width.
    """

    def __init__(
        self,
        num_counters: int,
        num_gauges: int,
        num_hists: int,
        seed: int = SEED,
    ) -> None:
        self.registry = MetricsRegistry()
        self.counters = [
            self.registry.counter("bench_ops_total", shard=str(i))
            for i in range(num_counters)
        ]
        self.gauges = [
            self.registry.gauge("bench_depth", queue=str(i))
            for i in range(num_gauges)
        ]
        self.hists = [
            self.registry.histogram("bench_latency_seconds", path=str(i))
            for i in range(num_hists)
        ]
        self.rng = random.Random(seed)

    def tick(self) -> None:
        rng = self.rng
        for c in self.counters:
            c.inc(rng.randrange(1, 8))
        for g in self.gauges:
            g.set(rng.randrange(64))
        for h in self.hists:
            h.record(rng.uniform(1e-4, 2e-2))


def measure_query_cost(
    num_counters: int,
    num_gauges: int,
    num_hists: int,
    prefill_scrapes: int,
    reps: int,
) -> Dict:
    """Throughput of the store's hot operations on populated rings."""
    work = Workload(num_counters, num_gauges, num_hists)
    now = [0.0]
    store = TimeSeriesStore(work.registry, clock=lambda: now[0])
    for _ in range(prefill_scrapes):
        work.tick()
        now[0] += TICK_SECONDS
        store.scrape(now[0])

    def best_of(fn, calls: int) -> float:
        best = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best / calls

    # Scrape throughput: keep mutating + advancing so every scrape does
    # the full adjust-and-append work on all series.
    scrape_batch = 32

    def scrape_loop():
        for _ in range(scrape_batch):
            work.tick()
            now[0] += TICK_SECONDS
            store.scrape(now[0])

    scrape_s = best_of(scrape_loop, scrape_batch)

    counter_keys = [f'bench_ops_total{{shard="{i}"}}'
                    for i in range(num_counters)]
    hist_keys = [f'bench_latency_seconds{{path="{i}"}}'
                 for i in range(num_hists)]
    window = TICK_SECONDS * 16
    # Enough rounds that the timed region is a few ms even in smoke mode
    # (30 keys); sub-millisecond windows made the per-query figures flap
    # well past the 15% history-gate tolerance.
    query_rounds = 32

    def rate_loop():
        for _ in range(query_rounds):
            for key in counter_keys:
                store.rate(key, window)

    rate_s = best_of(rate_loop, query_rounds * len(counter_keys))

    def quantile_loop():
        for _ in range(query_rounds):
            for key in hist_keys:
                store.quantile_over_time(0.99, key, window)

    quantile_s = best_of(quantile_loop, query_rounds * len(hist_keys))

    return {
        "num_counters": num_counters,
        "num_gauges": num_gauges,
        "num_hists": num_hists,
        "prefill_scrapes": prefill_scrapes,
        "num_series": store.num_series,
        "num_points": store.num_points,
        "window_s": window,
        "scrape_s": scrape_s,
        "rate_query_s": rate_s,
        "quantile_query_s": quantile_s,
        "scrapes_per_s": 1.0 / scrape_s,
        "rate_queries_per_s": 1.0 / rate_s,
        "quantile_queries_per_s": 1.0 / quantile_s,
    }


def run_benchmark(smoke: bool) -> Dict:
    if smoke:
        # reps=1 proved too jittery for the 5% CI gate (single-run wall
        # clocks on shared runners swing several percent either way);
        # 2x3 keeps smoke under ~5s while the min-across-passes holds.
        overhead = measure_overhead(reps=2, passes=3)
        queries = measure_query_cost(
            num_counters=30,
            num_gauges=10,
            num_hists=10,
            prefill_scrapes=64,
            reps=5,
        )
    else:
        overhead = measure_overhead(reps=3, passes=3)
        queries = measure_query_cost(
            num_counters=120,
            num_gauges=40,
            num_hists=40,
            prefill_scrapes=512,
            reps=5,
        )
    return {
        "mode": "smoke" if smoke else "full",
        "overhead": overhead,
        "queries": queries,
        # The bench_history gate reads these (higher is better); the
        # overhead percentage is gated separately via --check-overhead
        # because "percent above zero" has no meaningful best-run
        # baseline.
        "metrics": {
            "scrapes_per_s": queries["scrapes_per_s"],
            "rate_queries_per_s": queries["rate_queries_per_s"],
            "quantile_queries_per_s": queries["quantile_queries_per_s"],
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer reps/passes and smaller query rings for CI",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    parser.add_argument(
        "--check-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if the monitoring overhead on the serving scenario "
        "exceeds PCT percent (CI uses 5)",
    )
    args = parser.parse_args(argv)

    results = run_benchmark(smoke=args.smoke)

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    overhead = results["overhead"]["overhead_pct"]
    q = results["queries"]
    print(
        f"[bench_monitoring] {results['overhead']['scenario']}: "
        f"monitoring overhead {overhead:+.2f}% "
        f"({results['overhead']['scrapes']} scrapes, "
        f"{results['overhead']['num_series']} series); "
        f"{q['scrapes_per_s']:,.0f} scrapes/s, "
        f"{q['rate_queries_per_s']:,.0f} rate()/s, "
        f"{q['quantile_queries_per_s']:,.0f} quantile()/s",
        file=sys.stderr,
    )
    if args.check_overhead is not None and overhead > args.check_overhead:
        print(
            f"[bench_monitoring] FAIL: monitoring overhead "
            f"{overhead:.2f}% exceeds the {args.check_overhead:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
