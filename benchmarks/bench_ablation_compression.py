"""Ablation: CP-IDs prefix compression (paper §VI-A, Table IV "w/o CP").

Isolates the compression technique across ID-space locality regimes:

* **typed IDs** — the production layout (high bytes encode node type,
  paper-style 64-bit IDs): long shared prefixes, big savings;
* **dense small IDs** — contiguous integers: even longer prefixes;
* **adversarial IDs** — uniform 64-bit: no shared prefix, compression
  degrades to ``z = 0`` and must cost (almost) nothing.

Also times the access-path overhead compression adds in this
reimplementation (decode on read), the counterpart of Table IV's
memory column.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.report import format_table, reduction_pct
from repro.core.samtree import Samtree, SamtreeConfig

REGIMES = {
    "typed": lambda r: (7 << 40) + r.randrange(1 << 20),
    "dense": lambda r: r.randrange(1 << 16),
    "adversarial": lambda r: r.randrange(1 << 63),
}


def _build(compress: bool, regime: str, n: int = 4000, seed: int = 3):
    r = random.Random(seed)
    gen = REGIMES[regime]
    tree = Samtree(SamtreeConfig(capacity=256, compress=compress))
    for _ in range(n):
        tree.insert(gen(r), r.random() + 0.01)
    return tree


@pytest.mark.parametrize("regime", list(REGIMES))
@pytest.mark.parametrize("compress", [True, False], ids=["CP", "w/o CP"])
def test_build_speed(benchmark, regime, compress):
    benchmark.group = f"ablation-cp-build-{regime}"
    benchmark.pedantic(
        lambda: _build(compress, regime), rounds=1, iterations=1
    )


@pytest.mark.parametrize("regime", list(REGIMES))
def test_memory_saving(regime):
    comp = _build(True, regime)
    plain = _build(False, regime)
    assert comp.to_dict() == plain.to_dict()
    if regime == "adversarial":
        # No shared prefix: at worst a tiny constant per node.
        assert comp.nbytes() <= plain.nbytes() * 1.01
    else:
        assert comp.nbytes() < plain.nbytes() * 0.75


def main() -> str:
    rows = []
    for regime in REGIMES:
        comp = _build(True, regime)
        plain = _build(False, regime)
        r = random.Random(0)
        start = time.perf_counter()
        comp.sample_many(20000, r)
        t_comp = time.perf_counter() - start
        start = time.perf_counter()
        plain.sample_many(20000, r)
        t_plain = time.perf_counter() - start
        rows.append(
            [
                regime,
                f"{plain.nbytes():,}B",
                f"{comp.nbytes():,}B",
                f"{-reduction_pct(plain.nbytes(), comp.nbytes()):+.1f}%",
                f"{t_plain * 1e6 / 20000:.2f}us",
                f"{t_comp * 1e6 / 20000:.2f}us",
            ]
        )
    return format_table(
        [
            "ID regime",
            "w/o CP bytes",
            "CP bytes",
            "saving",
            "w/o CP sample",
            "CP sample",
        ],
        rows,
        title="Ablation: CP-IDs compression across ID-space regimes "
        "(one samtree, 4000 neighbors)",
    )


if __name__ == "__main__":
    print(main())
