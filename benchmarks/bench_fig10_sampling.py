"""Figures 10(a-f): sampling latency vs batch size.

(a-c) **Neighbor sampling** — 50 weighted neighbor draws per vertex of a
batch, on OGBN / Reddit / WeChat.  The paper reports PlatoD2GL up to
2.9× faster than PlatoGL, with the w/o-CP ablation slower than the
compressed store and AliGraph absent on WeChat (o.o.m).

(d-f) **Subgraph sampling** — 2-hop expansion pivoted at each batch
vertex; PlatoD2GL up to 10.1× faster than PlatoGL on WeChat.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_series, speedup
from repro.bench.workloads import (
    build_store,
    make_store,
    neighbor_sampling_sweep,
    sources_of,
    subgraph_sampling_sweep,
)

try:
    from conftest import BENCH_DATASETS, SYSTEMS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS, SYSTEMS

#: Paper: 2^8 … 2^14; scaled for suite runtime.
BATCH_SIZES = [2**6, 2**8, 2**10]
K_NEIGHBORS = 50
FANOUTS = (10, 10)


@pytest.mark.parametrize("ds_name", list(BENCH_DATASETS))
@pytest.mark.parametrize("system", SYSTEMS)
def test_neighbor_sampling(benchmark, built_stores, system, ds_name):
    benchmark.group = f"fig10abc-neighbor-{ds_name}"
    store = built_stores[(system, ds_name)]
    if store is None:
        pytest.skip(f"{system} o.o.m on {ds_name} (paper Figure 10c)")
    sources = sources_of(store, limit=512)

    def run():
        neighbor_sampling_sweep(store, sources, [256], k=K_NEIGHBORS)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.parametrize("ds_name", list(BENCH_DATASETS))
@pytest.mark.parametrize("system", SYSTEMS)
def test_subgraph_sampling(benchmark, built_stores, system, ds_name):
    benchmark.group = f"fig10def-subgraph-{ds_name}"
    store = built_stores[(system, ds_name)]
    if store is None:
        pytest.skip(f"{system} o.o.m on {ds_name} (paper Figure 10f)")
    sources = sources_of(store, limit=512)

    def run():
        subgraph_sampling_sweep(store, sources, [64], fanouts=FANOUTS)

    benchmark.pedantic(run, rounds=3, iterations=1)


def _build_all(ds_name):
    loader, scale = BENCH_DATASETS[ds_name]
    data = loader(scale=scale)
    stores = {}
    for system in SYSTEMS:
        store = make_store(system)
        result = build_store(
            store, data, batch_size=4096, enforce_cluster_budget_for=ds_name
        )
        stores[system] = None if result.out_of_memory else store
    return stores


def main(batch_sizes=None) -> str:
    batch_sizes = batch_sizes or BATCH_SIZES
    parts = []
    for ds_name in BENCH_DATASETS:
        stores = _build_all(ds_name)
        neighbor_series = {}
        subgraph_series = {}
        for system, store in stores.items():
            if store is None:
                nan = float("nan")
                neighbor_series[system] = [nan] * len(batch_sizes)
                subgraph_series[system] = [nan] * len(batch_sizes)
                continue
            sources = sources_of(store)
            neigh = neighbor_sampling_sweep(
                store, sources, batch_sizes, k=K_NEIGHBORS
            )
            sub = subgraph_sampling_sweep(
                store, sources, batch_sizes, fanouts=FANOUTS
            )
            neighbor_series[system] = [neigh[b] * 1e3 for b in batch_sizes]
            subgraph_series[system] = [sub[b] * 1e3 for b in batch_sizes]
        parts.append(
            format_series(
                "batch",
                batch_sizes,
                neighbor_series,
                unit="ms",
                title=f"Figure 10 (neighbor sampling, k={K_NEIGHBORS}) on "
                f"{ds_name}",
            )
        )
        ratios = [
            speedup(pg, d2)
            for pg, d2 in zip(
                subgraph_series["PlatoGL"], subgraph_series["PlatoD2GL"]
            )
            if pg == pg and d2 == d2
        ]
        parts.append(
            format_series(
                "batch",
                batch_sizes,
                subgraph_series,
                unit="ms",
                title=f"Figure 10 (2-hop subgraph sampling) on {ds_name} "
                f"(PlatoD2GL vs PlatoGL: "
                + ", ".join(f"{r:.1f}x" for r in ratios)
                + ")",
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
