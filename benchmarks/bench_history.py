"""Bench-history regression harness (DESIGN.md §12).

The ``BENCH_*.json`` files record *one* run each; a perf regression only
shows up against a remembered trajectory.  This module keeps that
trajectory in ``BENCH_HISTORY.jsonl`` — one JSON object per recorded
run — and gates new runs against it:

* :func:`extract_metrics` pulls the **gated** throughput figures out of
  a bench payload (warm-path batched sampling vertices/s per fanout;
  bulk-build edges/s and batched-update ops/s) — all higher-is-better;
* :func:`record` appends a run (bench name, payload ``mode``, metrics,
  timestamp) to the history;
* :func:`compare` checks a fresh payload against the **best** prior run
  of the same bench *and mode* (smoke and full runs are never compared
  to each other) with a noise-aware tolerance: the greater of a fixed
  floor (default 15 %) and 3× the coefficient of variation observed
  across the recorded history, so a naturally-jittery metric does not
  flap the gate while a stable one stays tight;
* the first recorded run of a bench/mode establishes the baseline and
  always passes.

CLI (the CI ``bench-regression`` job)::

    python benchmarks/bench_history.py record  --bench bulk_ingest
    python benchmarks/bench_history.py compare --bench bulk_ingest

``compare`` exits 1 on regression and prints a per-metric table either
way.  ``--input`` defaults to ``BENCH_<bench>.json`` next to the
history file.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_TOLERANCE",
    "compare",
    "extract_metrics",
    "load_history",
    "record",
]

#: Regression tolerance floor: a metric must drop more than 15 % below
#: the best recorded run (of the same mode) to fail the gate.
DEFAULT_TOLERANCE = 0.15

#: CV multiplier for the noise-aware widening of the tolerance.
_CV_FACTOR = 3.0

_HISTORY_DEFAULT = "BENCH_HISTORY.jsonl"


# ---------------------------------------------------------------------------
# metric extraction
# ---------------------------------------------------------------------------
def extract_metrics(bench: str, payload: Dict) -> Dict[str, float]:
    """Pull the gated (higher-is-better) throughput metrics of a bench.

    Unknown bench names raise ``KeyError`` so a typo in CI fails loudly
    instead of gating on an empty metric set.
    """
    if bench == "batched_sampling":
        metrics = {
            f"warm_vertices_per_s_k{fanout}": stats[
                "batched_warm_vertices_per_s"
            ]
            for fanout, stats in payload["fanouts"].items()
        }
        if not metrics:
            raise KeyError("batched_sampling payload has no fanouts")
        return metrics
    if bench == "bulk_ingest":
        return {
            "bulk_edges_per_s": payload["build"]["compress_on"][
                "bulk_edges_per_s"
            ],
            "batched_update_ops_per_s": payload["update"][
                "batched_ops_per_s"
            ],
        }
    if bench == "frozen_sampling":
        metrics = {
            f"frozen_vertices_per_s_k{fanout}": stats[
                "frozen_matrix_vertices_per_s"
            ]
            for fanout, stats in payload["fanouts"].items()
        }
        if not metrics:
            raise KeyError("frozen_sampling payload has no fanouts")
        return metrics
    if bench == "zipf_serving":
        metrics = {}
        for skew, entry in payload["skews"].items():
            tag = skew.replace(".", "_")
            metrics[f"hot_modeled_sources_per_s_s{tag}"] = entry["hot"][
                "modeled_sources_per_s"
            ]
            metrics[f"hot_wall_sources_per_s_s{tag}"] = entry["hot"][
                "wall_sources_per_s"
            ]
        if not metrics:
            raise KeyError("zipf_serving payload has no skews")
        return metrics
    if bench in ("slo_serving", "monitoring", "flight_recorder"):
        metrics = dict(payload["metrics"])
        if not metrics:
            raise KeyError(f"{bench} payload has no metrics")
        return {name: float(value) for name, value in metrics.items()}
    raise KeyError(
        f"no metric extractor for bench {bench!r}; known: "
        f"batched_sampling, bulk_ingest, flight_recorder, "
        f"frozen_sampling, monitoring, slo_serving, zipf_serving"
    )


# ---------------------------------------------------------------------------
# history I/O
# ---------------------------------------------------------------------------
def load_history(path: str) -> List[Dict]:
    """Read every entry of a JSONL history (missing file -> [])."""
    if not os.path.exists(path):
        return []
    entries: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: corrupt history line: {exc}"
                ) from exc
    return entries


def record(
    path: str,
    bench: str,
    payload: Dict,
    timestamp: Optional[float] = None,
) -> Dict:
    """Append one run to the history; returns the appended entry."""
    entry = {
        "bench": bench,
        "mode": payload.get("mode", "full"),
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ",
            time.gmtime(timestamp if timestamp is not None else time.time()),
        ),
        "metrics": extract_metrics(bench, payload),
    }
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------
def _tolerance_for(values: List[float], floor: float) -> float:
    """Noise-aware tolerance: ``max(floor, 3 * CV)`` over the history.

    With fewer than 3 recorded values the CV estimate is meaningless, so
    the floor alone applies.
    """
    if len(values) < 3:
        return floor
    mean = statistics.fmean(values)
    if mean <= 0:
        return floor
    cv = statistics.stdev(values) / mean
    return max(floor, _CV_FACTOR * cv)


def compare(
    bench: str,
    payload: Dict,
    history: List[Dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict]:
    """Gate a fresh payload against the recorded history.

    Returns one result dict per metric::

        {"metric", "current", "baseline", "ratio", "tolerance",
         "samples", "regressed"}

    ``baseline`` is the best prior value of the same bench **and
    mode**; ``regressed`` is true when
    ``current < baseline * (1 - tolerance_eff)``.  Metrics with no
    history (first run, or newly-added metric) report
    ``baseline=None`` and never regress.
    """
    mode = payload.get("mode", "full")
    current = extract_metrics(bench, payload)
    prior: Dict[str, List[float]] = {}
    for entry in history:
        if entry.get("bench") != bench or entry.get("mode", "full") != mode:
            continue
        for name, value in entry.get("metrics", {}).items():
            prior.setdefault(name, []).append(float(value))
    results: List[Dict] = []
    for name in sorted(current):
        value = float(current[name])
        values = prior.get(name, [])
        if not values:
            results.append(
                {
                    "metric": name,
                    "current": value,
                    "baseline": None,
                    "ratio": None,
                    "tolerance": tolerance,
                    "samples": 0,
                    "regressed": False,
                }
            )
            continue
        baseline = max(values)
        tol = _tolerance_for(values, tolerance)
        ratio = value / baseline if baseline else float("inf")
        results.append(
            {
                "metric": name,
                "current": value,
                "baseline": baseline,
                "ratio": ratio,
                "tolerance": tol,
                "samples": len(values),
                "regressed": value < baseline * (1.0 - tol),
            }
        )
    return results


def render_results(bench: str, mode: str, results: List[Dict]) -> str:
    lines = [f"bench-history gate: {bench} (mode={mode})"]
    for r in results:
        if r["baseline"] is None:
            lines.append(
                f"  {r['metric']:<28} {r['current']:>14,.0f}  "
                f"(no history — baseline established)"
            )
            continue
        verdict = "REGRESSED" if r["regressed"] else "ok"
        lines.append(
            f"  {r['metric']:<28} {r['current']:>14,.0f}  "
            f"best={r['baseline']:,.0f}  "
            f"ratio={r['ratio']:.3f}  "
            f"tol={r['tolerance']:.0%} (n={r['samples']})  {verdict}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _load_payload(args: argparse.Namespace) -> Dict:
    path = args.input or f"BENCH_{args.bench}.json"
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="record / gate bench runs against BENCH_HISTORY.jsonl"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, helptext in (
        ("record", "append a bench payload to the history"),
        ("compare", "gate a bench payload against the recorded history"),
    ):
        p = sub.add_parser(name, help=helptext)
        p.add_argument(
            "--bench",
            required=True,
            choices=[
                "batched_sampling",
                "bulk_ingest",
                "flight_recorder",
                "frozen_sampling",
                "monitoring",
                "slo_serving",
                "zipf_serving",
            ],
        )
        p.add_argument(
            "--input",
            default=None,
            help="bench payload path (default BENCH_<bench>.json)",
        )
        p.add_argument("--history", default=_HISTORY_DEFAULT)
    sub.choices["compare"].add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="regression tolerance floor (fraction, default 0.15)",
    )
    sub.choices["compare"].add_argument(
        "--record",
        action="store_true",
        help="append the payload to the history after a passing gate",
    )
    args = parser.parse_args(argv)

    payload = _load_payload(args)
    if args.command == "record":
        entry = record(args.history, args.bench, payload)
        print(
            f"recorded {args.bench} (mode={entry['mode']}) -> "
            f"{args.history}: "
            + ", ".join(
                f"{k}={v:,.0f}" for k, v in sorted(entry["metrics"].items())
            )
        )
        return 0

    history = load_history(args.history)
    results = compare(args.bench, payload, history, tolerance=args.tolerance)
    mode = payload.get("mode", "full")
    print(render_results(args.bench, mode, results))
    regressed = [r for r in results if r["regressed"]]
    if regressed:
        for r in regressed:
            print(
                f"FAIL {r['metric']}: {r['current']:,.0f} is "
                f"{1 - r['ratio']:.1%} below best {r['baseline']:,.0f} "
                f"(tolerance {r['tolerance']:.0%})",
                file=sys.stderr,
            )
        return 1
    if args.record:
        record(args.history, args.bench, payload)
        print(f"appended passing run to {args.history}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
