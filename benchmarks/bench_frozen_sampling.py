"""Frozen CSC kernels vs the warm batched path vs scalar descents.

Measures the FrozenShard read path (one flattened CSC image per shard,
whole-frontier numpy draws — `repro/core/frozen.py`) against the two
pre-existing regimes on the same GNN-shaped workload as
``bench_batched_sampling``: a hub-heavy frontier over a skewed synthetic
graph, fan-outs {5, 10, 25}.

Four regimes per fan-out:

* ``scalar``         — one root→leaf descent per draw (the PR-3 floor);
* ``batched_warm``   — per-source snapshots off a warm cache (the prior
  hot path, recorded at ~320k vertices/s at fan-out 10);
* ``frozen_rows``    — the frozen kernel behind the list-of-rows store
  API (`sample_neighbors_many` dispatching to the shard) — pays a
  Python list per frontier row, so it bounds what drop-in callers see;
* ``frozen_matrix``  — the raw matrix kernel (`FrozenShard.sample_matrix`,
  one numpy pass for the whole frontier) — the figure the >= 10x
  acceptance criterion and the bench-history gate target.

A second section sweeps frontier size at fan-out 10 (does the frozen
advantage grow with batch size, as the per-batch fixed costs amortise?),
and a third records the one-time ``freeze()`` compile cost next to the
steady-state win so the break-even batch count is visible.

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_frozen_sampling.json``,
appended to ``BENCH_HISTORY.jsonl`` via ``bench_history.py record``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

import numpy as np

from bench_batched_sampling import SEED, build_graph, make_frontier
from repro.core.snapshot import SnapshotCache, coerce_generator

FANOUTS = (5, 10, 25)
FRONTIER_SWEEP = (100, 1000, 4000)


def _time(fn, repeats: int, inner: int = 1) -> float:
    """Best-of-N wall time of ``fn()`` (seconds).

    ``inner`` amortises sub-millisecond regions: each timed rep runs the
    call ``inner`` times and reports the mean, so scheduler jitter on a
    shared runner cannot swamp a ~200 µs kernel (the same trick the
    obs-overhead gate of ``bench_batched_sampling`` uses).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def run_benchmark(
    num_sources: int,
    frontier_size: int,
    mean_degree: int,
    repeats: int,
) -> Dict:
    import random

    store = build_graph(num_sources, mean_degree)
    frontier = make_frontier(num_sources, frontier_size)
    frontier_arr = np.asarray(frontier, dtype=np.int64)

    # Compile once up front and keep the compile time: the break-even
    # analysis below reports how many batches the one-time cost buys.
    t_compile = _time(lambda: store.freeze(), 1)
    (shard,) = store.frozen_shards

    results = {
        "config": {
            "num_sources": num_sources,
            "num_edges": store.num_edges,
            "frontier_size": frontier_size,
            "distinct_sources_in_frontier": len(set(frontier)),
            "mean_degree": mean_degree,
            "repeats": repeats,
            "fanouts": list(FANOUTS),
        },
        "compile": {
            "compile_s": t_compile,
            "rows": shard.num_rows,
            "edges": shard.num_edges,
            "edges_per_s": shard.num_edges / t_compile,
        },
        "fanouts": {},
    }

    for fanout in FANOUTS:
        # -- scalar: one descent per draw ------------------------------
        store.thaw()  # make sure the frozen path cannot shortcut
        def scalar():
            rng = random.Random(SEED)
            for src in frontier:
                store.sample_neighbors(src, fanout, rng)

        t_scalar = _time(scalar, repeats)

        # -- warm batched snapshots (the prior hot path) ---------------
        store.snapshot_cache = SnapshotCache()
        store.sample_neighbors_many(frontier, fanout, rng=SEED)  # warm it
        t_warm = _time(
            lambda: store.sample_neighbors_many(frontier, fanout, rng=SEED),
            repeats,
        )

        # -- frozen kernel behind the list-of-rows store API -----------
        store.freeze()
        store.sample_neighbors_many(frontier, fanout, rng=SEED)  # warm it
        t_rows = _time(
            lambda: store.sample_neighbors_many(frontier, fanout, rng=SEED),
            repeats,
            inner=5,
        )

        # -- raw matrix kernel (the gated figure) ----------------------
        gen = coerce_generator(SEED)
        shard.sample_matrix(frontier_arr, fanout, gen)  # warm it
        t_matrix = _time(
            lambda: shard.sample_matrix(frontier_arr, fanout, gen),
            repeats,
            inner=20,
        )

        results["fanouts"][str(fanout)] = {
            "scalar_s": t_scalar,
            "batched_warm_s": t_warm,
            "frozen_rows_s": t_rows,
            "frozen_matrix_s": t_matrix,
            "scalar_vertices_per_s": frontier_size / t_scalar,
            "batched_warm_vertices_per_s": frontier_size / t_warm,
            "frozen_rows_vertices_per_s": frontier_size / t_rows,
            "frozen_matrix_vertices_per_s": frontier_size / t_matrix,
            "speedup_rows_vs_warm": t_warm / t_rows,
            "speedup_matrix_vs_warm": t_warm / t_matrix,
            "speedup_matrix_vs_scalar": t_scalar / t_matrix,
            "compile_breakeven_batches": t_compile / max(t_warm - t_matrix,
                                                         1e-12),
        }

    # Frontier-size sweep at fan-out 10: per-batch fixed costs amortise,
    # so the frozen advantage should grow with the frontier.
    results["frontier_sweep"] = {}
    for size in FRONTIER_SWEEP:
        if size > num_sources * 2:
            continue
        sweep = make_frontier(num_sources, size, seed=SEED + 2)
        sweep_arr = np.asarray(sweep, dtype=np.int64)
        store.thaw()
        store.snapshot_cache = SnapshotCache()
        store.sample_neighbors_many(sweep, 10, rng=SEED)
        t_warm = _time(
            lambda: store.sample_neighbors_many(sweep, 10, rng=SEED),
            repeats,
        )
        gen = coerce_generator(SEED)
        shard.sample_matrix(sweep_arr, 10, gen)  # warm it
        t_matrix = _time(
            lambda: shard.sample_matrix(sweep_arr, 10, gen), repeats,
            inner=20,
        )
        results["frontier_sweep"][str(size)] = {
            "batched_warm_s": t_warm,
            "frozen_matrix_s": t_matrix,
            "frozen_matrix_vertices_per_s": size / t_matrix,
            "speedup_matrix_vs_warm": t_warm / t_matrix,
        }

    # Multi-hop: the sampler-facing kernel (2-hop [10, 10] fan-out).
    store.freeze()
    seeds = frontier[: max(1, frontier_size // 10)]
    t_hops = _time(
        lambda: store.sample_fanouts(seeds, [10, 10], rng=SEED), repeats
    )
    levels = store.sample_fanouts(seeds, [10, 10], rng=SEED)
    results["multi_hop"] = {
        "seeds": len(seeds),
        "fanouts": [10, 10],
        "time_s": t_hops,
        "expanded_vertices": int(sum(l.size for l in levels)),
        "seeds_per_s": len(seeds) / t_hops,
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: checks the machinery, not the numbers",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_benchmark(
            num_sources=200, frontier_size=100, mean_degree=20, repeats=1
        )
    else:
        results = run_benchmark(
            num_sources=4000, frontier_size=1000, mean_degree=50, repeats=3
        )
    results["mode"] = "smoke" if args.smoke else "full"

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    k10 = results["fanouts"]["10"]
    print(
        f"[bench_frozen_sampling] fanout=10: frozen matrix "
        f"{k10['frozen_matrix_vertices_per_s']:,.0f} v/s "
        f"({k10['speedup_matrix_vs_warm']:.1f}x warm batched, "
        f"{k10['speedup_matrix_vs_scalar']:.1f}x scalar); "
        f"rows API {k10['speedup_rows_vs_warm']:.1f}x warm",
        file=sys.stderr,
    )
    if not args.smoke and k10["speedup_matrix_vs_warm"] < 10.0:
        print(
            "[bench_frozen_sampling] FAIL: frozen matrix kernel below "
            "the 10x-over-warm acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
