"""Export machine-readable results for every table/figure.

``python benchmarks/export_results.py out.json`` re-runs the evaluation
workloads and writes one JSON document with a section per experiment —
the artifact a plotting notebook or CI regression tracker consumes.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from conftest import BENCH_DATASETS, SYSTEMS

from repro.bench.workloads import (
    CLUSTER_BUDGET_BYTES,
    build_store,
    full_scale_bytes,
    make_store,
    neighbor_sampling_sweep,
    run_update_batches,
    sources_of,
    subgraph_sampling_sweep,
)
from repro.core.cstable import CSTable
from repro.core.fenwick import FSTable
from repro.datasets.stream import EdgeStream

import bench_table2_complexity


def export_table2() -> dict:
    sizes = [2**8, 2**10, 2**12]
    out = {}
    for op in ("insert", "update", "delete", "sample"):
        for name, cls in (("ITS", CSTable), ("FTS", FSTable)):
            out[f"{op}/{name}"] = {
                str(n): bench_table2_complexity.measure(cls, op, n, repeats=500)
                for n in sizes
            }
    return out


def export_fig8_table4() -> dict:
    out = {}
    for ds_name, (loader, scale) in BENCH_DATASETS.items():
        data = loader(scale=scale)
        rows = {}
        for system in SYSTEMS:
            store = make_store(system)
            result = build_store(
                store,
                data,
                batch_size=4096,
                enforce_cluster_budget_for=ds_name,
            )
            rows[system] = {
                "out_of_memory": result.out_of_memory,
                "build_seconds": result.seconds,
                "edges_per_second": result.ops_per_second,
                "full_scale_bytes": full_scale_bytes(store, data, ds_name),
            }
        out[ds_name] = rows
    out["cluster_budget_bytes"] = CLUSTER_BUDGET_BYTES
    return out


def export_fig9(batch_sizes=(2**8, 2**10, 2**12)) -> dict:
    loader, scale = BENCH_DATASETS["WeChat"]
    out = {}
    for system in ("AliGraph", "PlatoGL", "PlatoD2GL"):
        data = loader(scale=scale)
        store = make_store(system)
        stream = EdgeStream(data)
        for batch in stream.build_batches(4096):
            for op in batch:
                store.apply(op)
        out[system] = {
            str(b): run_update_batches(store, stream, b, 3, (0.4, 0.4, 0.2))
            for b in batch_sizes
        }
    return out


def export_fig10(batch_sizes=(2**6, 2**8)) -> dict:
    out = {}
    for ds_name, (loader, scale) in BENCH_DATASETS.items():
        data = loader(scale=scale)
        rows = {}
        for system in SYSTEMS:
            store = make_store(system)
            result = build_store(
                store,
                data,
                batch_size=4096,
                enforce_cluster_budget_for=ds_name,
            )
            if result.out_of_memory:
                rows[system] = None
                continue
            sources = sources_of(store)
            rows[system] = {
                "neighbor": {
                    str(b): t
                    for b, t in neighbor_sampling_sweep(
                        store, sources, batch_sizes
                    ).items()
                },
                "subgraph": {
                    str(b): t
                    for b, t in subgraph_sampling_sweep(
                        store, sources, batch_sizes
                    ).items()
                },
            }
        out[ds_name] = rows
    return out


def export_table5() -> dict:
    import bench_table5_opdist

    loader, scale = BENCH_DATASETS["WeChat"]
    data = loader(scale=scale)
    out = {}
    for capacity in (64, 256, 1024):
        stats = bench_table5_opdist.build_with_capacity(capacity, data).stats
        out[str(capacity)] = stats.leaf_fraction
    return out


def export_obs() -> dict:
    """Registry snapshot + slow traces of a seeded cluster workload.

    Runs the same churn+sample shape as ``repro obs`` on a small
    :class:`LocalCluster` and embeds the full
    :class:`~repro.obs.registry.MetricsRegistry` snapshot plus the
    slowest trace roots, so the exported document carries the cluster's
    telemetry alongside the timing sections (DESIGN.md §11).
    """
    import random

    from repro.distributed.cluster import LocalCluster
    from repro.distributed.rpc import NetworkModel
    from repro.obs.trace import Tracer

    rng = random.Random(0)
    network = NetworkModel()
    tracer = Tracer(clock=network.now, seed=0)
    cluster = LocalCluster(num_servers=4, network=network, tracer=tracer)
    n = 500
    srcs = [rng.randrange(n) for _ in range(2000)]
    dsts = [rng.randrange(n) for _ in range(2000)]
    cluster.client.bulk_load(srcs, dsts, 1.0)
    for _ in range(20):
        frontier = [rng.randrange(n) for _ in range(64)]
        cluster.client.sample_neighbors_many(frontier, 10, rng)
    return {
        "registry_snapshot": cluster.registry.snapshot().to_dict(),
        "top_slow_traces": [
            span.to_dict() for span in tracer.top_slow(3)
        ],
    }


SECTIONS = {
    "table2": export_table2,
    "fig8_table4": export_fig8_table4,
    "fig9": export_fig9,
    "fig10": export_fig10,
    "table5": export_table5,
    "obs": export_obs,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", help="JSON file to write")
    parser.add_argument(
        "--only", choices=sorted(SECTIONS), action="append",
        help="restrict to specific sections (repeatable)",
    )
    args = parser.parse_args(argv)
    document = {"generated_unix": time.time(), "sections": {}}
    for name, fn in SECTIONS.items():
        if args.only and name not in args.only:
            continue
        start = time.perf_counter()
        document["sections"][name] = fn()
        print(f"{name}: {time.perf_counter() - start:.1f}s", file=sys.stderr)
    Path(args.output).write_text(json.dumps(document, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
