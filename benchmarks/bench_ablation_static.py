"""Ablation: why dynamic storage is non-negotiable (paper §I).

The paper dismisses the static deep graph learning systems (Euler,
Plato, DistDGL, ByteGNN) because every topology change forces a full
re-partition/re-deploy.  This bench quantifies that cliff by running the
same interleaved update+sample workload against:

* the static CSR store (rebuild on first read after any write),
* AliGraph (per-vertex alias rebuilds),
* PlatoGL (per-source CSTable maintenance),
* PlatoD2GL (in-place O(log) maintenance).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.baselines.static_csr import StaticCSRStore
from repro.bench.report import format_table
from repro.bench.workloads import make_store
from repro.datasets.stream import EdgeStream

try:
    from conftest import BENCH_DATASETS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS

SYSTEMS = ("StaticCSR", "AliGraph", "PlatoGL", "PlatoD2GL")


def _make(system):
    if system == "StaticCSR":
        return StaticCSRStore()
    return make_store(system)


def _interleaved_workload(store, data, rounds=20, updates_per_round=16,
                          samples_per_round=16, seed=0):
    """Alternate small update bursts with sampling — the online regime
    where static rebuilds hurt the most.  Returns elapsed seconds."""
    stream = EdgeStream(data, seed=seed)
    for batch in stream.build_batches(8192):
        for op in batch:
            store.apply(op)
    rng = random.Random(seed)
    sources = []
    for src in store.sources():
        sources.append(src)
        if len(sources) >= 64:
            break
    churn = stream.churn_batches(updates_per_round, rounds, (0.5, 0.3, 0.2))
    start = time.perf_counter()
    for batch in churn:
        for op in batch:
            store.apply(op)
        for _ in range(samples_per_round):
            store.sample_neighbors(sources[rng.randrange(len(sources))], 10, rng)
    return time.perf_counter() - start


@pytest.mark.parametrize("system", SYSTEMS)
def test_interleaved_update_sample(benchmark, datasets, system):
    benchmark.group = "ablation-static-interleaved"
    data = datasets["OGBN"]
    store = _make(system)
    benchmark.pedantic(
        lambda: _interleaved_workload(store, data, rounds=5),
        rounds=1,
        iterations=1,
    )


def test_static_store_is_orders_slower(datasets):
    data = datasets["OGBN"]
    static = _interleaved_workload(_make("StaticCSR"), data, rounds=8)
    dynamic = _interleaved_workload(_make("PlatoD2GL"), data, rounds=8)
    assert static > 5 * dynamic


def main() -> str:
    loader, scale = BENCH_DATASETS["OGBN"]
    data = loader(scale=scale)
    rows = []
    base = None
    for system in SYSTEMS:
        elapsed = _interleaved_workload(_make(system), data)
        if system == "PlatoD2GL":
            base = elapsed
        rows.append([system, f"{elapsed * 1e3:.1f}ms"])
    for row in rows:
        ms = float(row[1][:-2])
        row.append(f"{ms / (base * 1e3):.1f}x" if base else "-")
    return format_table(
        ["System", "20 rounds of update+sample", "vs PlatoD2GL"],
        rows,
        title="Ablation: interleaved updates and sampling on OGBN-scaled "
        "(static systems pay a full rebuild per round)",
    )


if __name__ == "__main__":
    print(main())
