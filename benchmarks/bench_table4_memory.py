"""Table IV: memory cost after graph building (+ the w/o-CP ablation).

For each system × dataset the driver builds the store, accounts its
modeled footprint, and extrapolates per-edge cost to the published graph
size.  The paper's rows: PlatoD2GL smallest everywhere (up to 79.8 % less
than the second best system), the w/o-CP ablation 18–48.6 % above
PlatoD2GL, PlatoGL heavier, and AliGraph out of memory on WeChat.

``--doctor`` additionally cross-checks each PlatoD2GL store's total
against the samtree doctor's per-component breakdown (DESIGN.md §12):
the two walks are independent code paths over the same structure, so
they must agree within 1 % (they agree exactly today — the tolerance
absorbs future component refactors).
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table, reduction_pct
from repro.bench.workloads import (
    CLUSTER_BUDGET_BYTES,
    build_store,
    full_scale_bytes,
    make_store,
)
from repro.core.memory import humanize_bytes

try:
    from conftest import BENCH_DATASETS, SYSTEMS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS, SYSTEMS


@pytest.mark.parametrize("ds_name", list(BENCH_DATASETS))
def test_memory_accounting_speed(benchmark, built_stores, ds_name):
    """Time the byte-accounting walk itself (it runs per budget check)."""
    benchmark.group = "table4-accounting"
    store = built_stores[("PlatoD2GL", ds_name)]
    benchmark(store.nbytes)


@pytest.mark.parametrize("ds_name", list(BENCH_DATASETS))
def test_memory_ordering(built_stores, datasets, ds_name):
    """PlatoD2GL < w/o CP < min(PlatoGL, AliGraph) (Table IV ordering)."""
    data = datasets[ds_name]
    sizes = {}
    for system in SYSTEMS:
        store = built_stores[(system, ds_name)]
        if store is None:
            sizes[system] = float("inf")  # o.o.m
        else:
            sizes[system] = full_scale_bytes(store, data, ds_name)
    assert sizes["PlatoD2GL"] < sizes["PlatoD2GL (w/o CP)"]
    assert sizes["PlatoD2GL (w/o CP)"] < sizes["PlatoGL"]
    assert sizes["PlatoD2GL (w/o CP)"] < sizes["AliGraph"]


def test_wechat_aligraph_oom(built_stores):
    """The paper's o.o.m entry: AliGraph cannot hold WeChat."""
    assert built_stores[("AliGraph", "WeChat")] is None


def compute_rows(loader, scale, ds_name):
    data = loader(scale=scale)
    sizes = {}
    oom = set()
    for system in SYSTEMS:
        store = make_store(system)
        result = build_store(
            store, data, batch_size=4096, enforce_cluster_budget_for=ds_name
        )
        if result.out_of_memory:
            oom.add(system)
            sizes[system] = float("inf")
        else:
            sizes[system] = full_scale_bytes(store, data, ds_name)
    return sizes, oom


def main() -> str:
    headers = ["System"] + list(BENCH_DATASETS)
    all_sizes = {}
    all_oom = {}
    for ds_name, (loader, scale) in BENCH_DATASETS.items():
        all_sizes[ds_name], all_oom[ds_name] = compute_rows(
            loader, scale, ds_name
        )
    rows = []
    for system in SYSTEMS:
        row = [system]
        for ds_name in BENCH_DATASETS:
            if system in all_oom[ds_name]:
                row.append("o.o.m")
            else:
                row.append(humanize_bytes(all_sizes[ds_name][system]))
        rows.append(row)
    improv = ["improvement vs 2nd-best"]
    cp = ["improvement vs w/o CP"]
    for ds_name in BENCH_DATASETS:
        sizes = all_sizes[ds_name]
        baselines = [
            sizes[s] for s in ("AliGraph", "PlatoGL") if sizes[s] != float("inf")
        ]
        second = min(baselines) if baselines else float("inf")
        improv.append(f"-{reduction_pct(second, sizes['PlatoD2GL']):.1f}%")
        cp.append(
            f"-{reduction_pct(sizes['PlatoD2GL (w/o CP)'], sizes['PlatoD2GL']):.1f}%"
        )
    rows.append(improv)
    rows.append(cp)
    return format_table(
        headers,
        rows,
        title=(
            "Table IV (measured): full-scale extrapolated memory after "
            f"build (cluster budget {humanize_bytes(CLUSTER_BUDGET_BYTES)})"
        ),
    )


def doctor_crosscheck(tolerance: float = 0.01) -> str:
    """Reconcile ``store.nbytes()`` against the doctor's breakdown.

    Builds the PlatoD2GL variants on every bench dataset, diagnoses each
    store with :func:`repro.obs.doctor.diagnose_store`, and asserts
    ``|Σ components - nbytes| <= tolerance * nbytes``.  Returns a small
    reconciliation table; raises ``AssertionError`` on divergence.
    """
    from repro.obs.doctor import diagnose_store

    headers = ["System", "Dataset", "nbytes()", "doctor Σ", "delta"]
    rows = []
    for ds_name, (loader, scale) in BENCH_DATASETS.items():
        data = loader(scale=scale)
        for system in ("PlatoD2GL", "PlatoD2GL (w/o CP)"):
            store = make_store(system)
            build_store(store, data, batch_size=4096)
            expected = store.nbytes()
            report = diagnose_store(store)
            delta = abs(report.total_bytes - expected)
            assert delta <= tolerance * expected, (
                f"{system}/{ds_name}: doctor breakdown "
                f"{report.total_bytes} diverges from nbytes() {expected} "
                f"by {delta} bytes (> {tolerance:.0%})"
            )
            rows.append(
                [
                    system,
                    ds_name,
                    humanize_bytes(expected),
                    humanize_bytes(report.total_bytes),
                    str(delta),
                ]
            )
    return format_table(
        headers, rows, title="doctor cross-check: Σ components vs nbytes()"
    )


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--doctor",
        action="store_true",
        help="also cross-check totals against the samtree doctor's "
        "per-component breakdown (1%% tolerance)",
    )
    args = parser.parse_args()
    print(main())
    if args.doctor:
        print()
        print(doctor_crosscheck())
