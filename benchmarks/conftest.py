"""Shared fixtures for the benchmark suite.

Datasets and built stores are session-scoped: every figure/table driver
reuses one build per (system, dataset), as the paper's evaluation does.

Scales are chosen so the whole suite runs in minutes on one machine while
preserving the structural regime (density, skew) each experiment depends
on; `run_all.py --full` rebuilds everything at 10× scale for
higher-fidelity numbers.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.workloads import build_store, make_store
from repro.datasets.presets import ogbn_scaled, reddit_scaled, wechat_scaled

#: (dataset name, loader, scale) for the benchmark suite.  The WeChat
#: scale is the smallest at which the hub-shaped rev:User-Live relation
#: (live rooms with hundreds of distinct viewers) survives scaling.
BENCH_DATASETS = {
    "OGBN": (ogbn_scaled, 5000.0),
    "Reddit": (reddit_scaled, 2500.0),
    "WeChat": (wechat_scaled, 1_000_000.0),
}

#: Systems of the paper's comparison.
SYSTEMS = ("AliGraph", "PlatoGL", "PlatoD2GL", "PlatoD2GL (w/o CP)")


@pytest.fixture(scope="session")
def datasets():
    """All three scaled datasets, generated once."""
    return {
        name: loader(scale=scale)
        for name, (loader, scale) in BENCH_DATASETS.items()
    }


@pytest.fixture(scope="session")
def built_stores(datasets):
    """``(system, dataset) -> built store`` for every combination.

    Combinations that exceed the paper's cluster budget (AliGraph on
    WeChat — Figure 10c omits it "since it runs out of memory") map to
    ``None``.
    """
    stores = {}
    for ds_name, data in datasets.items():
        for system in SYSTEMS:
            store = make_store(system)
            result = build_store(
                store,
                data,
                batch_size=4096,
                enforce_cluster_budget_for=ds_name,
            )
            stores[(system, ds_name)] = None if result.out_of_memory else store
    return stores


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xBEEF)
