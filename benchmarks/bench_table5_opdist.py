"""Table V: distribution of structural update operations, leaf vs
non-leaf, as samtree node capacity varies (WeChat dataset).

The paper reports that >98 % of updates land on leaf nodes at every
capacity (98.09 % at 64 up to 99.98 % at 1024) — the fact that justifies
putting the fast FSTable in the leaves and the plain CSTable in the
internal nodes.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_table
from repro.bench.workloads import make_store
from repro.datasets.stream import EdgeStream

try:
    from conftest import BENCH_DATASETS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS

CAPACITIES = [64, 128, 256, 512, 1024]


def build_with_capacity(capacity: int, data):
    store = make_store("PlatoD2GL", capacity=capacity)
    stream = EdgeStream(data)
    for batch in stream.build_batches(4096):
        for op in batch:
            store.apply(op)
    return store


@pytest.mark.parametrize("capacity", [64, 256, 1024])
def test_build_per_capacity(benchmark, datasets, capacity):
    benchmark.group = "table5-build-by-capacity"
    data = datasets["WeChat"]
    store = benchmark.pedantic(
        lambda: build_with_capacity(capacity, data), rounds=1, iterations=1
    )
    stats = store.stats
    assert stats.leaf_fraction > 0.95
    benchmark.extra_info["leaf_fraction"] = stats.leaf_fraction


def test_leaf_fraction_grows_with_capacity(datasets):
    data = datasets["WeChat"]
    fractions = [
        build_with_capacity(c, data).stats.leaf_fraction for c in (64, 512)
    ]
    assert fractions[0] < fractions[1]


def main() -> str:
    loader, scale = BENCH_DATASETS["WeChat"]
    data = loader(scale=scale)
    rows = []
    leaf_row = ["Leaf nodes"]
    internal_row = ["Non-leaf nodes"]
    for capacity in CAPACITIES:
        stats = build_with_capacity(capacity, data).stats
        leaf_row.append(f"{100 * stats.leaf_fraction:.2f}%")
        internal_row.append(f"{100 * (1 - stats.leaf_fraction):.2f}%")
    rows.append(leaf_row)
    rows.append(internal_row)
    return format_table(
        ["Node capacity"] + [str(c) for c in CAPACITIES],
        rows,
        title="Table V (measured): update-operation distribution on "
        "WeChat-scaled",
    )


if __name__ == "__main__":
    print(main())
