"""Scalar vs batched frontier sampling: the read-path engine's win.

Measures the per-vertex scalar path (`sample_neighbors` in a Python
loop — one root→leaf descent per draw) against the batched path
(`sample_neighbors_many` — one directory lookup per distinct source,
vectorized inverse-transform draws off flat snapshots) on a GNN-shaped
frontier: 1k vertices drawn with hub-heavy repetition from a skewed
synthetic graph, fan-outs {5, 10, 25}.

Three regimes per fan-out:

* ``scalar``        — the pre-PR read path (also the cache-off path);
* ``batched_cold``  — first batched call on a cold cache (pays builds);
* ``batched_warm``  — steady-state frontier sampling (the hot path the
  acceptance criterion targets: >= 5x over scalar at fan-out 10).

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_batched_sampling.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.core.samtree import SamtreeConfig
from repro.core.snapshot import SnapshotCache
from repro.core.topology import DynamicGraphStore

FANOUTS = (5, 10, 25)
SEED = 0xD2


def build_graph(
    num_sources: int, mean_degree: int, seed: int = SEED
) -> DynamicGraphStore:
    """A skewed synthetic graph: degrees and weights both long-tailed."""
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=64, alpha=0))
    for src in range(num_sources):
        # Pareto-ish degree: a few hubs, many small adjacencies.
        degree = max(2, min(int(rng.paretovariate(1.3) * mean_degree / 3),
                            mean_degree * 20))
        for _ in range(degree):
            dst = num_sources + rng.randrange(num_sources * 10)
            store.add_edge(src, dst, rng.paretovariate(1.5))
    return store


def make_frontier(
    num_sources: int, size: int, seed: int = SEED + 1
) -> List[int]:
    """Hub-heavy frontier: repeated hot vertices, like a GNN mini-batch."""
    rng = random.Random(seed)
    hot = max(1, num_sources // 20)
    frontier = []
    for _ in range(size):
        if rng.random() < 0.5:  # half the reads hit the hot 5%
            frontier.append(rng.randrange(hot))
        else:
            frontier.append(rng.randrange(num_sources))
    return frontier


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    num_sources: int,
    frontier_size: int,
    mean_degree: int,
    repeats: int,
) -> Dict:
    store = build_graph(num_sources, mean_degree)
    frontier = make_frontier(num_sources, frontier_size)
    results = {
        "config": {
            "num_sources": num_sources,
            "num_edges": store.num_edges,
            "frontier_size": frontier_size,
            "distinct_sources_in_frontier": len(set(frontier)),
            "mean_degree": mean_degree,
            "repeats": repeats,
            "fanouts": list(FANOUTS),
        },
        "fanouts": {},
    }

    for fanout in FANOUTS:
        # -- scalar: one descent per draw, one lookup per occurrence ----
        def scalar():
            rng = random.Random(SEED)
            for src in frontier:
                store.sample_neighbors(src, fanout, rng)

        t_scalar = _time(scalar, repeats)

        # -- batched, cold cache (pays every snapshot build) -------------
        store.snapshot_cache = SnapshotCache()
        t_cold = _time(
            lambda: store.sample_neighbors_many(frontier, fanout, rng=SEED), 1
        )

        # -- batched, warm cache (steady-state training) ------------------
        store.snapshot_cache.stats.reset()
        t_warm = _time(
            lambda: store.sample_neighbors_many(frontier, fanout, rng=SEED),
            repeats,
        )
        stats = store.snapshot_cache.stats.to_dict()

        results["fanouts"][str(fanout)] = {
            "scalar_s": t_scalar,
            "batched_cold_s": t_cold,
            "batched_warm_s": t_warm,
            "scalar_vertices_per_s": frontier_size / t_scalar,
            "batched_warm_vertices_per_s": frontier_size / t_warm,
            "speedup_warm_vs_scalar": t_scalar / t_warm,
            "speedup_cold_vs_scalar": t_scalar / t_cold,
            "cache": stats,
        }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: checks the machinery, not the numbers",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_benchmark(
            num_sources=200, frontier_size=100, mean_degree=20, repeats=1
        )
    else:
        results = run_benchmark(
            num_sources=4000, frontier_size=1000, mean_degree=50, repeats=3
        )
    results["mode"] = "smoke" if args.smoke else "full"

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    warm10 = results["fanouts"]["10"]["speedup_warm_vs_scalar"]
    hit10 = results["fanouts"]["10"]["cache"]["hit_rate"]
    print(
        f"[bench_batched_sampling] fanout=10: warm speedup "
        f"{warm10:.1f}x, cache hit rate {hit10:.2%}",
        file=sys.stderr,
    )
    if not args.smoke and warm10 < 5.0:
        print(
            "[bench_batched_sampling] FAIL: warm speedup below the 5x "
            "acceptance bar",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
