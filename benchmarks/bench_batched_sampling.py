"""Scalar vs batched frontier sampling: the read-path engine's win.

Measures the per-vertex scalar path (`sample_neighbors` in a Python
loop — one root→leaf descent per draw) against the batched path
(`sample_neighbors_many` — one directory lookup per distinct source,
vectorized inverse-transform draws off flat snapshots) on a GNN-shaped
frontier: 1k vertices drawn with hub-heavy repetition from a skewed
synthetic graph, fan-outs {5, 10, 25}.

Three regimes per fan-out:

* ``scalar``        — the pre-PR read path (also the cache-off path);
* ``batched_cold``  — first batched call on a cold cache (pays builds);
* ``batched_warm``  — steady-state frontier sampling (the hot path the
  acceptance criterion targets: >= 5x over scalar at fan-out 10).

A fourth section measures the *observability tax* (DESIGN.md §11): the
same warm batched loop run plain versus through
:class:`~repro.core.metrics.InstrumentedStore` with every holder
registered into a :class:`~repro.obs.registry.MetricsRegistry`.
``--check-overhead PCT`` turns the measurement into a gate (CI uses 5):
exit non-zero if instrumentation costs more than PCT percent.  The JSON
payload embeds the registry snapshot under ``"obs"`` so the checked-in
``BENCH_*.json`` records carry their telemetry alongside the timings.

Emits JSON (``--out``, default stdout); ``--smoke`` shrinks everything
for CI.  The checked-in record is ``BENCH_batched_sampling.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from typing import Dict, List

from repro.core.metrics import InstrumentedStore
from repro.core.samtree import SamtreeConfig
from repro.core.snapshot import SnapshotCache
from repro.core.topology import DynamicGraphStore
from repro.obs import MetricsRegistry, register_store

FANOUTS = (5, 10, 25)
SEED = 0xD2


def build_graph(
    num_sources: int, mean_degree: int, seed: int = SEED
) -> DynamicGraphStore:
    """A skewed synthetic graph: degrees and weights both long-tailed."""
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=64, alpha=0))
    for src in range(num_sources):
        # Pareto-ish degree: a few hubs, many small adjacencies.
        degree = max(2, min(int(rng.paretovariate(1.3) * mean_degree / 3),
                            mean_degree * 20))
        for _ in range(degree):
            dst = num_sources + rng.randrange(num_sources * 10)
            store.add_edge(src, dst, rng.paretovariate(1.5))
    return store


def make_frontier(
    num_sources: int, size: int, seed: int = SEED + 1
) -> List[int]:
    """Hub-heavy frontier: repeated hot vertices, like a GNN mini-batch."""
    rng = random.Random(seed)
    hot = max(1, num_sources // 20)
    frontier = []
    for _ in range(size):
        if rng.random() < 0.5:  # half the reads hit the hot 5%
            frontier.append(rng.randrange(hot))
        else:
            frontier.append(rng.randrange(num_sources))
    return frontier


def _time(fn, repeats: int) -> float:
    """Best-of-N wall time of ``fn()`` (seconds)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_benchmark(
    num_sources: int,
    frontier_size: int,
    mean_degree: int,
    repeats: int,
) -> Dict:
    store = build_graph(num_sources, mean_degree)
    frontier = make_frontier(num_sources, frontier_size)
    results = {
        "config": {
            "num_sources": num_sources,
            "num_edges": store.num_edges,
            "frontier_size": frontier_size,
            "distinct_sources_in_frontier": len(set(frontier)),
            "mean_degree": mean_degree,
            "repeats": repeats,
            "fanouts": list(FANOUTS),
        },
        "fanouts": {},
    }

    for fanout in FANOUTS:
        # -- scalar: one descent per draw, one lookup per occurrence ----
        def scalar():
            rng = random.Random(SEED)
            for src in frontier:
                store.sample_neighbors(src, fanout, rng)

        t_scalar = _time(scalar, repeats)

        # -- batched, cold cache (pays every snapshot build) -------------
        store.snapshot_cache = SnapshotCache()
        t_cold = _time(
            lambda: store.sample_neighbors_many(frontier, fanout, rng=SEED), 1
        )

        # -- batched, warm cache (steady-state training) ------------------
        store.snapshot_cache.stats.reset()
        t_warm = _time(
            lambda: store.sample_neighbors_many(frontier, fanout, rng=SEED),
            repeats,
        )
        stats = store.snapshot_cache.stats.to_dict()

        results["fanouts"][str(fanout)] = {
            "scalar_s": t_scalar,
            "batched_cold_s": t_cold,
            "batched_warm_s": t_warm,
            "scalar_vertices_per_s": frontier_size / t_scalar,
            "batched_warm_vertices_per_s": frontier_size / t_warm,
            "speedup_warm_vs_scalar": t_scalar / t_warm,
            "speedup_cold_vs_scalar": t_scalar / t_cold,
            "cache": stats,
        }

    results["obs"] = measure_obs_overhead(store, frontier, repeats)
    return results


def measure_obs_overhead(
    store: DynamicGraphStore,
    frontier: List[int],
    repeats: int,
    fanout: int = 10,
) -> Dict:
    """The observability tax on warm batched sampling (DESIGN.md §11).

    Runs the identical warm ``sample_neighbors_many`` loop twice —
    metrics disabled (bare store) and metrics enabled
    (:class:`InstrumentedStore` wrapper with the store's holders
    registered into a :class:`MetricsRegistry`) — and reports the
    relative cost.  Best-of-N timing on both sides keeps scheduler
    noise from dominating a measurement that is expected to sit near
    zero: the registry reads its views lazily (pull-based), so the only
    hot-path work is one ``perf_counter`` pair and one histogram record
    per *batch* call.

    Returns the timings, the overhead percentage, and the registry
    snapshot (which ``BENCH_*.json`` payloads embed verbatim).
    """
    # Warm the cache once so neither side pays snapshot builds.
    store.sample_neighbors_many(frontier, fanout, rng=SEED)

    registry = MetricsRegistry()
    instrumented = InstrumentedStore(store)
    register_store(registry, store)
    instrumented.metrics.register_into(registry)

    # Noise control, because the true delta is near zero while shared
    # CI runners jitter by ~10%: (a) amortise — each timed region runs
    # the batched call ``inner`` times so it is milliseconds long, not
    # microseconds; (b) interleave plain/obs reps so CPU frequency
    # drift hits both sides equally; (c) best-of-N within a pass; and
    # (d) take the *minimum* overhead across independent passes — a
    # genuine regression lifts every pass, a scheduler spike only one.
    inner = 10
    reps = max(repeats, 10)
    passes = 3

    def one_pass() -> Dict:
        t_plain = t_obs = float("inf")
        for _ in range(reps):
            start = time.perf_counter()
            for _ in range(inner):
                store.sample_neighbors_many(frontier, fanout, rng=SEED)
            t_plain = min(t_plain, time.perf_counter() - start)
            start = time.perf_counter()
            for _ in range(inner):
                instrumented.sample_neighbors_many(
                    frontier, fanout, rng=SEED
                )
            t_obs = min(t_obs, time.perf_counter() - start)
        t_plain /= inner
        t_obs /= inner
        return {
            "plain_warm_s": t_plain,
            "instrumented_warm_s": t_obs,
            "overhead_pct": (t_obs - t_plain) / t_plain * 100.0,
        }

    runs = [one_pass() for _ in range(passes)]
    best = min(runs, key=lambda r: r["overhead_pct"])
    return {
        "fanout": fanout,
        "repeats": reps,
        "inner_calls_per_rep": inner,
        "passes": runs,
        "plain_warm_s": best["plain_warm_s"],
        "instrumented_warm_s": best["instrumented_warm_s"],
        "overhead_pct": best["overhead_pct"],
        "registry_snapshot": registry.snapshot().to_dict(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI: checks the machinery, not the numbers",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    parser.add_argument(
        "--check-overhead",
        type=float,
        default=None,
        metavar="PCT",
        help="fail if the instrumentation overhead on warm batched "
        "sampling exceeds PCT percent (CI uses 5)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_benchmark(
            num_sources=200, frontier_size=100, mean_degree=20, repeats=1
        )
    else:
        results = run_benchmark(
            num_sources=4000, frontier_size=1000, mean_degree=50, repeats=3
        )
    results["mode"] = "smoke" if args.smoke else "full"

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    warm10 = results["fanouts"]["10"]["speedup_warm_vs_scalar"]
    hit10 = results["fanouts"]["10"]["cache"]["hit_rate"]
    overhead = results["obs"]["overhead_pct"]
    print(
        f"[bench_batched_sampling] fanout=10: warm speedup "
        f"{warm10:.1f}x, cache hit rate {hit10:.2%}, "
        f"obs overhead {overhead:+.2f}%",
        file=sys.stderr,
    )
    if not args.smoke and warm10 < 5.0:
        print(
            "[bench_batched_sampling] FAIL: warm speedup below the 5x "
            "acceptance bar",
            file=sys.stderr,
        )
        return 1
    if args.check_overhead is not None and overhead > args.check_overhead:
        print(
            f"[bench_batched_sampling] FAIL: instrumentation overhead "
            f"{overhead:.2f}% exceeds the {args.check_overhead:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
