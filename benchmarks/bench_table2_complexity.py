"""Table II: update/sampling complexity of FTS (FSTable) vs ITS (CSTable).

The paper's Table II states per-leaf costs:

===============  =========  ==========
operation        ITS        FTS (ours)
===============  =========  ==========
new insertion    O(1)       O(log n)
in-place update  O(n)       O(log n)
deletion         O(n)       O(log n)
sampling         O(log n)   O(log n)
===============  =========  ==========

`pytest benchmarks/bench_table2_complexity.py --benchmark-only` times
each operation on tables of 2^8 … 2^12 elements; the benchmark groups
line the two indexes up per (operation, n).  Running the module directly
prints the growth-ratio table: FTS update times stay near-flat as n
doubles while ITS grows ~2× — the empirical shape of Table II.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.report import format_table
from repro.core.cstable import CSTable
from repro.core.fenwick import FSTable

SIZES = [2**8, 2**10, 2**12]


def _weights(n: int) -> list:
    r = random.Random(n)
    return [r.random() + 0.01 for _ in range(n)]


def _make(index_cls, n: int):
    return index_cls(_weights(n))


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("index_cls", [FSTable, CSTable], ids=["FTS", "ITS"])
class TestTable2:
    def test_in_place_update(self, benchmark, index_cls, n):
        benchmark.group = f"table2-update-n{n}"
        table = _make(index_cls, n)
        r = random.Random(1)

        def op():
            table.update(r.randrange(n), r.random())

        benchmark(op)

    def test_new_insertion(self, benchmark, index_cls, n):
        benchmark.group = f"table2-insert-n{n}"
        r = random.Random(2)

        def setup():
            return (_make(index_cls, n),), {}

        def op(table):
            table.append(r.random())

        benchmark.pedantic(op, setup=setup, rounds=30, iterations=1)

    def test_deletion(self, benchmark, index_cls, n):
        benchmark.group = f"table2-delete-n{n}"
        r = random.Random(3)

        def setup():
            return (_make(index_cls, n),), {}

        def op(table):
            table.delete(r.randrange(len(table)))

        benchmark.pedantic(op, setup=setup, rounds=30, iterations=1)

    def test_sampling(self, benchmark, index_cls, n):
        benchmark.group = f"table2-sample-n{n}"
        table = _make(index_cls, n)
        r = random.Random(4)
        benchmark(lambda: table.sample(r))


def measure(index_cls, op: str, n: int, repeats: int = 2000) -> float:
    """Mean seconds per operation (module-main growth table)."""
    r = random.Random(42)
    table = _make(index_cls, n)
    if op == "update":
        start = time.perf_counter()
        for _ in range(repeats):
            table.update(r.randrange(n), r.random())
        return (time.perf_counter() - start) / repeats
    if op == "insert":
        start = time.perf_counter()
        for _ in range(repeats):
            table.append(r.random())
        return (time.perf_counter() - start) / repeats
    if op == "delete":
        table = _make(index_cls, n + repeats)
        start = time.perf_counter()
        for _ in range(repeats):
            table.delete(r.randrange(len(table)))
        return (time.perf_counter() - start) / repeats
    if op == "sample":
        start = time.perf_counter()
        for _ in range(repeats):
            table.sample(r)
        return (time.perf_counter() - start) / repeats
    raise ValueError(op)


def main() -> str:
    sizes = [2**8, 2**10, 2**12, 2**14]
    rows = []
    for op in ("insert", "update", "delete", "sample"):
        for name, cls in (("ITS", CSTable), ("FTS", FSTable)):
            times = [measure(cls, op, n) for n in sizes]
            growth = times[-1] / times[0] if times[0] > 0 else float("inf")
            rows.append(
                [op, name]
                + [f"{t * 1e6:.2f}us" for t in times]
                + [f"{growth:.1f}x"]
            )
    return format_table(
        ["op", "index"] + [f"n={n}" for n in sizes] + ["growth 2^8->2^14"],
        rows,
        title="Table II (measured): per-op latency of ITS vs FTS",
    )


if __name__ == "__main__":
    print(main())
