"""Ablation: the PALM-style batch executor vs naive execution.

DESIGN.md calls out two ingredients of the concurrency scheme (paper
§VI-B) worth isolating:

* **partitioning** — assigning whole trees to threads (latch-free) vs a
  single worker: the makespan model quantifies the critical-path win;
* **batch sorting** — grouping a batch per source before applying it,
  which turns scattered directory probes into per-tree runs.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.report import format_table
from repro.concurrency.batch import group_batch, partition_groups
from repro.concurrency.palm import PalmExecutor
from repro.core.samtree import SamtreeConfig
from repro.core.topology import DynamicGraphStore
from repro.core.types import EdgeOp

try:
    from conftest import BENCH_DATASETS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS


def _ops(n=2**13, seed=0):
    r = random.Random(seed)
    ops = []
    for _ in range(n):
        src = r.randrange(256)
        dst = r.randrange(4096)
        ops.append(EdgeOp.insert(src, dst, r.random() + 0.01))
    return ops


@pytest.mark.parametrize("threads", [1, 8])
def test_partitioned_makespan(benchmark, threads):
    benchmark.group = "ablation-palm-partitioning"
    ops = _ops()
    store = DynamicGraphStore(SamtreeConfig())
    executor = PalmExecutor(store, num_threads=threads, simulate=True)
    result = benchmark.pedantic(
        lambda: executor.apply_batch(ops), rounds=3, iterations=1
    )
    benchmark.extra_info["makespan"] = result.makespan


@pytest.mark.parametrize("sorted_batch", [False, True], ids=["unsorted", "sorted"])
def test_batch_sorting(benchmark, sorted_batch):
    benchmark.group = "ablation-palm-sorting"
    ops = _ops()
    if sorted_batch:
        ops = sorted(ops, key=lambda op: (op.etype, op.src))
    store = DynamicGraphStore(SamtreeConfig())

    def run():
        for op in ops:
            store.apply(op)

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_partition_balance_property():
    """LPT assignment keeps thread loads within one group of each other."""
    groups = group_batch(_ops())
    for threads in (2, 4, 8):
        loads = [
            sum(len(g) for g in a)
            for a in partition_groups(groups, threads)
        ]
        assert max(loads) - min(loads) <= max(len(g) for g in groups)


def main() -> str:
    ops = _ops(2**14)
    rows = []
    for threads in (1, 2, 4, 8, 16):
        store = DynamicGraphStore(SamtreeConfig())
        executor = PalmExecutor(store, num_threads=threads, simulate=True)
        result = executor.apply_batch(ops)
        rows.append(
            [
                threads,
                f"{result.makespan * 1e3:.2f}ms",
                f"{sum(result.thread_times) * 1e3:.2f}ms",
            ]
        )
    table1 = format_table(
        ["threads", "makespan", "total work"],
        rows,
        title="Ablation: PALM partitioned makespan (batch 2^14)",
    )

    rows2 = []
    for label, batch in (
        ("unsorted", _ops(2**14, seed=1)),
        ("sorted", sorted(_ops(2**14, seed=1), key=lambda op: (op.etype, op.src))),
    ):
        store = DynamicGraphStore(SamtreeConfig())
        start = time.perf_counter()
        for op in batch:
            store.apply(op)
        rows2.append([label, f"{(time.perf_counter() - start) * 1e3:.2f}ms"])
    table2 = format_table(
        ["batch order", "apply time"],
        rows2,
        title="Ablation: batch sorting (same 2^14 ops)",
    )
    return table1 + "\n\n" + table2


if __name__ == "__main__":
    print(main())
