"""Deadline-aware serving tier under chaos scenarios: SLO acceptance.

The online inference tier (DESIGN.md §15) claims graceful degradation:
under overload it sheds load *before* the expensive sample step and
serves staleness-bounded cached answers, so availability holds while a
shedding-free tier collapses.  This bench replays the seeded chaos
scenarios of ``repro.serving.scenarios`` and records the SLO reports:

* ``calm``            — baseline traffic; establishes the calm p99;
* ``flash_crowd``     — a 30x arrival spike, run twice: with admission
  control (the system under test) and with shedding disabled (the
  control arm, which must *visibly* collapse — otherwise the scenario
  is too easy to mean anything);
* ``regional_outage`` — a shard crashes mid-run; every request landing
  on it must be answered degraded from the last-good cache with zero
  request-path exceptions;
* ``brownout``        — injected latency spikes (tail inflation without
  overload).

Acceptance gates (the recorded claims, enforced with ``--check``):

* flash crowd WITH shedding: availability >= 99% and p99 within 2x the
  calm p99, with every shed accounted to a cause;
* flash crowd WITHOUT shedding: availability < 99% (the control arm
  collapses — proves the scenario actually overloads the tier);
* regional outage: availability >= 99%, zero failed answers, zero
  sampling exceptions, and at least one degraded answer.

All scenario clocks are simulated (``NetworkModel``), so the recorded
numbers are deterministic for a seed — the history gate
(``bench_history.py --bench slo_serving``) flags availability or
p99-headroom drift, not machine noise.  Emits JSON (``--out``, default
stdout); ``--smoke`` shrinks the rig for CI.  The checked-in record is
``BENCH_slo_serving.json``, appended to ``BENCH_HISTORY.jsonl`` via
``bench_history.py record``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List

from repro.serving import run_scenario

SEED = 20240808


def run_one(
    name: str,
    shedding: bool,
    num_sources: int,
    num_shards: int,
) -> Dict:
    """Replay one scenario; returns its SLO report dict + wall seconds."""
    start = time.perf_counter()
    _rig, report = run_scenario(
        name,
        seed=SEED,
        shedding=shedding,
        rig_kwargs={"num_sources": num_sources, "num_shards": num_shards},
    )
    out = report.to_dict()
    out["wall_s"] = time.perf_counter() - start
    out["shedding"] = shedding
    return out


def run_benchmark(num_sources: int, num_shards: int) -> Dict:
    results: Dict = {
        "config": {
            "num_sources": num_sources,
            "num_shards": num_shards,
            "seed": SEED,
        },
        "scenarios": {},
    }
    scenarios = results["scenarios"]
    scenarios["calm"] = run_one("calm", True, num_sources, num_shards)
    scenarios["flash_crowd"] = run_one(
        "flash_crowd", True, num_sources, num_shards
    )
    scenarios["flash_crowd_noshed"] = run_one(
        "flash_crowd", False, num_sources, num_shards
    )
    scenarios["regional_outage"] = run_one(
        "regional_outage", True, num_sources, num_shards
    )
    scenarios["brownout"] = run_one("brownout", True, num_sources, num_shards)

    calm_p99 = scenarios["calm"]["p99_seconds"]
    flash_p99 = scenarios["flash_crowd"]["p99_seconds"]
    # Higher-is-better gate figures (the bench_history metrics): the
    # headroom ratio is (2x calm p99) / flash p99 — >= 1.0 means the
    # flash-crowd tail stayed within twice the calm tail.
    results["metrics"] = {
        "availability_calm_pct": scenarios["calm"]["availability"] * 100.0,
        "availability_flash_pct": (
            scenarios["flash_crowd"]["availability"] * 100.0
        ),
        "availability_outage_pct": (
            scenarios["regional_outage"]["availability"] * 100.0
        ),
        "p99_headroom_flash": (
            (2.0 * calm_p99) / flash_p99 if flash_p99 else float("inf")
        ),
    }
    return results


def check_acceptance(results: Dict) -> List[str]:
    """The recorded SLO claims; returns failure strings (empty = pass)."""
    failures: List[str] = []
    s = results["scenarios"]
    m = results["metrics"]

    flash = s["flash_crowd"]
    if m["availability_flash_pct"] < 99.0:
        failures.append(
            f"flash_crowd (shedding): availability "
            f"{m['availability_flash_pct']:.2f}% < 99%"
        )
    if m["p99_headroom_flash"] < 1.0:
        failures.append(
            f"flash_crowd (shedding): p99 {flash['p99_seconds'] * 1e3:.3f}ms "
            f"exceeds 2x calm p99 "
            f"{s['calm']['p99_seconds'] * 1e3:.3f}ms"
        )
    shed_total = sum(flash["shed"].values())
    if shed_total <= 0:
        failures.append(
            "flash_crowd (shedding): no sheds recorded — the spike never "
            "pressured admission"
        )

    noshed = s["flash_crowd_noshed"]
    if noshed["availability"] >= 0.99:
        failures.append(
            f"flash_crowd (no shedding): availability "
            f"{noshed['availability'] * 100:.2f}% did not collapse below "
            f"99% — the control arm proves nothing"
        )

    outage = s["regional_outage"]
    if m["availability_outage_pct"] < 99.0:
        failures.append(
            f"regional_outage: availability "
            f"{m['availability_outage_pct']:.2f}% < 99%"
        )
    if outage["failed"] != 0:
        failures.append(
            f"regional_outage: {outage['failed']} failed answers (want 0)"
        )
    if outage["sample_errors"] != 0:
        failures.append(
            f"regional_outage: {outage['sample_errors']} sampling "
            f"exceptions reached the request path (want 0)"
        )
    if outage["answered_degraded"] <= 0:
        failures.append(
            "regional_outage: no degraded answers — the outage never hit "
            "the degraded path"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small rig for CI (scenario schedules are identical; only "
        "the vertex universe shrinks)",
    )
    parser.add_argument(
        "--out", default=None, help="write JSON here (default: stdout)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the SLO acceptance gates (exit 1 on violation); "
        "applied in both smoke and full modes — the simulated clock "
        "makes the numbers deterministic",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        results = run_benchmark(num_sources=400, num_shards=4)
    else:
        results = run_benchmark(num_sources=2000, num_shards=4)
    results["mode"] = "smoke" if args.smoke else "full"

    payload = json.dumps(results, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)

    for name, entry in results["scenarios"].items():
        print(
            f"[bench_slo_serving] {name}: availability "
            f"{entry['availability'] * 100:.2f}% "
            f"p99 {entry['p99_seconds'] * 1e3:.3f}ms "
            f"degraded {entry['degraded_fraction'] * 100:.1f}% "
            f"shed {sum(entry['shed'].values())} "
            f"missed {entry['deadline_missed']} "
            f"failed {entry['failed']}",
            file=sys.stderr,
        )

    failures = check_acceptance(results)
    if args.check and failures:
        for failure in failures:
            print(f"[bench_slo_serving] FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
