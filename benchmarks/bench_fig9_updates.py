"""Figure 9: dynamic-update time vs batch size on WeChat.

A built WeChat-scaled store receives churn batches (insert / in-place
update / delete mix) of growing size; the paper sweeps 2^10 … 2^16 and
reports PlatoD2GL up to 5.4× faster than PlatoGL, with both far below
AliGraph.  The figure's shape — latency grows with batch size, PlatoD2GL
lowest — is what this driver reproduces.
"""

from __future__ import annotations

import pytest

from repro.bench.report import format_series, speedup
from repro.bench.workloads import make_store, run_update_batches
from repro.datasets.stream import EdgeStream

try:
    from conftest import BENCH_DATASETS
except ImportError:
    from benchmarks.conftest import BENCH_DATASETS

#: Paper: 2^10 … 2^16; scaled for suite runtime (run_all --full widens).
BATCH_SIZES = [2**8, 2**10, 2**12]
SYSTEMS = ("AliGraph", "PlatoGL", "PlatoD2GL")
MIX = (0.4, 0.4, 0.2)


def _built(system):
    loader, scale = BENCH_DATASETS["WeChat"]
    data = loader(scale=scale)
    store = make_store(system)
    stream = EdgeStream(data)
    for batch in stream.build_batches(4096):
        for op in batch:
            store.apply(op)
    return store, stream


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("system", SYSTEMS)
def test_dynamic_updates(benchmark, system, batch_size):
    benchmark.group = f"fig9-updates-batch{batch_size}"
    store, stream = _built(system)
    batches = list(stream.churn_batches(batch_size, 3, MIX))

    def run():
        for batch in batches:
            for op in batch:
                store.apply(op)

    benchmark.pedantic(run, rounds=1, iterations=1)


def main(batch_sizes=None) -> str:
    batch_sizes = batch_sizes or [2**8, 2**10, 2**12, 2**14]
    series = {}
    for system in SYSTEMS:
        store, stream = _built(system)
        times = []
        for batch_size in batch_sizes:
            mean = run_update_batches(
                store, stream, batch_size, num_batches=3, mix=MIX
            )
            times.append(mean * 1e3)
        series[system] = times
    lines = [
        format_series(
            "batch",
            batch_sizes,
            series,
            unit="ms",
            title="Figure 9 (measured): dynamic-update latency per batch, "
            "WeChat-scaled",
        )
    ]
    ratios = [
        speedup(pg, d2)
        for pg, d2 in zip(series["PlatoGL"], series["PlatoD2GL"])
    ]
    lines.append(
        f"PlatoD2GL vs PlatoGL speedup across batch sizes: "
        + ", ".join(f"{r:.1f}x" for r in ratios)
    )
    return "\n".join(lines)


if __name__ == "__main__":
    print(main())
