"""Unsupervised embeddings from weighted walks over the dynamic store.

The embedding pipeline that predates GNNs — and still powers plenty of
production retrieval: draw weighted random walks through the store's
FTS/ITS sampling, turn them into skip-gram pairs, train SGNS vectors,
and answer similar-item queries from the embedding table.  Because the
walks sample the *live* graph, retraining after updates adapts the
vectors — shown at the end by splicing two communities together.

Run with::

    python examples/walk_embeddings.py
"""

from __future__ import annotations

import random

from repro.core import DynamicGraphStore, SamtreeConfig
from repro.gnn import SkipGramTrainer, random_walks, walk_cooccurrence

COMMUNITY_SIZE = 15


def build_two_communities(seed: int = 0) -> DynamicGraphStore:
    """Two dense communities with no connection between them."""
    rng = random.Random(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=32))
    for base in (0, 100):
        nodes = list(range(base, base + COMMUNITY_SIZE))
        for a in nodes:
            for b in rng.sample(nodes, 6):
                if a != b:
                    store.add_edge(a, b, 1.0 + rng.random())
    return store


def main() -> None:
    store = build_two_communities()
    print(f"graph: {store.num_edges} edges, two disconnected communities "
          f"(0-{COMMUNITY_SIZE - 1} and 100-{100 + COMMUNITY_SIZE - 1})")

    trainer = SkipGramTrainer(dim=24, lr=0.05, seed=0)
    seeds = list(store.sources()) * 4
    print("\ntraining SGNS over weighted walks:")
    for round_no in range(6):
        loss = trainer.train_from_store(
            store, seeds, walk_length=10, window=2, epochs=2
        )
        print(f"  round {round_no}: loss {loss:.4f}")

    intra = trainer.similarity(0, 1)
    inter = trainer.similarity(0, 100)
    print(f"\ncosine(0, 1)   [same community]      = {intra:+.3f}")
    print(f"cosine(0, 100) [different community] = {inter:+.3f}")
    print("most similar to vertex 0:",
          [v for v, _ in trainer.most_similar(0, k=5)])

    # --- the graph changes: a bridge merges the communities ----------------
    print("\nsplicing the communities together with heavy bridge edges...")
    rng = random.Random(7)
    for _ in range(40):
        a = rng.randrange(COMMUNITY_SIZE)
        b = 100 + rng.randrange(COMMUNITY_SIZE)
        store.add_edge(a, b, 5.0)
        store.add_edge(b, a, 5.0)
    for round_no in range(6):
        trainer.train_from_store(store, seeds, walk_length=10, window=2, epochs=2)
    inter_after = trainer.similarity(0, 100)
    print(f"cosine(0, 100) after retraining on the updated graph = "
          f"{inter_after:+.3f} (was {inter:+.3f})")

    # Raw pair statistics, for the curious.
    walks = random_walks(store, seeds[:10], length=6, rng=rng)
    pairs = walk_cooccurrence(walks, window=2)
    cross = sum(
        c for (a, b), c in pairs.items() if (a < 100) != (b < 100)
    )
    print(f"cross-community co-occurrences in a fresh walk sample: "
          f"{cross}/{sum(pairs.values())}")


if __name__ == "__main__":
    main()
