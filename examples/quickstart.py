"""Quickstart: the PlatoD2GL store in five minutes.

Covers the public API end to end on the paper's own running example
(Figure 3): build a small weighted graph, update it dynamically, draw
weighted neighbor samples, and inspect the memory accounting.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import random
import time

import numpy as np

from repro import DynamicGraphStore, SamtreeConfig, humanize_bytes


def main() -> None:
    # A store with the paper's default parameters: node capacity 256,
    # slackness alpha = 0, CP-IDs compression on.
    store = DynamicGraphStore(SamtreeConfig(capacity=256, alpha=0, compress=True))

    # --- the paper's Figure 3 example graph --------------------------------
    edges = [
        (1, 2, 0.1),
        (1, 3, 0.4),
        (1, 5, 0.2),
        (3, 4, 0.6),
        (3, 7, 0.7),
    ]
    for src, dst, weight in edges:
        store.add_edge(src, dst, weight)

    print("vertices with out-edges:", store.num_sources)
    print("edges:", store.num_edges)
    print("neighbors of 1:", sorted(store.neighbors(1)))
    print("total weight w_1: %.2f" % store.total_weight(1))

    # --- dynamic updates ----------------------------------------------------
    store.update_edge(1, 2, 0.9)          # in-place weight update: O(log n)
    store.add_edge(1, 8, 0.3)             # insertion: appends to a leaf
    store.remove_edge(1, 5)               # deletion: swap-with-last
    print("\nafter updates, neighbors of 1:", sorted(store.neighbors(1)))

    # --- weighted neighbor sampling (ITS at internal nodes + FTS at leaf) ---
    rng = random.Random(0)
    draws = store.sample_neighbors(1, k=10_000, rng=rng)
    print("\nempirical sampling distribution of vertex 1's neighbors:")
    total = store.total_weight(1)
    for dst, weight in sorted(store.neighbors(1)):
        frac = draws.count(dst) / len(draws)
        print(f"  {dst}: weight {weight:.1f} -> expected {weight / total:.3f}, "
              f"sampled {frac:.3f}")

    # --- a larger graph: columnar bulk load + memory accounting -------------
    # Whole edge columns go in with one call: the store lexsorts them,
    # groups per source tree, and builds each samtree bottom-up in O(n)
    # — the fast path the dataset presets and the CLI use by default.
    i = np.arange(50_000)
    src_col = i % 500
    dst_col = (7 << 40) + i
    w_col = 1.0 + i % 3
    start = time.perf_counter()
    big = DynamicGraphStore()
    big.bulk_load(src_col, dst_col, w_col)
    bulk_s = time.perf_counter() - start

    start = time.perf_counter()
    per_op = DynamicGraphStore()
    for s, d, w in zip(src_col, dst_col, w_col):
        per_op.add_edge(int(s), int(d), float(w))
    per_op_s = time.perf_counter() - start
    print(f"\n50K-edge store, modeled footprint: {humanize_bytes(big.nbytes())}")
    print(f"  ({big.nbytes() / big.num_edges:.1f} bytes/edge with CP-IDs "
          "compression)")
    print(f"  bulk load: {bulk_s * 1e3:.0f}ms vs per-edge insert: "
          f"{per_op_s * 1e3:.0f}ms ({per_op_s / bulk_s:.1f}x)")

    no_cp = DynamicGraphStore(SamtreeConfig(compress=False))
    no_cp.bulk_load(src_col, dst_col, w_col)
    print(f"  w/o CP: {humanize_bytes(no_cp.nbytes())} "
          f"({no_cp.nbytes() / no_cp.num_edges:.1f} bytes/edge)")

    # Every structural invariant can be validated at any time.
    big.check_invariants()
    print("\ninvariants OK")


if __name__ == "__main__":
    main()
