"""Sliding-window training: the dynamic-graph series G^(t) end to end.

The paper motivates PlatoD2GL with concept drift: "the user interest is
highly dynamic and non-stationary … if a GNN-based recommendation model
cannot capture the instant user interest, the user might not be
interested in the recommended items" (§I).  This script demonstrates the
whole loop on a synthetic drift scenario:

1. interactions stream into a :class:`TemporalGraphStore` with a
   retention window, so stale edges age out of sampling automatically;
2. item popularity *shifts* halfway through the stream (group A rooms go
   quiet, group B rooms take over);
3. random walks from users, drawn through the live window, are compared
   before and after the shift — the windowed store tracks the drift while
   an unwindowed store keeps recommending the stale group;
4. a checkpoint of the live window is saved and reloaded.

Run with::

    python examples/temporal_window.py
"""

from __future__ import annotations

import io
import random
from collections import Counter

from repro.core import DynamicGraphStore, SamtreeConfig, TemporalGraphStore
from repro.gnn import random_walks
from repro.storage import load_store, save_store

NUM_USERS = 100
GROUP_A = [10_000 + i for i in range(20)]
GROUP_B = [20_000 + i for i in range(20)]
WINDOW = 300            # retention: 300 ticks
TICKS = 1200            # stream length; drift at TICKS // 2


def group_shares(store, rng) -> tuple:
    """Walk-visit share of groups A and B (one walk set, both shares)."""
    walks = random_walks(store, list(range(0, NUM_USERS, 5)), length=2, rng=rng)
    visits = Counter(v for walk in walks for v in walk[1:])
    total = max(1, sum(visits.values()))
    share_a = sum(c for v, c in visits.items() if v in set(GROUP_A)) / total
    share_b = sum(c for v, c in visits.items() if v in set(GROUP_B)) / total
    return share_a, share_b


def main() -> None:
    rng = random.Random(0)
    windowed = TemporalGraphStore(WINDOW, config=SamtreeConfig(capacity=64))
    unwindowed = DynamicGraphStore(SamtreeConfig(capacity=64))

    print(f"streaming {TICKS} ticks of interactions "
          f"(drift at tick {TICKS // 2}, window {WINDOW})...")
    for t in range(TICKS):
        hot = GROUP_A if t < TICKS // 2 else GROUP_B
        for _ in range(12):
            user = rng.randrange(NUM_USERS)
            item = hot[rng.randrange(len(hot))]
            windowed.observe(t, user, item, 1.0)
            unwindowed.add_edge(user, item, 1.0)

    print(f"\nlive edges in window: {windowed.num_edges:,} "
          f"(evicted {windowed.num_evicted:,})")
    print(f"edges without windowing: {unwindowed.num_edges:,}")

    share_w_a, share_w_b = group_shares(windowed, rng)
    share_u_a, share_u_b = group_shares(unwindowed, rng)
    print("\nwalk-visit share after the drift (group A = stale, B = current):")
    print(f"  windowed store:   A {share_w_a:.1%}  B {share_w_b:.1%}")
    print(f"  unwindowed store: A {share_u_a:.1%}  B {share_u_b:.1%}")
    assert share_w_b > 0.95, "window should have aged group A out entirely"

    # --- checkpoint the live window ------------------------------------------
    buf = io.BytesIO()
    nbytes = save_store(windowed.store, buf)
    buf.seek(0)
    restored = load_store(buf)
    print(f"\ncheckpoint: {nbytes:,} bytes; restored store has "
          f"{restored.num_edges:,} edges "
          f"(match: {restored.num_edges == windowed.num_edges})")
    restored.check_invariants()

    windowed.check_invariants()
    print("invariants OK")


if __name__ == "__main__":
    main()
