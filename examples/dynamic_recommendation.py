"""The paper's motivating scenario: live-streaming recommendation on a
heterogeneous graph that never stops changing (paper §I, §VII-A).

The script plays a WeChat-style workload end to end:

1. build the four-relation (bi-directed) user/live/attr/tag graph through
   the PALM batch executor;
2. stream interaction churn — users join/leave live rooms, interaction
   weights drift — while
3. answering the recommendation query between batches: meta-path
   sampling User → Live → Live (rooms similar to rooms the user watches),
   scored by visit frequency;
4. report how the recommendations for one user track the user's most
   recent interactions — the "instant user interest" the paper argues
   dynamic storage exists for.

Run with::

    python examples/dynamic_recommendation.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro.concurrency import PalmExecutor
from repro.core import DynamicGraphStore, EdgeOp, SamtreeConfig
from repro.datasets import EdgeStream, wechat_scaled
from repro.gnn import sample_metapath

USER_LIVE = 0          # user watched a live room
LIVE_LIVE = 2          # room-to-room similarity
REV_USER_LIVE = 8      # reversed twin (room -> audience)


def recommend_rooms(store, user: int, rng, fanout=(20, 10)) -> Counter:
    """Meta-path User→Live→Live: rooms related to rooms the user visits."""
    levels = sample_metapath(
        store, [user], [(USER_LIVE, fanout[0]), (LIVE_LIVE, fanout[1])], rng
    )
    return Counter(int(v) for v in levels[2])


def main() -> None:
    rng = random.Random(0)
    data = wechat_scaled(scale=2_000_000)
    store = DynamicGraphStore(SamtreeConfig(capacity=256))
    executor = PalmExecutor(store, num_threads=4)

    print("building the heterogeneous graph through the PALM executor...")
    stream = EdgeStream(data, seed=0)
    for batch in stream.build_batches(4096):
        executor.apply_batch(batch)
    print(f"  {store.num_edges:,} edges over relations {store.etypes()}")

    # Pick an active user (one with several watched rooms).
    user = max(store.sources(USER_LIVE), key=lambda u: store.degree(u, USER_LIVE))
    print(f"\nactive user {user}: watches {store.degree(user, USER_LIVE)} rooms")

    before = recommend_rooms(store, user, rng)
    print("top recommendations before interest shift:",
          [room for room, _ in before.most_common(5)])

    # --- the user's interest shifts: heavy interaction with a new room ----
    new_room = max(store.sources(LIVE_LIVE), key=lambda l: store.degree(l, LIVE_LIVE))
    print(f"\nuser {user} starts watching hub room {new_room} intensively...")
    churn = [EdgeOp.insert(user, new_room, 50.0, USER_LIVE),
             EdgeOp.insert(new_room, user, 50.0, REV_USER_LIVE)]
    # Interleave the interest shift with unrelated background churn.
    for batch in stream.churn_batches(512, 4, mix=(0.5, 0.4, 0.1)):
        executor.apply_batch(list(batch) + churn)

    after = recommend_rooms(store, user, rng)
    print("top recommendations after interest shift:",
          [room for room, _ in after.most_common(5)])

    # Rooms similar to the new favourite should now dominate.
    related = {dst for dst, _ in store.neighbors(new_room, LIVE_LIVE)}
    related.add(new_room)
    overlap_before = sum(c for room, c in before.items() if room in related)
    overlap_after = sum(c for room, c in after.items() if room in related)
    total_before = sum(before.values())
    total_after = sum(after.values())
    print(f"\nmass of recommendations related to the new favourite room:")
    print(f"  before: {overlap_before / total_before:.1%}")
    print(f"  after:  {overlap_after / total_after:.1%}")

    store.check_invariants()
    print("\nstore invariants OK "
          f"({store.num_edges:,} edges after churn)")


if __name__ == "__main__":
    main()
