"""Train a GraphSAGE node classifier on a dynamic graph (paper Figure 1).

An OGBN-style product graph is built in the PlatoD2GL store; products
belong to latent categories, features are noisy category signals, and
edges mostly connect products of the same category — so a 2-layer
GraphSAGE that aggregates *sampled* neighborhoods (the store's FTS/ITS
sampling) separates the classes far better than features alone.

The second half updates the graph *while training continues*, showing
the property the whole system exists for: the very next mini-batch
samples the new topology.

Run with::

    python examples/gnn_training.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.core import DynamicGraphStore, SamtreeConfig
from repro.gnn import GraphSAGE, Trainer
from repro.storage.attributes import AttributeStore

NUM_CLASSES = 4
NUM_NODES = 400
FEAT_DIM = 16
INTRA_CLASS_EDGES = 4000


def build_problem(seed: int = 0):
    rng = random.Random(seed)
    nprng = np.random.default_rng(seed)
    store = DynamicGraphStore(SamtreeConfig(capacity=64))
    feats = AttributeStore()
    feats.register("feat", FEAT_DIM)

    labels = {}
    centers = nprng.normal(0.0, 1.0, size=(NUM_CLASSES, FEAT_DIM))
    for v in range(NUM_NODES):
        c = v % NUM_CLASSES
        labels[v] = c
        feats.put(
            "feat", v, (centers[c] + nprng.normal(0, 2.0, FEAT_DIM)).astype(np.float32)
        )

    added = 0
    while added < INTRA_CLASS_EDGES:
        a, b = rng.randrange(NUM_NODES), rng.randrange(NUM_NODES)
        if a == b:
            continue
        # 85 % intra-class edges, 15 % noise edges.
        if labels[a] == labels[b] or rng.random() < 0.15:
            store.add_edge(a, b, weight=1.0 + rng.random())
            added += 1
    return store, feats, labels, nprng, rng


def main() -> None:
    store, feats, labels, nprng, rng = build_problem()
    seeds = [v for v in range(NUM_NODES) if store.degree(v) > 0]
    rng.shuffle(seeds)
    split = int(0.7 * len(seeds))
    train_seeds, test_seeds = seeds[:split], seeds[split:]
    train_y = [labels[v] for v in train_seeds]
    test_y = [labels[v] for v in test_seeds]

    model = GraphSAGE(
        in_dim=FEAT_DIM, hidden_dim=32, num_classes=NUM_CLASSES,
        num_layers=2, rng=nprng,
    )
    trainer = Trainer(
        store, feats, model, fanouts=[8, 8], lr=0.01, rng=rng,
    )
    print(f"model: 2-layer GraphSAGE, {model.num_parameters():,} parameters")
    print(f"graph: {store.num_edges:,} edges, {len(seeds)} labelled nodes "
          f"({len(train_seeds)} train / {len(test_seeds)} test)")

    print("\nepoch  train-loss  train-acc  test-acc")
    for epoch in range(8):
        result = trainer.train_epoch(train_seeds, train_y, batch_size=64,
                                     epoch=epoch)
        test_acc = trainer.evaluate(test_seeds, test_y)
        print(f"{epoch:5d}  {result.loss:10.4f}  {result.train_accuracy:9.3f}"
              f"  {test_acc:8.3f}")

    # --- keep training while the graph changes under the trainer ------------
    print("\ninjecting 500 new intra-class edges mid-training...")
    added = 0
    while added < 500:
        a, b = rng.randrange(NUM_NODES), rng.randrange(NUM_NODES)
        if a != b and labels[a] == labels[b]:
            store.add_edge(a, b, weight=2.0)
            added += 1
    for epoch in range(8, 11):
        result = trainer.train_epoch(train_seeds, train_y, batch_size=64,
                                     epoch=epoch)
        test_acc = trainer.evaluate(test_seeds, test_y)
        print(f"{epoch:5d}  {result.loss:10.4f}  {result.train_accuracy:9.3f}"
              f"  {test_acc:8.3f}")

    final = trainer.evaluate(test_seeds, test_y)
    print(f"\nfinal test accuracy: {final:.3f} "
          f"(chance level: {1 / NUM_CLASSES:.3f})")


if __name__ == "__main__":
    main()
