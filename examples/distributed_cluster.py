"""Distributed storage: an in-process stand-in for the paper's cluster.

Spins up a :class:`LocalCluster` of graph servers behind a hash-by-source
partitioner (paper §VII-A uses 54 storage machines), loads a scaled OGBN
graph through the routing client, and reports:

* shard balance (edges / sources / modeled bytes per server);
* simulated network traffic of batched updates vs per-edge updates;
* cross-shard batch sampling;
* the same cluster running a baseline store per shard (one line change).

Run with::

    python examples/distributed_cluster.py
"""

from __future__ import annotations

import random

from repro.baselines import PlatoGLStore
from repro.core import EdgeOp, SamtreeConfig, humanize_bytes
from repro.datasets import EdgeStream, ogbn_scaled
from repro.distributed import LocalCluster, NetworkModel


def load(cluster: LocalCluster, data) -> None:
    stream = EdgeStream(data)
    for batch in stream.build_batches(4096):
        cluster.client.apply_batch(batch)


def main() -> None:
    rng = random.Random(0)
    data = ogbn_scaled(scale=5000)

    # --- PlatoD2GL per shard -------------------------------------------------
    net = NetworkModel()  # 50 us / message, 10 Gbit/s
    cluster = LocalCluster(
        num_servers=4, config=SamtreeConfig(capacity=256), network=net
    )
    load(cluster, data)

    print("shard balance (hash-by-source):")
    print(f"{'shard':>5} {'sources':>8} {'edges':>8} {'bytes':>10}")
    for info in cluster.shard_infos():
        print(
            f"{info.shard_id:>5} {info.num_sources:>8} {info.num_edges:>8} "
            f"{humanize_bytes(info.nbytes):>10}"
        )
    print(f"total modeled memory: {humanize_bytes(cluster.total_nbytes())}")
    print(
        f"build traffic: {net.stats.messages:,} messages, "
        f"{humanize_bytes(net.stats.payload_bytes)}, "
        f"{net.stats.simulated_seconds * 1e3:.2f} ms simulated network time"
    )

    # --- batching matters: one message per shard vs one per edge -------------
    ops = [
        EdgeOp.insert(rng.randrange(10**6), rng.randrange(10**6), 1.0)
        for _ in range(1000)
    ]
    net.stats.reset()
    cluster.client.apply_batch(ops)
    batched = net.stats.messages
    net.stats.reset()
    for op in ops:
        cluster.client.add_edge(op.src, op.dst, op.weight)
    per_edge = net.stats.messages
    print(
        f"\n1000 inserts: {batched} messages batched vs {per_edge} per-edge "
        f"({per_edge / batched:.0f}x more RPCs without batching)"
    )

    # --- cross-shard batch sampling ------------------------------------------
    sources = [s for _, s in zip(range(64), cluster.client.sources())]
    rows = cluster.client.sample_neighbors_batch(sources, k=10, rng=rng)
    fan_in = sum(len(r) for r in rows)
    print(f"\nsampled 10 neighbors for {len(sources)} vertices across "
          f"{len(cluster)} shards ({fan_in} draws, order-preserving merge)")

    # --- the same cluster over a baseline store -------------------------------
    baseline = LocalCluster(num_servers=4, store_factory=PlatoGLStore)
    load(baseline, data)
    print(
        f"\nsame dataset on a PlatoGL-backed cluster: "
        f"{humanize_bytes(baseline.total_nbytes())} "
        f"(vs {humanize_bytes(cluster.total_nbytes())} for PlatoD2GL)"
    )


if __name__ == "__main__":
    main()
